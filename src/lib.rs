//! # AutoLearn — reproduction umbrella crate
//!
//! A from-scratch Rust reproduction of *"AutoLearn: Learning in the Edge to
//! Cloud Continuum"* (SC-W 2023). This crate re-exports every subsystem so
//! downstream users can depend on one crate; the interesting code lives in
//! the workspace members:
//!
//! | crate | what it is |
//! |---|---|
//! | [`core`](autolearn) | the educational module: pipeline, pathways, placement, twin, RL |
//! | [`track`] | track geometry (the paper's tape oval, Waveshare, procedural) |
//! | [`sim`] | car physics + synthetic camera + drive loop + pilots |
//! | [`tub`] | the DonkeyCar tub dataset format + tubclean |
//! | [`nn`] | from-scratch neural nets: the six DonkeyCar model architectures |
//! | [`cloud`] | Chameleon substrate: GPUs, reservations, provisioning, object store |
//! | [`edge`] | CHI@Edge: BYOD devices, containers, whitelists |
//! | [`net`] | edge↔cloud network model |
//! | [`trovi`] | artifact hub: versions, notebooks, launch/execution metrics |
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and the paper-to-module map, and `examples/` for runnable walkthroughs
//! starting with `cargo run --release --example quickstart`.

pub use autolearn as core;
pub use autolearn_cloud as cloud;
pub use autolearn_edge as edge;
pub use autolearn_net as net;
pub use autolearn_nn as nn;
pub use autolearn_sim as sim;
pub use autolearn_track as track;
pub use autolearn_trovi as trovi;
pub use autolearn_tub as tub;
pub use autolearn_util as util;
