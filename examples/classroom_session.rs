//! A classroom session end to end: the instructor reserves the class slot
//! on Chameleon, students BYOD-register their cars, publish the artifact on
//! Trovi, run the race, and score the competition (§3.2, §3.4, §4, §5).
//!
//! ```sh
//! cargo run --release --example classroom_session
//! ```

use autolearn::pathway::{competition_score, LearningPathway};
use autolearn_cloud::hardware::Site;
use autolearn_cloud::identity::IdentityService;
use autolearn_cloud::reservation::ReservationSystem;
use autolearn_edge::{ByodWorkflow, DeviceKind, EdgeDevice};
use autolearn_sim::{
    CameraConfig, CarConfig, DriveConfig, LinePilot, LinePilotConfig, Simulation,
    SpeedController,
};
use autolearn_track::waveshare_track;
use autolearn_trovi::{Artifact, EventKind, EventLog};
use autolearn_util::SimTime;

fn main() {
    // --- Identity & project -------------------------------------------------
    let mut identity = IdentityService::new();
    identity.federated_login("prof", "missouri.edu");
    identity
        .create_education_project("autolearn-class", "prof", 5000.0)
        .expect("education project approved");
    for s in ["alice", "kyle", "will"] {
        identity.federated_login(s, "missouri.edu");
        identity.add_member("autolearn-class", s).unwrap();
    }
    println!("project 'autolearn-class' with 3 students created");

    // --- Advance reservation for the class slot ----------------------------
    let mut reservations = ReservationSystem::new(Site::chameleon());
    let class_start = SimTime::from_secs(7.0 * 86_400.0); // next week
    let class_end = SimTime::from_secs(7.0 * 86_400.0 + 2.0 * 3600.0);
    let lease = reservations
        .reserve("autolearn-class", "gpu_rtx6000", 3, class_start, class_end)
        .expect("the classroom slot is guaranteed in advance");
    println!(
        "advance reservation {} holds 3 RTX6000 nodes for the class slot",
        lease
    );

    // --- Cars join via BYOD -------------------------------------------------
    let mut total_attended_mins = 0.0;
    for (i, student) in ["alice", "kyle", "will"].iter().enumerate() {
        let mut car = EdgeDevice::new(&format!("car-{i}"), DeviceKind::RaspberryPi4, student);
        let z = ByodWorkflow::onboard(&mut car, "autolearn-class").unwrap();
        total_attended_mins += z.attended.as_mins();
    }
    println!(
        "3 cars BYOD-registered; mean attended setup time {:.0} min each",
        total_attended_mins / 3.0
    );

    // --- The artifact on Trovi ----------------------------------------------
    let artifact = Artifact::autolearn_example();
    let mut events = EventLog::new();
    for s in ["alice", "kyle", "will"] {
        events.record(s, &artifact.slug, EventKind::View, SimTime::ZERO);
        events.record(s, &artifact.slug, EventKind::LaunchClick, SimTime::ZERO);
        events.record(s, &artifact.slug, EventKind::CellExecution, SimTime::ZERO);
    }
    let m = events.metrics_for(&artifact.slug);
    println!(
        "Trovi: {} views, {} launches, {} students executed cells (artifact v{})",
        m.views,
        m.launch_clicks,
        m.users_executed,
        artifact.version_count()
    );

    // --- The race (§3.3: fastest speed with fewest errors) -----------------
    println!("\nrace on the Waveshare track:");
    let track = waveshare_track();
    let mut leaderboard = Vec::new();
    for (student, target_speed) in [("alice", 1.0), ("kyle", 1.4), ("will", 1.8)] {
        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::real_car(student.len() as u64),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let inner = LinePilot::new(LinePilotConfig {
            seed: student.len() as u64,
            ..Default::default()
        });
        let mut pilot = SpeedController::new(inner, target_speed);
        let session = sim.run_laps(&mut pilot, 3, 120.0);
        let score = competition_score(
            session.mean_speed(),
            session.autonomy(),
            session.errors_per_lap(),
        );
        println!(
            "  {:<6} target {:.1} m/s -> {:.2} m/s, autonomy {:>5.1}%, {} crashes, score {:.3}",
            student,
            target_speed,
            session.mean_speed(),
            session.autonomy() * 100.0,
            session.crashes,
            score
        );
        leaderboard.push((student, score));
    }
    leaderboard.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\nwinner: {} — pushing speed only pays while control holds", leaderboard[0].0);

    // --- Pathway summary -----------------------------------------------------
    println!("\npathways available to this class:");
    for p in LearningPathway::all() {
        println!(
            "  {:<10} {} stages, car needed: {}",
            p.name(),
            p.stages().len(),
            p.requires_car()
        );
    }
}
