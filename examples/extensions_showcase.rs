//! Tour of the §3.3 extension assignments: colour stop/go classification,
//! edge-detection line following, GPS path following, obstacle detection,
//! and reinforcement learning.
//!
//! ```sh
//! cargo run --release --example extensions_showcase
//! ```

use autolearn::extensions::{
    signal_scene, ColorClassifier, ObstacleBrake, PurePursuitPilot, Signal, VisionLinePilot,
};
use autolearn::rl::{train_reinforce, Policy, RlConfig};
use autolearn_sim::{
    CameraConfig, CarConfig, DriveConfig, LinePilot, LinePilotConfig, Simulation,
};
use autolearn_track::circle_track;

fn main() {
    let track = circle_track(3.0, 0.8);

    // --- 1. Colour stop/go ("red means stop, green means go") --------------
    println!("1. colour stop/go classifier");
    let mut clf = ColorClassifier::new(1);
    let acc = clf.train(150, 30, 1);
    let mut held_out = 0;
    for i in 0..30 {
        let sig = Signal::from_index(i % 3);
        if clf.classify(&signal_scene(sig, 5000 + i as u64)) == sig {
            held_out += 1;
        }
    }
    println!("   train accuracy {:.0}%, held-out {}/30", acc * 100.0, held_out);

    // --- 2. Edge-detection line following (no ML, no ground truth) ---------
    println!("2. edge-detection line follower (classic CV)");
    let mut sim = Simulation::new(
        track.clone(),
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    let mut pilot = VisionLinePilot::default();
    let s = sim.run(&mut pilot, 30.0);
    println!(
        "   autonomy {:.1}%, {:.1} m covered, {} crashes",
        s.autonomy() * 100.0,
        s.distance_m,
        s.crashes
    );

    // --- 3. GPS path following ---------------------------------------------
    println!("3. GPS path following (pure pursuit on a recorded lap)");
    let mut path = Vec::new();
    let mut station = 0.0;
    while station < track.length() {
        path.push(track.point_at(station));
        station += 0.3;
    }
    let mut sim = Simulation::new(
        track.clone(),
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    let mut pilot = PurePursuitPilot::new(path, track.clone());
    let s = sim.run(&mut pilot, 30.0);
    println!(
        "   autonomy {:.1}%, mean |lateral| {:.3} m",
        s.autonomy() * 100.0,
        s.frames.iter().map(|f| f.proj.lateral.abs()).sum::<f64>() / s.frames.len() as f64
    );

    // --- 4. Obstacle detection ----------------------------------------------
    println!("4. obstacle detection (vision emergency brake)");
    let rgb = CameraConfig {
        width: 40,
        height: 30,
        channels: 3,
        ..Default::default()
    };
    let run = |braked: bool| {
        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::default(),
            rgb.clone(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let start = sim.track.project(sim.vehicle.state.pos).s;
        sim.add_obstacle(sim.track.wrap_station(start + 4.0), 0.0, 0.15);
        let inner = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            ..Default::default()
        });
        if braked {
            sim.run(&mut ObstacleBrake::new(inner), 25.0).crashes
        } else {
            let mut p = inner;
            sim.run(&mut p, 25.0).crashes
        }
    };
    println!(
        "   collisions without detector: {}, with: {}",
        run(false),
        run(true)
    );

    // --- 5. Reinforcement learning ------------------------------------------
    println!("5. reinforcement learning (REINFORCE, 30 episodes)");
    let cfg = RlConfig {
        episodes: 30,
        episode_s: 15.0,
        seed: 2,
        ..Default::default()
    };
    let mut policy = Policy::new(2);
    let report = train_reinforce(&circle_track(2.5, 0.8), &cfg, &mut policy);
    println!(
        "   mean return first 6 episodes {:.1} → last 6 episodes {:.1}",
        report.mean_return_first(6),
        report.mean_return_last(6)
    );
}
