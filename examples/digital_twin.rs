//! Digital-twin exploration (§3.3/§3.4): the same trained model driving the
//! clean simulator and the noisy "real" car, with the twin gap quantified.
//!
//! ```sh
//! cargo run --release --example digital_twin
//! ```

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::records_to_dataset;
use autolearn::twin::twin_compare;
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{TrainConfig, Trainer};
use autolearn_track::paper_oval;

fn main() {
    let track = paper_oval();
    let model_cfg = ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        seed: 3,
        ..Default::default()
    };

    println!("training two models on simulator data...");
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 150.0, 3),
    );
    let raw = records_to_dataset(&collected.records, &model_cfg);

    println!(
        "\n{:<12} {:>12} {:>13} {:>11} {:>12} {:>13}",
        "model", "sim autonomy", "real autonomy", "speed gap", "divergence", "laps sim/real"
    );
    for kind in [ModelKind::Linear, ModelKind::Inferred] {
        let mut model = CarModel::build(kind, &model_cfg);
        let data = prepare_dataset(&raw, model.input_spec());
        Trainer::new(TrainConfig {
            epochs: 10,
            seed: 3,
            ..Default::default()
        })
        .fit(&mut model, &data);

        let twin = twin_compare(&mut model, &track, 60.0, 3);
        println!(
            "{:<12} {:>11.1}% {:>12.1}% {:>10.1}% {:>10.3} m {:>10}/{}",
            kind.name(),
            twin.sim_autonomy * 100.0,
            twin.real_autonomy * 100.0,
            twin.speed_gap() * 100.0,
            twin.lateral_divergence_m,
            twin.sim_laps,
            twin.real_laps,
        );
    }

    println!("\nthe twin gap (lateral divergence, autonomy drop) is what the");
    println!("paper's digital-twin projects ask students to measure and model.");
}
