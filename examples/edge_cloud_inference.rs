//! In-situ vs in-the-cloud vs hybrid inference (§3.3's evaluation
//! extension; the Zheng SC'23 poster experiment).
//!
//! Trains a linear model, then drives it with the perceive→act latency each
//! placement implies, sweeping the network's managed latency — showing
//! where on-board (edge) inference stops mattering and where the cloud
//! becomes unusable.
//!
//! ```sh
//! cargo run --release --example edge_cloud_inference
//! ```

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::records_to_dataset;
use autolearn::modelpilot::ModelPilot;
use autolearn::placement::{max_safe_speed, InferencePlacement};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_net::{Link, Path};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind, SavedModel};
use autolearn_nn::{TrainConfig, Trainer};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
use autolearn_track::paper_oval;

fn main() {
    let track = paper_oval();
    let model_cfg = ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        seed: 7,
        ..Default::default()
    };

    // Train once.
    println!("training the on-board model...");
    let mut model = CarModel::build(ModelKind::Linear, &model_cfg);
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 150.0, 7),
    );
    let data = prepare_dataset(
        &records_to_dataset(&collected.records, &model_cfg),
        model.input_spec(),
    );
    Trainer::new(TrainConfig {
        epochs: 10,
        seed: 7,
        ..Default::default()
    })
    .fit(&mut model, &data);
    let snapshot = SavedModel::capture(&mut model);
    let flops = model.flops_per_inference();

    let pi = ComputeDevice::raspberry_pi4();
    let v100 = ComputeDevice::of_gpu(GpuKind::V100);
    let frame_bytes = (40 * 30) as u64 + 200;
    let k_max = track.max_abs_curvature();

    println!(
        "\n{:<10} {:>9} {:>11} {:>11} {:>10} {:>9} {:>8}",
        "placement", "rtt(ms)", "latency(ms)", "safe v(m/s)", "autonomy", "v(m/s)", "crashes"
    );

    for rtt_ms in [2.0, 10.0, 30.0, 60.0, 120.0] {
        let path = Path::new(vec![Link::fabric_with_latency(rtt_ms / 2.0 / 1e3)]);
        let placements = [
            InferencePlacement::Edge { device: pi.clone() },
            InferencePlacement::Cloud {
                gpu: v100.clone(),
                path: path.clone(),
                frame_bytes,
            },
            InferencePlacement::Hybrid {
                edge_device: pi.clone(),
                gpu: v100.clone(),
                path: path.clone(),
                frame_bytes,
                deadline_s: 0.045,
            },
        ];
        for p in placements {
            let lat = p.latency(flops, flops, 400, 11);
            let safe_v = max_safe_speed(lat.mean_s, 0.05, k_max, 0.2, 3.5);

            // Drive with that latency injected into the loop.
            let mut sim = Simulation::new(
                track.clone(),
                CarConfig::default(),
                CameraConfig::small(),
                DriveConfig {
                    control_latency: lat.mean_s,
                    store_images: false,
                    ..Default::default()
                },
            );
            let mut pilot = ModelPilot::new(snapshot.restore());
            let session = sim.run(&mut pilot, 60.0);

            println!(
                "{:<10} {:>9.0} {:>11.1} {:>11.2} {:>9.1}% {:>9.2} {:>8}",
                p.name(),
                rtt_ms,
                lat.mean_s * 1e3,
                safe_v,
                session.autonomy() * 100.0,
                session.mean_speed(),
                session.crashes
            );
        }
        println!();
    }
    println!("edge inference is flat across RTT; cloud degrades as the");
    println!("network slows; hybrid tracks the better of the two.");
}
