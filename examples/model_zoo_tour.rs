//! Tour of the six DonkeyCar model architectures (§3.3: "AutoLearn comes
//! with six tested models, including linear, memory, 3D, categorical,
//! inferred, and RNN").
//!
//! Trains each on the same simulator dataset and races them: the paper's
//! students "found that the inferred model was best because it gave the car
//! the ability to speed fast, while still being accurate" — check whether
//! the reproduction agrees.
//!
//! ```sh
//! cargo run --release --example model_zoo_tour
//! ```

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::records_to_dataset;
use autolearn::modelpilot::ModelPilot;
use autolearn::pathway::competition_score;
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{TrainConfig, Trainer};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
use autolearn_track::paper_oval;

fn main() {
    let track = paper_oval();
    let model_cfg = ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        seed: 5,
        ..Default::default()
    };

    println!("collecting a shared training dataset (3 min of driving)...");
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 180.0, 5),
    );
    let raw = records_to_dataset(&collected.records, &model_cfg);

    println!(
        "\n{:<12} {:>8} {:>9} {:>9} {:>9} {:>8} {:>8} {:>7}",
        "model", "params", "kflops", "val loss", "autonomy", "v(m/s)", "err/lap", "score"
    );

    let mut results: Vec<(ModelKind, f64)> = Vec::new();
    for kind in ModelKind::all() {
        let mut model = CarModel::build(kind, &model_cfg);
        let data = prepare_dataset(&raw, model.input_spec());
        let report = Trainer::new(TrainConfig {
            epochs: 10,
            seed: 5,
            ..Default::default()
        })
        .fit(&mut model, &data)
        .expect("zoo graph validates");

        let params = model.param_count();
        let kflops = model.flops_per_inference() / 1000;

        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = ModelPilot::new(model);
        let session = sim.run_laps(&mut pilot, 4, 150.0);

        let score = competition_score(
            session.mean_speed(),
            session.autonomy(),
            session.errors_per_lap(),
        );
        println!(
            "{:<12} {:>8} {:>9} {:>9.4} {:>8.1}% {:>8.2} {:>8.2} {:>7.3}",
            kind.name(),
            params,
            kflops,
            report.best_val_loss,
            session.autonomy() * 100.0,
            session.mean_speed(),
            session.errors_per_lap(),
            score
        );
        results.push((kind, score));
    }

    results.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!(
        "\nwinner by competition score: {} (paper's students picked: inferred)",
        results[0].0.name()
    );
}
