//! Quickstart: the whole AutoLearn loop in one run.
//!
//! Mirrors a student's first session with the module (Fig. 1): drive the
//! simulated car around the paper's orange-tape oval to collect a tub,
//! clean it, "reserve a Chameleon V100 node" and train a linear model, then
//! let the model drive autonomous evaluation laps.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use autolearn::pipeline::{Pipeline, PipelineConfig};
use autolearn_track::paper_oval;

fn main() {
    let track = paper_oval();
    println!("AutoLearn quickstart on '{}'", track.name());
    println!(
        "  track: centerline {:.1} m, inner line {:.0} in, outer line {:.0} in, width {:.1} in",
        track.length(),
        track.inner_line_length() / autolearn_track::INCH,
        track.outer_line_length() / autolearn_track::INCH,
        track.mean_width() / autolearn_track::INCH,
    );

    let mut config = PipelineConfig::lesson_default(42);
    config.collection.duration_s = 180.0; // three minutes of manual driving
    config.train.epochs = 12;

    println!(
        "\ncollecting {:.0} s of manual driving, training '{}' on a {} node...\n",
        config.collection.duration_s,
        config.model_kind.name(),
        config.gpu.name()
    );
    let report = Pipeline::new(track, config)
        .run()
        .expect("fault-free lesson pipeline runs");

    println!("pipeline stages (simulated wall-clock):");
    for stage in &report.stages {
        println!("  {:<20} {}", stage.stage, stage.duration);
    }
    println!("  {:<20} {}", "TOTAL", report.total_time());

    println!("\ndata: {} records collected, {} after tubclean",
        report.records_collected, report.records_cleaned);
    println!(
        "training: {} epochs, best val loss {:.4}{}",
        report.train_report.epochs_ran,
        report.train_report.best_val_loss,
        if report.train_report.stopped_early {
            " (early stop)"
        } else {
            ""
        }
    );
    println!(
        "evaluation: {} laps, autonomy {:.1}%, mean speed {:.2} m/s, {} crashes",
        report.eval_laps,
        report.eval_autonomy * 100.0,
        report.eval_mean_speed,
        report.eval_crashes
    );

    if report.eval_autonomy > 0.9 {
        println!("\nthe model drives! try `--example model_zoo_tour` next.");
    } else {
        println!("\nthe model struggles — a student would collect more data.");
    }
}
