//! Property tests for the simulator: physics plausibility and rendering
//! invariants.

use autolearn_sim::{Camera, CameraConfig, CarConfig, Controls, Vehicle, VehicleState};
use autolearn_track::{circle_track, Vec2};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The car can never exceed its configured top speed (plus the small
    /// noise allowance) or drive backwards, for any control sequence.
    #[test]
    fn speed_stays_bounded(controls in prop::collection::vec((-1.5f64..1.5, -0.5f64..1.5), 1..120)) {
        let cfg = CarConfig::default();
        let cap = cfg.max_speed * 1.05;
        let mut v = Vehicle::new(cfg, VehicleState::at(Vec2::ZERO, 0.0));
        for (s, t) in controls {
            v.step(s, t, 0.05);
            prop_assert!(v.state.speed >= 0.0);
            prop_assert!(v.state.speed <= cap + 1e-9);
            prop_assert!(v.state.steer_angle.abs() <= v.config.max_steer + 1e-9);
            prop_assert!(v.state.heading.abs() <= std::f64::consts::PI + 1e-9);
        }
    }

    /// Distance travelled in a step never exceeds speed * dt.
    #[test]
    fn displacement_consistent_with_speed(steer in -1.0f64..1.0, throttle in 0.0f64..1.0) {
        let mut v = Vehicle::new(CarConfig::default(), VehicleState::at(Vec2::ZERO, 0.0));
        for _ in 0..40 {
            let before = v.state.pos;
            v.step(steer, throttle, 0.05);
            let moved = before.dist(v.state.pos);
            prop_assert!(moved <= v.state.speed * 0.05 + 1e-9);
        }
    }

    /// Rendering is a total function: any pose (on or off track, any
    /// heading) yields a full frame with all pixels written.
    #[test]
    fn camera_total_over_poses(x in -10.0f64..10.0, y in -10.0f64..10.0, heading in -3.1f64..3.1) {
        let track = circle_track(3.0, 0.8);
        let mut cam = Camera::new(CameraConfig::small());
        let img = cam.render(&track, &VehicleState::at(Vec2::new(x, y), heading));
        prop_assert_eq!(img.len(), 40 * 30);
        // Every pixel is one of the four scene colours' grayscale values.
        for &px in &img.data {
            prop_assert!(px > 0, "black pixel should not occur");
        }
    }

    /// The clean camera is a pure function of pose.
    #[test]
    fn camera_pure(x in -4.0f64..4.0, y in -4.0f64..4.0, heading in -3.0f64..3.0) {
        let track = circle_track(3.0, 0.8);
        let state = VehicleState::at(Vec2::new(x, y), heading);
        let a = Camera::new(CameraConfig::small()).render(&track, &state);
        let b = Camera::new(CameraConfig::small()).render(&track, &state);
        prop_assert_eq!(a, b);
    }

    /// Controls always clamp into their documented ranges.
    #[test]
    fn controls_clamp_everything(s in -100.0f64..100.0, t in -100.0f64..100.0) {
        let c = Controls::new(s, t);
        prop_assert!((-1.0..=1.0).contains(&c.steering));
        prop_assert!((0.0..=1.0).contains(&c.throttle));
    }
}
