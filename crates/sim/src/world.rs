//! Objects in the world besides the track: obstacles for the §3.3
//! "obstacle detection" extension exercise.

use autolearn_track::Vec2;
use serde::{Deserialize, Serialize};

/// A static obstacle on (or near) the track — a cardboard box, a shoe, a
/// rival car that stopped. Rendered by the camera as a coloured disk on
/// the ground and solid to the car.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    pub pos: Vec2,
    pub radius: f64,
    /// Rendered colour (default traffic-cone red).
    pub color: [u8; 3],
}

impl Obstacle {
    pub fn new(pos: Vec2, radius: f64) -> Obstacle {
        Obstacle {
            pos,
            radius,
            color: [200, 40, 30],
        }
    }

    /// Whether a car at `p` (with body radius `car_radius`) hits this.
    pub fn collides(&self, p: Vec2, car_radius: f64) -> bool {
        p.dist(self.pos) < self.radius + car_radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collision_radius_compose() {
        let o = Obstacle::new(Vec2::new(1.0, 0.0), 0.1);
        assert!(o.collides(Vec2::new(1.15, 0.0), 0.1));
        assert!(!o.collides(Vec2::new(1.35, 0.0), 0.1));
        assert!(o.collides(Vec2::new(1.0, 0.0), 0.0));
    }
}
