//! Driving interfaces.
//!
//! The paper's data-collection step offers a physical joystick, the
//! DonkeyCar web controller, and a constant-throttle race mode (§3.3). For
//! the reproduction, "manual driving" is a human-like PID line follower
//! with configurable imperfection: it sees the ground truth (a human sees
//! the track), reacts with delay and noise, and occasionally drifts — which
//! is exactly what produces the "bad data" tubclean exists to remove.

use autolearn_track::TrackProjection;
use autolearn_util::rng::derive_rng;
use autolearn_util::Image;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One control command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Controls {
    /// [-1, 1], positive = left.
    pub steering: f64,
    /// [0, 1].
    pub throttle: f64,
}

impl Controls {
    pub fn new(steering: f64, throttle: f64) -> Controls {
        Controls {
            steering: steering.clamp(-1.0, 1.0),
            throttle: throttle.clamp(0.0, 1.0),
        }
    }

    pub const COAST: Controls = Controls {
        steering: 0.0,
        throttle: 0.0,
    };
}

/// What a pilot can sense at each tick.
pub struct Observation<'a> {
    /// Camera frame (always available — it's what the models consume).
    pub image: &'a Image,
    /// Noisy measured speed, m/s.
    pub measured_speed: f64,
    /// Previous tick's controls.
    pub last_controls: Controls,
    /// Ground-truth track projection. Available to human-like pilots (a
    /// human sees where the car is); `None` for camera-only model pilots.
    pub ground_truth: Option<TrackProjection>,
    /// Seconds since session start.
    pub t: f64,
}

/// A driving policy.
pub trait Pilot: Send {
    fn control(&mut self, obs: &Observation<'_>) -> Controls;

    /// Called when the car is reset after a crash.
    fn notify_reset(&mut self) {}

    fn name(&self) -> String {
        "pilot".to_string()
    }
}

/// Configuration for the human-like line-following driver.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinePilotConfig {
    /// Proportional gain on lateral offset (per meter).
    pub k_lateral: f64,
    /// Gain on heading error (per rad).
    pub k_heading: f64,
    /// Feed-forward gain on track curvature.
    pub k_curvature: f64,
    /// Base throttle on straights.
    pub base_throttle: f64,
    /// Throttle reduction per unit |curvature|.
    pub curvature_slowdown: f64,
    /// Minimum throttle in bends.
    pub min_throttle: f64,
    /// Std-dev of steering noise (human hand jitter).
    pub steering_jitter: f64,
    /// Probability per tick of starting a distracted episode (drifting
    /// steering for a few ticks — the source of "bad data").
    pub mistake_rate: f64,
    /// Ticks a distracted episode lasts.
    pub mistake_duration: u32,
    /// Constant-throttle race mode: ignore curvature slowdown.
    pub constant_throttle: Option<f64>,
    pub seed: u64,
}

impl Default for LinePilotConfig {
    fn default() -> Self {
        LinePilotConfig {
            k_lateral: 3.0,
            k_heading: 1.8,
            k_curvature: 0.35,
            base_throttle: 0.55,
            curvature_slowdown: 0.35,
            min_throttle: 0.18,
            steering_jitter: 0.02,
            mistake_rate: 0.0,
            mistake_duration: 10,
            constant_throttle: None,
            seed: 0,
        }
    }
}

impl LinePilotConfig {
    /// A sloppier student driver that occasionally drifts off line hard
    /// enough to leave the lane — the raw material for tubclean.
    pub fn sloppy(seed: u64) -> LinePilotConfig {
        LinePilotConfig {
            steering_jitter: 0.06,
            mistake_rate: 0.015,
            mistake_duration: 15,
            seed,
            ..Default::default()
        }
    }
}

/// Human-like PID line follower (the "manual driving" data collector).
pub struct LinePilot {
    pub config: LinePilotConfig,
    rng: StdRng,
    mistake_ticks_left: u32,
    mistake_bias: f64,
}

impl LinePilot {
    pub fn new(config: LinePilotConfig) -> LinePilot {
        let rng = derive_rng(config.seed, "line-pilot");
        LinePilot {
            config,
            rng,
            mistake_ticks_left: 0,
            mistake_bias: 0.0,
        }
    }
}

impl Pilot for LinePilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let proj = obs
            .ground_truth
            .expect("LinePilot needs ground truth (a human sees the track)");
        let c = &self.config;

        // `proj.heading` here is the *heading error* (track tangent minus
        // car heading — the drive loop pre-subtracts before calling).
        // Positive lateral = car left of the centerline → steer right
        // (negative); align with the tangent; feed curvature forward.
        let heading_err = proj.heading;
        let mut steering = -c.k_lateral * proj.lateral
            + c.k_heading * heading_err
            + c.k_curvature * proj.curvature;

        // Human imperfections.
        if c.steering_jitter > 0.0 {
            steering += self.rng.gen_range(-1.0..1.0) * c.steering_jitter * 1.7;
        }
        if self.mistake_ticks_left > 0 {
            // A distracted driver stops correcting entirely: the wheel sits
            // wherever their hand drifted. This is what produces genuinely
            // off-side frames rather than a mild wobble.
            self.mistake_ticks_left -= 1;
            steering = self.mistake_bias;
        } else if c.mistake_rate > 0.0 && self.rng.gen::<f64>() < c.mistake_rate {
            self.mistake_ticks_left = c.mistake_duration;
            self.mistake_bias = self.rng.gen_range(-1.0..1.0);
        }

        let throttle = match c.constant_throttle {
            Some(t) => t,
            None => (c.base_throttle - c.curvature_slowdown * proj.curvature.abs())
                .max(c.min_throttle),
        };

        Controls::new(steering, throttle)
    }

    fn notify_reset(&mut self) {
        self.mistake_ticks_left = 0;
        self.mistake_bias = 0.0;
    }

    fn name(&self) -> String {
        if self.config.mistake_rate > 0.0 {
            "line-pilot-sloppy".to_string()
        } else {
            "line-pilot".to_string()
        }
    }
}

/// Fixed controls (e.g. the paper's constant-throttle race pilot, or a
/// do-nothing baseline).
pub struct ConstantPilot(pub Controls);

impl Pilot for ConstantPilot {
    fn control(&mut self, _obs: &Observation<'_>) -> Controls {
        self.0
    }

    fn name(&self) -> String {
        "constant".to_string()
    }
}

/// Replays a fixed command script, one entry per tick, holding the last
/// entry afterwards — models a recorded joystick/web-controller session.
pub struct ScriptedPilot {
    script: Vec<Controls>,
    tick: usize,
}

impl ScriptedPilot {
    pub fn new(script: Vec<Controls>) -> ScriptedPilot {
        assert!(!script.is_empty());
        ScriptedPilot { script, tick: 0 }
    }
}

impl Pilot for ScriptedPilot {
    fn control(&mut self, _obs: &Observation<'_>) -> Controls {
        let c = self.script[self.tick.min(self.script.len() - 1)];
        self.tick += 1;
        c
    }

    fn name(&self) -> String {
        "scripted".to_string()
    }
}

/// Wraps any pilot and replaces its throttle with a PI speed controller
/// holding `target_speed` using the measured (noisy) speed — the Fowler
/// SC'23 poster's "real-time speed data" consistency optimisation.
pub struct SpeedController<P: Pilot> {
    pub inner: P,
    pub target_speed: f64,
    kp: f64,
    ki: f64,
    integral: f64,
}

impl<P: Pilot> SpeedController<P> {
    pub fn new(inner: P, target_speed: f64) -> SpeedController<P> {
        SpeedController {
            inner,
            target_speed,
            kp: 0.5,
            ki: 0.08,
            integral: 0.0,
        }
    }
}

impl<P: Pilot> Pilot for SpeedController<P> {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let base = self.inner.control(obs);
        let err = self.target_speed - obs.measured_speed;
        self.integral = (self.integral + err).clamp(-8.0, 8.0);
        let throttle = self.kp * err + self.ki * self.integral;
        Controls::new(base.steering, throttle)
    }

    fn notify_reset(&mut self) {
        self.integral = 0.0;
        self.inner.notify_reset();
    }

    fn name(&self) -> String {
        format!("speed-pid({:.1} m/s, {})", self.target_speed, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs_with(proj: TrackProjection, speed: f64) -> (Image, TrackProjection, f64) {
        (Image::new(2, 2, 1), proj, speed)
    }

    fn proj(lateral: f64, heading: f64, curvature: f64) -> TrackProjection {
        TrackProjection {
            s: 0.0,
            lateral,
            heading,
            curvature,
            on_track: true,
        }
    }

    fn observe<'a>(
        img: &'a Image,
        p: TrackProjection,
        speed: f64,
    ) -> Observation<'a> {
        Observation {
            image: img,
            measured_speed: speed,
            last_controls: Controls::COAST,
            ground_truth: Some(p),
            t: 0.0,
        }
    }

    #[test]
    fn steers_back_toward_centerline() {
        let mut pilot = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            ..Default::default()
        });
        let (img, p, v) = obs_with(proj(0.3, 0.0, 0.0), 1.0);
        // Left of line (positive lateral) → steer right (negative).
        let c = pilot.control(&observe(&img, p, v));
        assert!(c.steering < -0.1, "steering {}", c.steering);
        let (img, p, v) = obs_with(proj(-0.3, 0.0, 0.0), 1.0);
        let c = pilot.control(&observe(&img, p, v));
        assert!(c.steering > 0.1);
    }

    #[test]
    fn slows_for_curvature() {
        let mut pilot = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            ..Default::default()
        });
        let (img, p_straight, v) = obs_with(proj(0.0, 0.0, 0.0), 1.0);
        let straight = pilot.control(&observe(&img, p_straight, v));
        let (img, p_bend, v) = obs_with(proj(0.0, 0.0, 1.0), 1.0);
        let bend = pilot.control(&observe(&img, p_bend, v));
        assert!(bend.throttle < straight.throttle);
        // And feeds curvature forward into steering.
        assert!(bend.steering > straight.steering);
    }

    #[test]
    fn constant_throttle_mode_ignores_curvature() {
        let mut pilot = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            constant_throttle: Some(0.4),
            ..Default::default()
        });
        let (img, p, v) = obs_with(proj(0.0, 0.0, 2.0), 1.0);
        let c = pilot.control(&observe(&img, p, v));
        assert_eq!(c.throttle, 0.4);
    }

    #[test]
    fn sloppy_pilot_makes_mistakes_eventually() {
        let mut clean = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            ..Default::default()
        });
        let mut sloppy = LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            mistake_rate: 0.2,
            mistake_duration: 5,
            seed: 3,
            ..Default::default()
        });
        let img = Image::new(2, 2, 1);
        let p = proj(0.0, 0.0, 0.0);
        let mut diverged = false;
        for _ in 0..200 {
            let a = clean.control(&observe(&img, p, 1.0));
            let b = sloppy.control(&observe(&img, p, 1.0));
            if (a.steering - b.steering).abs() > 0.05 {
                diverged = true;
                break;
            }
        }
        assert!(diverged, "sloppy pilot never drifted in 200 ticks");
    }

    #[test]
    fn scripted_pilot_replays_and_holds() {
        let mut pilot = ScriptedPilot::new(vec![
            Controls::new(0.1, 0.5),
            Controls::new(-0.2, 0.6),
        ]);
        let img = Image::new(2, 2, 1);
        let o = observe(&img, proj(0.0, 0.0, 0.0), 0.0);
        assert_eq!(pilot.control(&o).steering, 0.1);
        assert_eq!(pilot.control(&o).steering, -0.2);
        assert_eq!(pilot.control(&o).steering, -0.2); // holds last
    }

    #[test]
    fn speed_controller_raises_throttle_when_slow() {
        let mut pilot = SpeedController::new(ConstantPilot(Controls::new(0.0, 0.9)), 2.0);
        let img = Image::new(2, 2, 1);
        let slow = pilot.control(&observe(&img, proj(0.0, 0.0, 0.0), 0.5));
        assert!(slow.throttle > 0.5);
        let mut pilot2 = SpeedController::new(ConstantPilot(Controls::new(0.0, 0.9)), 2.0);
        let fast = pilot2.control(&observe(&img, proj(0.0, 0.0, 0.0), 3.5));
        assert!(fast.throttle < slow.throttle);
    }

    #[test]
    fn controls_clamp() {
        let c = Controls::new(-3.0, 7.0);
        assert_eq!(c.steering, -1.0);
        assert_eq!(c.throttle, 1.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut sc = SpeedController::new(ConstantPilot(Controls::COAST), 2.0);
        let img = Image::new(2, 2, 1);
        for _ in 0..20 {
            let _ = sc.control(&observe(&img, proj(0.0, 0.0, 0.0), 0.0));
        }
        assert!(sc.integral.abs() > 1.0);
        sc.notify_reset();
        assert_eq!(sc.integral, 0.0);
    }
}
