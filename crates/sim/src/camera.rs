//! Synthetic front camera.
//!
//! A pinhole camera mounted near the front of the car, pitched down at the
//! track. Each below-horizon pixel is inverse-projected onto the ground
//! plane and coloured by [`autolearn_track::Track::surface_at`], so the tape
//! lines the paper's oval is made of appear in the frames exactly where
//! physics puts them. Above-horizon pixels get a flat background.
//!
//! DonkeyCar records 160x120 RGB; the default mirrors that, and
//! [`CameraConfig::small`] gives the 40x30 grayscale variant the training
//! pipeline actually feeds the networks (and that tests use for speed).

use crate::vehicle::VehicleState;
use autolearn_track::{Track, Vec2};
use autolearn_util::rng::derive_rng;
use autolearn_util::Image;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Camera intrinsics + mounting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CameraConfig {
    pub width: usize,
    pub height: usize,
    /// 1 (grayscale) or 3 (RGB).
    pub channels: usize,
    /// Horizontal field of view, rad (~100° wide-angle lens).
    pub hfov: f64,
    /// Mount height above ground, m.
    pub mount_height: f64,
    /// Downward pitch, rad.
    pub pitch: f64,
    /// Forward offset of the camera from the rear axle, m.
    pub mount_forward: f64,
    /// Per-pixel gaussian noise std (0-255 scale); 0 for the clean sim.
    pub pixel_noise: f64,
    /// Farthest ground distance rendered; beyond it pixels get background.
    pub max_distance: f64,
    pub seed: u64,
}

impl Default for CameraConfig {
    fn default() -> Self {
        CameraConfig {
            width: 160,
            height: 120,
            channels: 3,
            hfov: 100.0_f64.to_radians(),
            mount_height: 0.12,
            pitch: 20.0_f64.to_radians(),
            mount_forward: 0.15,
            pixel_noise: 0.0,
            max_distance: 6.0,
            seed: 0,
        }
    }
}

impl CameraConfig {
    /// The low-resolution grayscale variant used for fast training/tests.
    pub fn small() -> CameraConfig {
        CameraConfig {
            width: 40,
            height: 30,
            channels: 1,
            ..Default::default()
        }
    }

    /// A noisy "real camera" version of any config.
    pub fn with_noise(mut self, sigma: f64, seed: u64) -> CameraConfig {
        self.pixel_noise = sigma;
        self.seed = seed;
        self
    }
}

const BACKGROUND: [u8; 3] = [190, 195, 200]; // walls/sky beyond the floor

/// The camera: precomputes per-pixel normalised ray coordinates.
pub struct Camera {
    pub config: CameraConfig,
    // Normalised image-plane coordinates per column / row.
    xn: Vec<f64>,
    yn: Vec<f64>,
    rng: StdRng,
}

impl Camera {
    pub fn new(config: CameraConfig) -> Camera {
        let f = (config.width as f64 / 2.0) / (config.hfov / 2.0).tan();
        let cx = (config.width as f64 - 1.0) / 2.0;
        let cy = (config.height as f64 - 1.0) / 2.0;
        let xn = (0..config.width).map(|u| (u as f64 - cx) / f).collect();
        let yn = (0..config.height).map(|v| (v as f64 - cy) / f).collect();
        let rng = derive_rng(config.seed, "camera");
        Camera {
            config,
            xn,
            yn,
            rng,
        }
    }

    /// Render the view from `state` on `track` (no obstacles).
    pub fn render(&mut self, track: &Track, state: &VehicleState) -> Image {
        self.render_scene(track, &[], state)
    }

    /// Render the view including obstacles (drawn as coloured ground
    /// disks — adequate at these resolutions for the obstacle-detection
    /// exercises).
    pub fn render_scene(
        &mut self,
        track: &Track,
        obstacles: &[crate::world::Obstacle],
        state: &VehicleState,
    ) -> Image {
        let cfg = &self.config;
        let mut img = Image::new(cfg.width, cfg.height, cfg.channels);
        let (sin_p, cos_p) = cfg.pitch.sin_cos();
        let fwd = Vec2::from_angle(state.heading);
        let left = fwd.perp();
        let cam_pos = state.pos + fwd * cfg.mount_forward;

        // Rows are independent: parallelise the per-pixel ground projection
        // (the hot kernel at DonkeyCar's full 160x120 resolution).
        use rayon::prelude::*;
        let (width, channels) = (cfg.width, cfg.channels);
        let xn = &self.xn;
        let yn = &self.yn;
        img.data
            .par_chunks_mut(width * channels)
            .enumerate()
            .for_each(|(v, row)| {
                let yn_v = yn[v];
                // Vertical ray component (positive = downward-looking).
                let down = yn_v * cos_p + sin_p;
                for u in 0..width {
                    let color = if down <= 1e-6 {
                        BACKGROUND
                    } else {
                        let t = cfg.mount_height / down;
                        let forward_dist = t * (cos_p - yn_v * sin_p);
                        if forward_dist <= 0.0 || forward_dist > cfg.max_distance {
                            BACKGROUND
                        } else {
                            let left_dist = -t * xn[u];
                            let p = cam_pos + fwd * forward_dist + left * left_dist;
                            match obstacles.iter().find(|o| p.dist(o.pos) <= o.radius) {
                                Some(o) => o.color,
                                None => track.surface_at(p).color(),
                            }
                        }
                    };
                    for c in 0..channels {
                        row[u * channels + c] = color[c.min(2)];
                    }
                }
            });

        if cfg.pixel_noise > 0.0 {
            for px in img.data.iter_mut() {
                let n: f64 = self.rng.gen_range(-1.0..1.0) * cfg.pixel_noise * 1.7;
                *px = (f64::from(*px) + n).clamp(0.0, 255.0) as u8;
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::{circle_track, paper_oval, Surface};

    fn on_track_state(track: &Track) -> VehicleState {
        let (pos, heading) = track.start_pose();
        VehicleState::at(pos, heading)
    }

    #[test]
    fn frame_has_requested_shape() {
        let track = circle_track(4.0, 0.8);
        let mut cam = Camera::new(CameraConfig::small());
        let img = cam.render(&track, &on_track_state(&track));
        assert_eq!(img.width, 40);
        assert_eq!(img.height, 30);
        assert_eq!(img.channels, 1);
    }

    #[test]
    fn top_rows_are_background() {
        let track = paper_oval();
        let mut cam = Camera::new(CameraConfig::default());
        let img = cam.render(&track, &on_track_state(&track));
        // The very top row looks above the horizon.
        for u in 0..img.width {
            assert_eq!(
                [img.get(u, 0, 0), img.get(u, 0, 1), img.get(u, 0, 2)],
                BACKGROUND
            );
        }
    }

    #[test]
    fn bottom_center_sees_asphalt_when_centered() {
        let track = paper_oval();
        let mut cam = Camera::new(CameraConfig::default());
        let img = cam.render(&track, &on_track_state(&track));
        let (u, v) = (img.width / 2, img.height - 1);
        let px = [img.get(u, v, 0), img.get(u, v, 1), img.get(u, v, 2)];
        assert_eq!(px, Surface::Asphalt.color());
    }

    #[test]
    fn tape_lines_visible_in_frame() {
        let track = paper_oval();
        let mut cam = Camera::new(CameraConfig::default());
        let img = cam.render(&track, &on_track_state(&track));
        let tape = Surface::Line.color();
        let count = (0..img.height)
            .flat_map(|v| (0..img.width).map(move |u| (u, v)))
            .filter(|&(u, v)| {
                [img.get(u, v, 0), img.get(u, v, 1), img.get(u, v, 2)] == tape
            })
            .count();
        assert!(count > 20, "only {count} tape pixels visible");
    }

    #[test]
    fn view_shifts_with_lateral_offset() {
        // Move the car toward the left edge: the left-side tape line should
        // occupy more of the frame's left half.
        let track = paper_oval();
        let mut cam = Camera::new(CameraConfig::default());
        let centre = cam.render(&track, &on_track_state(&track));
        let (pos0, heading) = track.start_pose();
        let left_pos = track.offset_point(0.0, 0.25);
        let shifted = cam.render(&track, &VehicleState::at(left_pos, heading));
        let tape = Surface::Line.color();
        let left_tape = |img: &Image| {
            (0..img.height)
                .flat_map(|v| (0..img.width / 2).map(move |u| (u, v)))
                .filter(|&(u, v)| {
                    [img.get(u, v, 0), img.get(u, v, 1), img.get(u, v, 2)] == tape
                })
                .count() as i64
        };
        assert_ne!(
            left_tape(&centre),
            left_tape(&shifted),
            "offset {pos0:?} -> {left_pos:?} must change the view"
        );
    }

    #[test]
    fn noise_perturbs_but_preserves_structure() {
        let track = paper_oval();
        let state = on_track_state(&track);
        let mut clean_cam = Camera::new(CameraConfig::small());
        let mut noisy_cam = Camera::new(CameraConfig::small().with_noise(8.0, 5));
        let clean = clean_cam.render(&track, &state);
        let noisy = noisy_cam.render(&track, &state);
        assert_ne!(clean.data, noisy.data);
        // But the mean intensity stays close.
        assert!((clean.mean_intensity() - noisy.mean_intensity()).abs() < 6.0);
    }

    #[test]
    fn render_is_deterministic() {
        let track = circle_track(3.0, 0.7);
        let state = on_track_state(&track);
        let a = Camera::new(CameraConfig::small()).render(&track, &state);
        let b = Camera::new(CameraConfig::small()).render(&track, &state);
        assert_eq!(a, b);
    }

    #[test]
    fn off_track_view_differs_from_on_track() {
        let track = circle_track(3.0, 0.7);
        let (_, heading) = track.start_pose();
        let mut cam = Camera::new(CameraConfig::small());
        let on = cam.render(&track, &on_track_state(&track));
        let off = cam.render(
            &track,
            &VehicleState::at(track.offset_point(0.0, 2.5), heading),
        );
        assert_ne!(on.data, off.data);
    }
}
