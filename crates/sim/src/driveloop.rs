//! The 20 Hz sense → decide → act loop.
//!
//! Mirrors DonkeyCar's parts loop: render the camera, ask the pilot for
//! controls, apply them to the vehicle, and keep the bookkeeping the
//! paper's evaluation step asks students to measure — lap times, speed,
//! number of errors (off-track excursions and crashes).
//!
//! The loop can inject a perceive→act latency: controls computed from the
//! frame at time `t` take effect at `t + control_latency`. Setting that
//! latency to a network round-trip turns the same loop into the cloud- or
//! hybrid-inference car of the Zheng SC'23 poster experiment.

use crate::camera::{Camera, CameraConfig};
use crate::pilot::{Controls, Observation, Pilot};
use crate::vehicle::{CarConfig, Vehicle, VehicleState};
use autolearn_track::geometry::wrap_angle;
use autolearn_track::{Track, TrackProjection};
use autolearn_util::{Image, RunningStats};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Loop configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriveConfig {
    /// Control frequency (DonkeyCar default 20 Hz).
    pub hz: f64,
    /// Perceive→act delay, s. 0 = on-board inference.
    pub control_latency: f64,
    /// Meters beyond the track edge counted as a crash.
    pub crash_margin: f64,
    /// Put the car back on the centerline after a crash (a human would).
    pub reset_after_crash: bool,
    /// Keep camera frames in the session result (off for long evaluations).
    pub store_images: bool,
}

impl Default for DriveConfig {
    fn default() -> Self {
        DriveConfig {
            hz: 20.0,
            control_latency: 0.0,
            crash_margin: 0.30,
            reset_after_crash: true,
            store_images: true,
        }
    }
}

/// One recorded tick.
#[derive(Debug, Clone)]
pub struct Frame {
    pub t: f64,
    /// Present when `store_images` is on.
    pub image: Option<Image>,
    /// Controls *commanded* this tick (what a tub would record).
    pub controls: Controls,
    pub state: VehicleState,
    pub proj: TrackProjection,
    pub off_track: bool,
    pub crashed: bool,
}

/// Per-lap metrics.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LapStats {
    pub lap: usize,
    pub time_s: f64,
    pub mean_speed: f64,
    pub off_track_ticks: usize,
    pub crashes: usize,
}

/// Everything measured over a session.
#[derive(Debug, Clone)]
pub struct SessionResult {
    pub frames: Vec<Frame>,
    pub laps: Vec<LapStats>,
    pub ticks: usize,
    pub duration_s: f64,
    pub distance_m: f64,
    pub crashes: usize,
    pub off_track_ticks: usize,
}

impl SessionResult {
    /// Fraction of ticks spent on-track: the evaluation module's headline
    /// "autonomy" number.
    pub fn autonomy(&self) -> f64 {
        if self.ticks == 0 {
            return 0.0;
        }
        1.0 - self.off_track_ticks as f64 / self.ticks as f64
    }

    pub fn mean_speed(&self) -> f64 {
        if self.duration_s > 0.0 {
            self.distance_m / self.duration_s
        } else {
            0.0
        }
    }

    pub fn completed_laps(&self) -> usize {
        self.laps.len()
    }

    pub fn mean_lap_time(&self) -> f64 {
        if self.laps.is_empty() {
            return 0.0;
        }
        self.laps.iter().map(|l| l.time_s).sum::<f64>() / self.laps.len() as f64
    }

    /// Coefficient of variation of lap times — the Fowler poster's
    /// consistency metric.
    pub fn lap_time_cv(&self) -> f64 {
        let mut s = RunningStats::new();
        s.extend(self.laps.iter().map(|l| l.time_s));
        s.cv()
    }

    /// Errors per lap (off-track excursions + crashes), the paper's
    /// "measuring qualities of interest (speed, number of errors)".
    pub fn errors_per_lap(&self) -> f64 {
        if self.laps.is_empty() {
            return (self.crashes + self.off_track_ticks) as f64;
        }
        self.laps
            .iter()
            .map(|l| l.crashes as f64 + (l.off_track_ticks > 0) as u8 as f64)
            .sum::<f64>()
            / self.laps.len() as f64
    }
}

/// Car body radius for obstacle collisions, m.
const CAR_RADIUS: f64 = 0.12;

/// A car on a track with a camera (and optionally obstacles).
pub struct Simulation {
    pub track: Track,
    pub vehicle: Vehicle,
    pub camera: Camera,
    pub config: DriveConfig,
    pub obstacles: Vec<crate::world::Obstacle>,
}

impl Simulation {
    pub fn new(
        track: Track,
        car: CarConfig,
        camera: CameraConfig,
        config: DriveConfig,
    ) -> Simulation {
        let (pos, heading) = track.start_pose();
        let vehicle = Vehicle::new(car, VehicleState::at(pos, heading));
        Simulation {
            track,
            vehicle,
            camera: Camera::new(camera),
            config,
            obstacles: Vec::new(),
        }
    }

    /// Place an obstacle on the track at station `s`, offset `lateral`.
    pub fn add_obstacle(&mut self, s: f64, lateral: f64, radius: f64) {
        let pos = self.track.offset_point(s, lateral);
        self.obstacles.push(crate::world::Obstacle::new(pos, radius));
    }

    /// Drive for `duration_s` seconds.
    pub fn run(&mut self, pilot: &mut dyn Pilot, duration_s: f64) -> SessionResult {
        self.run_until(pilot, duration_s, usize::MAX)
    }

    /// Drive until `laps` laps complete or `max_duration_s` elapses.
    pub fn run_laps(
        &mut self,
        pilot: &mut dyn Pilot,
        laps: usize,
        max_duration_s: f64,
    ) -> SessionResult {
        self.run_until(pilot, max_duration_s, laps)
    }

    fn run_until(
        &mut self,
        pilot: &mut dyn Pilot,
        max_duration_s: f64,
        max_laps: usize,
    ) -> SessionResult {
        let dt = 1.0 / self.config.hz;
        let total_ticks = (max_duration_s * self.config.hz).ceil() as usize;
        let track_len = self.track.length();

        let mut frames = Vec::new();
        let mut laps = Vec::new();
        let mut pending: VecDeque<(f64, Controls)> = VecDeque::new();
        let mut applied = Controls::COAST;
        let mut last_commanded = Controls::COAST;

        let mut crashes = 0usize;
        let mut off_track_ticks = 0usize;
        let mut distance = 0.0f64;

        // Lap bookkeeping.
        let mut prev_s = self.track.project(self.vehicle.state.pos).s;
        let mut progress = 0.0f64;
        let mut lap_start_t = 0.0f64;
        let mut lap_speed = RunningStats::new();
        let mut lap_off = 0usize;
        let mut lap_crashes = 0usize;

        for tick in 0..total_ticks {
            let t = tick as f64 * dt;

            // Sense.
            let image =
                self.camera
                    .render_scene(&self.track, &self.obstacles, &self.vehicle.state);
            let proj = self.track.project(self.vehicle.state.pos);
            let heading_err = wrap_angle(proj.heading - self.vehicle.state.heading);
            let pilot_proj = TrackProjection {
                heading: heading_err,
                ..proj
            };
            let measured_speed = self.vehicle.measured_speed();

            // Decide.
            let commanded = pilot.control(&Observation {
                image: &image,
                measured_speed,
                last_controls: last_commanded,
                ground_truth: Some(pilot_proj),
                t,
            });
            last_commanded = commanded;
            pending.push_back((t + self.config.control_latency, commanded));
            while let Some(&(apply_t, c)) = pending.front() {
                if apply_t <= t + 1e-9 {
                    applied = c;
                    pending.pop_front();
                } else {
                    break;
                }
            }

            // Act.
            self.vehicle.step(applied.steering, applied.throttle, dt);
            distance += self.vehicle.state.speed * dt;
            lap_speed.push(self.vehicle.state.speed);

            // Classify the new position.
            let post = self.track.project(self.vehicle.state.pos);
            let edge = self.track.edge_distance(self.vehicle.state.pos);
            let off = !post.on_track;
            let hit_obstacle = self
                .obstacles
                .iter()
                .any(|o| o.collides(self.vehicle.state.pos, CAR_RADIUS));
            let crashed = edge > self.config.crash_margin || hit_obstacle;
            if off {
                off_track_ticks += 1;
                lap_off += 1;
            }
            if crashed {
                crashes += 1;
                lap_crashes += 1;
                if self.config.reset_after_crash {
                    // After an obstacle strike a human places the car just
                    // past the obstacle; after a lane departure, where it
                    // left.
                    let s = if hit_obstacle {
                        self.track.wrap_station(post.s + 0.6)
                    } else {
                        post.s
                    };
                    let pos = self.track.point_at(s);
                    let heading = self.track.heading_at(s);
                    self.vehicle.reset_to(pos, heading);
                    pilot.notify_reset();
                    pending.clear();
                    applied = Controls::COAST;
                }
            }

            // Lap accounting on wrapped progress.
            let s_now = self.track.project(self.vehicle.state.pos).s;
            let mut ds = s_now - prev_s;
            if ds > track_len / 2.0 {
                ds -= track_len;
            } else if ds < -track_len / 2.0 {
                ds += track_len;
            }
            // A crash reset teleports along the track; don't count it as
            // progress beyond the small snap distance.
            progress += ds;
            prev_s = s_now;
            if progress >= track_len {
                progress -= track_len;
                let lap_t = t + dt - lap_start_t;
                laps.push(LapStats {
                    lap: laps.len(),
                    time_s: lap_t,
                    mean_speed: lap_speed.mean(),
                    off_track_ticks: lap_off,
                    crashes: lap_crashes,
                });
                lap_start_t = t + dt;
                lap_speed = RunningStats::new();
                lap_off = 0;
                lap_crashes = 0;
            }

            frames.push(Frame {
                t,
                image: if self.config.store_images {
                    Some(image)
                } else {
                    None
                },
                controls: commanded,
                state: self.vehicle.state,
                proj: post,
                off_track: off,
                crashed,
            });

            if laps.len() >= max_laps {
                break;
            }
        }

        let ticks = frames.len();
        SessionResult {
            frames,
            laps,
            ticks,
            duration_s: ticks as f64 * dt,
            distance_m: distance,
            crashes,
            off_track_ticks,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pilot::{ConstantPilot, LinePilot, LinePilotConfig};
    use autolearn_track::{circle_track, paper_oval};

    fn quiet_pilot() -> LinePilot {
        LinePilot::new(LinePilotConfig {
            steering_jitter: 0.0,
            ..Default::default()
        })
    }

    fn sim(track: autolearn_track::Track) -> Simulation {
        Simulation::new(
            track,
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig::default(),
        )
    }

    #[test]
    fn line_pilot_stays_on_track() {
        let mut s = sim(circle_track(3.0, 0.8));
        let result = s.run(&mut quiet_pilot(), 30.0);
        assert_eq!(result.crashes, 0, "crashed {} times", result.crashes);
        assert!(result.autonomy() > 0.97, "autonomy {}", result.autonomy());
        assert!(result.distance_m > 10.0);
    }

    #[test]
    fn line_pilot_laps_the_paper_oval() {
        let mut s = sim(paper_oval());
        let result = s.run_laps(&mut quiet_pilot(), 2, 120.0);
        assert!(
            result.completed_laps() >= 2,
            "only {} laps in 120 s",
            result.completed_laps()
        );
        let lap = &result.laps[0];
        assert!(lap.time_s > 3.0 && lap.time_s < 60.0, "lap {}s", lap.time_s);
        assert!(lap.mean_speed > 0.3);
    }

    #[test]
    fn frames_are_recorded_at_hz() {
        let mut s = sim(circle_track(3.0, 0.8));
        let result = s.run(&mut quiet_pilot(), 2.0);
        assert_eq!(result.ticks, 40);
        assert!(result.frames[0].image.is_some());
        assert!((result.frames[1].t - 0.05).abs() < 1e-9);
    }

    #[test]
    fn store_images_off_drops_frames_images() {
        let mut s = Simulation::new(
            circle_track(3.0, 0.8),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let result = s.run(&mut quiet_pilot(), 1.0);
        assert!(result.frames.iter().all(|f| f.image.is_none()));
    }

    #[test]
    fn full_throttle_blind_pilot_crashes() {
        let mut s = sim(circle_track(2.0, 0.6));
        let mut pilot = ConstantPilot(Controls::new(0.0, 1.0));
        let result = s.run(&mut pilot, 20.0);
        assert!(result.crashes > 0, "straight-line pilot must leave a circle");
        assert!(result.autonomy() < 1.0);
    }

    #[test]
    fn crash_reset_puts_car_back() {
        let mut s = sim(circle_track(2.0, 0.6));
        let mut pilot = ConstantPilot(Controls::new(0.0, 1.0));
        let result = s.run(&mut pilot, 30.0);
        // After every crash the car returns on-track, so the last frame
        // should generally be near the track.
        assert!(result.crashes >= 2);
        let back_on_track = result
            .frames
            .windows(2)
            .filter(|w| w[0].crashed && w[1].proj.on_track)
            .count();
        assert!(back_on_track >= 1);
    }

    #[test]
    fn latency_degrades_driving() {
        let run_with_latency = |latency: f64| {
            let mut s = Simulation::new(
                circle_track(1.5, 0.5),
                CarConfig::default(),
                CameraConfig::small(),
                DriveConfig {
                    control_latency: latency,
                    ..Default::default()
                },
            );
            let mut pilot = LinePilot::new(LinePilotConfig {
                steering_jitter: 0.0,
                base_throttle: 0.75,
                min_throttle: 0.5,
                ..Default::default()
            });
            let r = s.run(&mut pilot, 30.0);
            (r.autonomy(), r.crashes)
        };
        let (auto_fast, _) = run_with_latency(0.0);
        let (auto_slow, crashes_slow) = run_with_latency(0.6);
        assert!(
            auto_slow < auto_fast || crashes_slow > 0,
            "0.6 s of latency must hurt: {auto_fast} vs {auto_slow}"
        );
    }

    #[test]
    fn lap_times_consistent_for_clean_pilot() {
        let mut s = sim(paper_oval());
        let result = s.run_laps(&mut quiet_pilot(), 4, 240.0);
        assert!(result.completed_laps() >= 3);
        assert!(
            result.lap_time_cv() < 0.2,
            "lap CV {} too high for a clean pilot",
            result.lap_time_cv()
        );
    }

    #[test]
    fn errors_per_lap_defined_without_laps() {
        let mut s = sim(circle_track(3.0, 0.8));
        let mut pilot = ConstantPilot(Controls::COAST);
        let r = s.run(&mut pilot, 2.0);
        assert_eq!(r.completed_laps(), 0);
        assert_eq!(r.mean_lap_time(), 0.0);
        assert_eq!(r.lap_time_cv(), 0.0);
        // No laps: errors_per_lap falls back to raw error count.
        assert!(r.errors_per_lap() >= 0.0);
    }

    #[test]
    fn lap_stats_fields_populated() {
        let mut s = sim(paper_oval());
        let r = s.run_laps(&mut quiet_pilot(), 2, 120.0);
        for (i, lap) in r.laps.iter().enumerate() {
            assert_eq!(lap.lap, i);
            assert!(lap.time_s > 0.0);
            assert!(lap.mean_speed > 0.0);
        }
        // Lap times sum to within a couple of ticks of total duration.
        let lap_total: f64 = r.laps.iter().map(|l| l.time_s).sum();
        assert!(lap_total <= r.duration_s + 0.1);
    }

    #[test]
    fn zero_duration_session_is_empty() {
        let mut s = sim(circle_track(3.0, 0.8));
        let r = s.run(&mut quiet_pilot(), 0.0);
        assert_eq!(r.ticks, 0);
        assert_eq!(r.autonomy(), 0.0);
        assert_eq!(r.mean_speed(), 0.0);
    }

    #[test]
    fn obstacle_stops_a_blind_pilot() {
        // The line pilot sees only the centerline, not obstacles: it drives
        // straight into one. (The obstacle-detection extension in the core
        // crate exists to fix exactly this.)
        let mut s = sim(circle_track(3.0, 0.8));
        let start_s = s.track.project(s.vehicle.state.pos).s;
        s.add_obstacle(s.track.wrap_station(start_s + 3.0), 0.0, 0.15);
        let result = s.run(&mut quiet_pilot(), 20.0);
        assert!(result.crashes > 0, "blind pilot must hit the obstacle");
    }

    #[test]
    fn obstacle_visible_in_camera() {
        let mut s = sim(circle_track(3.0, 0.8));
        let start_s = s.track.project(s.vehicle.state.pos).s;
        s.add_obstacle(s.track.wrap_station(start_s + 1.0), 0.0, 0.2);
        let img = s
            .camera
            .render_scene(&s.track, &s.obstacles, &s.vehicle.state);
        // Grayscale of [200,40,30] ≈ 86 — distinct from asphalt 70; count
        // pixels differing from an obstacle-free render.
        let clean = Camera::new(CameraConfig::small()).render(&s.track, &s.vehicle.state);
        let diff = img
            .data
            .iter()
            .zip(&clean.data)
            .filter(|(a, b)| a != b)
            .count();
        assert!(diff > 5, "obstacle must show up in the frame ({diff} px)");
    }

    #[test]
    fn obstacle_reset_places_car_past_it() {
        let mut s = sim(circle_track(3.0, 0.8));
        let start_s = s.track.project(s.vehicle.state.pos).s;
        let obs_s = s.track.wrap_station(start_s + 3.0);
        s.add_obstacle(obs_s, 0.0, 0.15);
        let result = s.run(&mut quiet_pilot(), 30.0);
        // After the reset the car continues; with the obstacle sitting on
        // the line the pilot hits it roughly once per lap but keeps making
        // progress.
        assert!(result.distance_m > 5.0);
    }

    #[test]
    fn session_metrics_consistent() {
        let mut s = sim(circle_track(3.0, 0.8));
        let r = s.run(&mut quiet_pilot(), 10.0);
        assert!((r.duration_s - 10.0).abs() < 0.051);
        assert!(r.mean_speed() > 0.0);
        assert!(r.mean_speed() <= CarConfig::default().max_speed);
        assert_eq!(r.ticks, r.frames.len());
    }
}
