//! Kinematic bicycle model of the 1/16-scale car.

use autolearn_track::geometry::wrap_angle;
use autolearn_track::Vec2;
use autolearn_util::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Physical parameters. Defaults approximate the Waveshare PiRacer / typical
/// DonkeyCar chassis the paper recommends (~$200 kit, §3.1).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarConfig {
    /// Axle-to-axle distance, m.
    pub wheelbase: f64,
    /// Maximum front-wheel steering angle, rad (~25°).
    pub max_steer: f64,
    /// Top speed at full throttle, m/s.
    pub max_speed: f64,
    /// Steering servo time constant, s.
    pub steer_tau: f64,
    /// Drivetrain speed time constant, s.
    pub speed_tau: f64,
    /// Std-dev of steering actuation noise, rad ("real car" imperfection).
    pub steer_noise: f64,
    /// Std-dev of multiplicative speed noise per step.
    pub speed_noise: f64,
    /// Std-dev of the *measured* speed (encoder noise), m/s.
    pub speed_sensor_noise: f64,
    /// RNG seed for the noise streams.
    pub seed: u64,
}

impl Default for CarConfig {
    fn default() -> Self {
        CarConfig {
            wheelbase: 0.26,
            max_steer: 25.0_f64.to_radians(),
            max_speed: 3.5,
            steer_tau: 0.08,
            speed_tau: 0.35,
            steer_noise: 0.0,
            speed_noise: 0.0,
            speed_sensor_noise: 0.0,
            seed: 0,
        }
    }
}

impl CarConfig {
    /// The "physical car" variant: same chassis, realistic imperfections.
    /// The clean default models the DonkeyCar Unity simulator; the noisy
    /// variant models the real tape-track car — the pair is the paper's
    /// digital-twin axis.
    pub fn real_car(seed: u64) -> CarConfig {
        CarConfig {
            steer_noise: 0.02,
            speed_noise: 0.03,
            speed_sensor_noise: 0.05,
            seed,
            ..Default::default()
        }
    }
}

/// Instantaneous vehicle state in world coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleState {
    pub pos: Vec2,
    /// Heading, rad.
    pub heading: f64,
    /// Forward speed, m/s.
    pub speed: f64,
    /// Actual (lagged) front-wheel angle, rad.
    pub steer_angle: f64,
}

impl VehicleState {
    pub fn at(pos: Vec2, heading: f64) -> VehicleState {
        VehicleState {
            pos,
            heading,
            speed: 0.0,
            steer_angle: 0.0,
        }
    }
}

/// The simulated car.
pub struct Vehicle {
    pub config: CarConfig,
    pub state: VehicleState,
    rng: StdRng,
}

impl Vehicle {
    pub fn new(config: CarConfig, initial: VehicleState) -> Vehicle {
        let rng = derive_rng(config.seed, "vehicle");
        Vehicle {
            config,
            state: initial,
            rng,
        }
    }

    /// Advance `dt` seconds under the commanded controls (steering in
    /// `-1..=1`, throttle in `0..=1`). Positive steering turns left
    /// (counter-clockwise), matching the track's lateral convention.
    pub fn step(&mut self, steering_cmd: f64, throttle_cmd: f64, dt: f64) {
        let c = &self.config;
        let steering_cmd = steering_cmd.clamp(-1.0, 1.0);
        let throttle_cmd = throttle_cmd.clamp(0.0, 1.0);

        // First-order servo lag toward the commanded wheel angle.
        let target_angle = steering_cmd * c.max_steer;
        let alpha_s = (dt / c.steer_tau).min(1.0);
        self.state.steer_angle += (target_angle - self.state.steer_angle) * alpha_s;
        if c.steer_noise > 0.0 {
            self.state.steer_angle += gaussian(&mut self.rng) * c.steer_noise;
        }
        self.state.steer_angle = self.state.steer_angle.clamp(-c.max_steer, c.max_steer);

        // First-order speed response toward throttle * max_speed.
        let target_speed = throttle_cmd * c.max_speed;
        let alpha_v = (dt / c.speed_tau).min(1.0);
        self.state.speed += (target_speed - self.state.speed) * alpha_v;
        if c.speed_noise > 0.0 {
            self.state.speed *= 1.0 + gaussian(&mut self.rng) * c.speed_noise;
        }
        self.state.speed = self.state.speed.clamp(0.0, c.max_speed * 1.05);

        // Kinematic bicycle update.
        let yaw_rate = self.state.speed / c.wheelbase * self.state.steer_angle.tan();
        self.state.heading = wrap_angle(self.state.heading + yaw_rate * dt);
        self.state.pos += Vec2::from_angle(self.state.heading) * (self.state.speed * dt);
    }

    /// Measured speed: ground truth plus encoder noise.
    pub fn measured_speed(&mut self) -> f64 {
        let noise = if self.config.speed_sensor_noise > 0.0 {
            gaussian(&mut self.rng) * self.config.speed_sensor_noise
        } else {
            0.0
        };
        (self.state.speed + noise).max(0.0)
    }

    /// Teleport back to a pose (the "human picks the crashed car up and
    /// puts it back on the track" reset).
    pub fn reset_to(&mut self, pos: Vec2, heading: f64) {
        self.state = VehicleState::at(pos, heading);
    }
}

fn gaussian(rng: &mut StdRng) -> f64 {
    // Box–Muller.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car() -> Vehicle {
        Vehicle::new(
            CarConfig::default(),
            VehicleState::at(Vec2::ZERO, 0.0),
        )
    }

    #[test]
    fn accelerates_toward_target_speed() {
        let mut v = car();
        for _ in 0..200 {
            v.step(0.0, 1.0, 0.05);
        }
        assert!(
            (v.state.speed - v.config.max_speed).abs() < 0.05,
            "speed {}",
            v.state.speed
        );
    }

    #[test]
    fn coasts_to_stop_without_throttle() {
        let mut v = car();
        for _ in 0..100 {
            v.step(0.0, 1.0, 0.05);
        }
        for _ in 0..300 {
            v.step(0.0, 0.0, 0.05);
        }
        assert!(v.state.speed < 0.05, "speed {}", v.state.speed);
    }

    #[test]
    fn straight_driving_stays_straight() {
        let mut v = car();
        for _ in 0..100 {
            v.step(0.0, 0.5, 0.05);
        }
        assert!(v.state.heading.abs() < 1e-9);
        assert!(v.state.pos.y.abs() < 1e-9);
        assert!(v.state.pos.x > 1.0);
    }

    #[test]
    fn positive_steering_turns_left() {
        let mut v = car();
        for _ in 0..100 {
            v.step(0.5, 0.5, 0.05);
        }
        assert!(v.state.heading > 0.1, "heading {}", v.state.heading);
        assert!(v.state.pos.y > 0.0);
    }

    #[test]
    fn turning_radius_matches_bicycle_model() {
        let mut v = car();
        // Full steering at steady speed: R = L / tan(max_steer).
        let expected_r = v.config.wheelbase / v.config.max_steer.tan();
        // Warm up to steady state.
        for _ in 0..400 {
            v.step(1.0, 0.3, 0.01);
        }
        let yaw_rate =
            v.state.speed / v.config.wheelbase * v.state.steer_angle.tan();
        let r = v.state.speed / yaw_rate;
        assert!(
            (r - expected_r).abs() < 0.05 * expected_r,
            "radius {r} vs {expected_r}"
        );
    }

    #[test]
    fn servo_lag_delays_steering() {
        let mut v = car();
        v.step(1.0, 0.0, 0.01);
        // After 10 ms (tau = 80 ms) the wheel has moved only a fraction.
        assert!(v.state.steer_angle < 0.5 * v.config.max_steer);
        for _ in 0..100 {
            v.step(1.0, 0.0, 0.01);
        }
        assert!((v.state.steer_angle - v.config.max_steer).abs() < 0.01);
    }

    #[test]
    fn noise_is_deterministic_by_seed() {
        let mk = |seed| {
            let mut v = Vehicle::new(
                CarConfig::real_car(seed),
                VehicleState::at(Vec2::ZERO, 0.0),
            );
            for _ in 0..50 {
                v.step(0.3, 0.6, 0.05);
            }
            (v.state.pos, v.state.speed)
        };
        assert_eq!(mk(7), mk(7));
        assert_ne!(mk(7).0, mk(8).0);
    }

    #[test]
    fn real_car_diverges_from_clean_sim() {
        let drive = |cfg: CarConfig| {
            let mut v = Vehicle::new(cfg, VehicleState::at(Vec2::ZERO, 0.0));
            for _ in 0..200 {
                v.step(0.2, 0.5, 0.05);
            }
            v.state.pos
        };
        let clean = drive(CarConfig::default());
        let real = drive(CarConfig::real_car(3));
        assert!(clean.dist(real) > 1e-3, "noise must perturb the trajectory");
    }

    #[test]
    fn measured_speed_clean_when_no_sensor_noise() {
        let mut v = car();
        for _ in 0..40 {
            v.step(0.0, 0.7, 0.05);
        }
        assert_eq!(v.measured_speed(), v.state.speed);
    }

    #[test]
    fn reset_restores_pose() {
        let mut v = car();
        for _ in 0..50 {
            v.step(0.5, 0.8, 0.05);
        }
        v.reset_to(Vec2::new(1.0, 2.0), 0.5);
        assert_eq!(v.state.pos, Vec2::new(1.0, 2.0));
        assert_eq!(v.state.speed, 0.0);
        assert_eq!(v.state.steer_angle, 0.0);
    }
}
