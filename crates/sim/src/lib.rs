//! DonkeyCar-style small-scale car simulator.
//!
//! The paper's module offers the DonkeyCar simulator as a first-class
//! alternative to the physical car for both data collection and model
//! evaluation (Fig. 2, §3.3). This crate is that simulator for the
//! reproduction:
//!
//! * [`vehicle`] — a kinematic bicycle model of the 1/16-scale car with
//!   first-order actuator lags, speed dynamics and configurable noise (the
//!   "real car" is this model with noise on; the "clean simulator" is the
//!   same model with noise off — the gap between them is the digital-twin
//!   experiment),
//! * [`camera`] — a synthetic front camera that ray-casts the ground plane
//!   and renders the track's tape lines into raw [`autolearn_util::Image`]
//!   frames, exactly the sensor the models train on,
//! * [`pilot`] — the driving interfaces: a human-like PID line follower
//!   (manual data collection, §3.3), scripted joystick/web controllers, a
//!   constant-throttle racing mode, and a speed-feedback wrapper (the
//!   Fowler SC'23 poster's real-time speed controller),
//! * [`driveloop`] — the 20 Hz sense→decide→act loop with lap timing,
//!   crash/off-track bookkeeping, control-latency injection (for the
//!   edge-vs-cloud inference experiments) and session recording.

pub mod camera;
pub mod driveloop;
pub mod pilot;
pub mod vehicle;
pub mod world;

pub use camera::{Camera, CameraConfig};
pub use driveloop::{DriveConfig, Frame, LapStats, SessionResult, Simulation};
pub use pilot::{
    ConstantPilot, Controls, LinePilot, LinePilotConfig, Observation, Pilot, ScriptedPilot,
    SpeedController,
};
pub use vehicle::{CarConfig, Vehicle, VehicleState};
pub use world::Obstacle;
