//! Training loop with validation and early stopping.
//!
//! Mirrors the DonkeyCar `donkey train` behaviour the paper's students run:
//! Adam, shuffled minibatches, per-epoch validation, early stopping on the
//! validation loss with a small patience.

use crate::data::Dataset;
use crate::models::DonkeyModel;
use crate::optim::{Adam, Optimizer};
use crate::schedule::{LrSchedule, LrScheduler};
use autolearn_analyze::graph::{validate_model, GraphError};
use autolearn_obs::{AttrValue, Obs};
use serde::{Deserialize, Serialize};

/// Training hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f32,
    /// Stop after this many epochs without validation improvement
    /// (DonkeyCar default 5). `None` disables early stopping.
    pub patience: Option<usize>,
    /// Fraction of data used for training (rest validates).
    pub train_frac: f64,
    /// Learning-rate schedule applied over the run.
    pub lr_schedule: LrSchedule,
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 20,
            batch_size: 32,
            learning_rate: 1e-3,
            patience: Some(5),
            train_frac: 0.8,
            lr_schedule: LrSchedule::Constant,
            seed: 0,
        }
    }
}

/// Per-epoch record.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochStats {
    pub epoch: usize,
    pub train_loss: f32,
    pub val_loss: f32,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    pub history: Vec<EpochStats>,
    pub best_val_loss: f32,
    pub best_epoch: usize,
    pub epochs_ran: usize,
    pub stopped_early: bool,
    /// Total examples processed (forward+backward), for the device-time
    /// model in `autolearn-cloud`.
    pub examples_seen: u64,
    /// Peak bytes held by the model's grow-only scratch arenas over the
    /// run (measured after training; the arenas never shrink, so the
    /// final footprint is the peak).
    pub scratch_peak_bytes: u64,
}

/// Trains a [`DonkeyModel`] on a prepared [`Dataset`].
pub struct Trainer {
    pub config: TrainConfig,
}

impl Trainer {
    pub fn new(config: TrainConfig) -> Trainer {
        Trainer { config }
    }

    /// Fit `model` on `data` (already transformed to the model's input
    /// spec). Returns the training report; the model is left with the
    /// final-epoch weights. If the model publishes a graph spec (via
    /// [`DonkeyModel::graph_spec`]) it is statically validated first and
    /// a broken graph is rejected before any weight update happens.
    pub fn fit(
        &self,
        model: &mut dyn DonkeyModel,
        data: &Dataset,
    ) -> Result<TrainReport, Vec<GraphError>> {
        assert!(data.len() >= 2, "dataset too small to split");
        let cfg = &self.config;
        let (train, val) = data.split(cfg.train_frac, cfg.seed);
        let mut opt = Adam::new(cfg.learning_rate);
        self.fit_with(model, &train, &val, &mut opt)
    }

    /// [`Trainer::fit`] with telemetry: wraps the run in a `fit` span,
    /// emits one `epoch` event per epoch (train/val loss), feeds the
    /// `nn.epoch_train_loss` / `nn.epoch_val_loss` histograms, and tracks
    /// the peak scratch-arena footprint as the `nn.scratch_peak_bytes`
    /// gauge. The weight trajectory is identical to the unobserved call.
    pub fn fit_observed(
        &self,
        model: &mut dyn DonkeyModel,
        data: &Dataset,
        obs: &mut Obs,
    ) -> Result<TrainReport, Vec<GraphError>> {
        assert!(data.len() >= 2, "dataset too small to split");
        let cfg = &self.config;
        let (train, val) = data.split(cfg.train_frac, cfg.seed);
        let mut opt = Adam::new(cfg.learning_rate);
        self.fit_inner(model, &train, &val, &mut opt, Some(obs))
    }

    /// Fit with explicit train/val sets and optimizer (used by experiments
    /// that sweep optimizers or need fixed splits). Performs the same
    /// pre-flight graph validation as [`Trainer::fit`].
    pub fn fit_with(
        &self,
        model: &mut dyn DonkeyModel,
        train: &Dataset,
        val: &Dataset,
        opt: &mut dyn Optimizer,
    ) -> Result<TrainReport, Vec<GraphError>> {
        self.fit_inner(model, train, val, opt, None)
    }

    fn fit_inner(
        &self,
        model: &mut dyn DonkeyModel,
        train: &Dataset,
        val: &Dataset,
        opt: &mut dyn Optimizer,
        mut obs: Option<&mut Obs>,
    ) -> Result<TrainReport, Vec<GraphError>> {
        if let Some(spec) = model.graph_spec() {
            validate_model(&spec)?;
        }
        let fit_span = obs.as_deref_mut().map(|o| o.begin_span("fit"));
        let cfg = &self.config;
        let mut history = Vec::new();
        let mut best_val = f32::INFINITY;
        let mut best_epoch = 0usize;
        let mut since_best = 0usize;
        let mut examples_seen = 0u64;
        let mut stopped_early = false;
        let mut scheduler = LrScheduler::new(cfg.lr_schedule, cfg.learning_rate);
        let mut last_val = f32::INFINITY;

        for epoch in 0..cfg.epochs {
            opt.set_learning_rate(scheduler.lr_for_epoch(epoch, cfg.epochs, last_val));
            let mut train_loss = 0.0f32;
            let mut batches = 0usize;
            for batch in train.batches(cfg.batch_size, true, cfg.seed ^ epoch as u64) {
                train_loss += model.train_batch(&batch, opt);
                examples_seen += batch.len() as u64;
                batches += 1;
            }
            train_loss /= batches.max(1) as f32; // cast: batch count, exact in f32

            let val_loss = evaluate(model, val, cfg.batch_size);
            last_val = val_loss;
            history.push(EpochStats {
                epoch,
                train_loss,
                val_loss,
            });
            if let Some(o) = obs.as_deref_mut() {
                o.event(
                    "epoch",
                    vec![
                        ("epoch".to_string(), AttrValue::Int(epoch as i64)),
                        ("train_loss".to_string(), AttrValue::F64(f64::from(train_loss))),
                        ("val_loss".to_string(), AttrValue::F64(f64::from(val_loss))),
                    ],
                );
                o.observe_with("nn.epoch_train_loss", LOSS_BUCKETS, f64::from(train_loss));
                o.observe_with("nn.epoch_val_loss", LOSS_BUCKETS, f64::from(val_loss));
                o.gauge_max("nn.scratch_peak_bytes", model.scratch_bytes() as f64);
            }

            if val_loss < best_val {
                best_val = val_loss;
                best_epoch = epoch;
                since_best = 0;
            } else {
                since_best += 1;
                if let Some(patience) = cfg.patience {
                    if since_best >= patience {
                        stopped_early = true;
                        break;
                    }
                }
            }
        }

        let scratch_peak_bytes = model.scratch_bytes() as u64;
        if let Some(o) = obs.as_deref_mut() {
            if stopped_early {
                o.event(
                    "early-stop",
                    vec![(
                        "best_epoch".to_string(),
                        AttrValue::Int(best_epoch as i64),
                    )],
                );
            }
            o.counter_add("nn.examples_seen", examples_seen);
            o.gauge_max("nn.scratch_peak_bytes", scratch_peak_bytes as f64);
            o.gauge_set("nn.best_val_loss", f64::from(best_val));
            if let Some(span) = fit_span {
                o.span_attr(span, "epochs_ran", AttrValue::Int(history.len() as i64));
                o.span_attr(span, "examples_seen", AttrValue::UInt(examples_seen));
                o.end_span(span);
            }
        }
        Ok(TrainReport {
            epochs_ran: history.len(),
            history,
            best_val_loss: best_val,
            best_epoch,
            stopped_early,
            examples_seen,
            scratch_peak_bytes,
        })
    }
}

/// Histogram bounds for per-epoch losses (MSE-scale, unitless).
const LOSS_BUCKETS: &[f64] = &[0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0];

/// Mean per-batch validation loss.
pub fn evaluate(model: &mut dyn DonkeyModel, data: &Dataset, batch_size: usize) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    let batches = data.batches(batch_size, false, 0);
    let total: f32 = batches.iter().map(|b| model.eval_batch(b)).sum();
    total / batches.len() as f32 // cast: batch count, exact in f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::{prepare_dataset, CarModel, ModelConfig, ModelKind};
    use crate::tensor::Tensor;
    use autolearn_util::rng::rng_from_seed;
    use rand::Rng;

    fn cfg() -> ModelConfig {
        ModelConfig {
            height: 24,
            width: 32,
            dropout: 0.0,
            ..Default::default()
        }
    }

    fn dataset(n: usize) -> Dataset {
        let c = cfg();
        let mut rng = rng_from_seed(5);
        let mut frames = Vec::new();
        let mut steer = Vec::new();
        let mut throt = Vec::new();
        for _ in 0..n {
            let s: f32 = rng.gen_range(-1.0..1.0);
            let band = (((s + 1.0) / 2.0) * (c.width as f32 - 1.0)) as usize;
            let mut img = vec![0.0f32; c.height * c.width];
            for y in 0..c.height {
                img[y * c.width + band] = 1.0;
            }
            frames.push(Tensor::from_vec(&[1, c.height, c.width], img));
            steer.push(s);
            throt.push(0.5);
        }
        Dataset::new(Tensor::stack(&frames), steer, throt)
    }

    #[test]
    fn fit_improves_validation_loss() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(100), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 16,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        assert_eq!(report.history.len(), report.epochs_ran);
        let first = report.history.first().unwrap().val_loss;
        assert!(report.best_val_loss < first);
        assert!(report.examples_seen > 0);
    }

    #[test]
    fn early_stopping_triggers_with_zero_patience() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(40), model.input_spec());
        // patience 0: stop at the first non-improving epoch.
        let trainer = Trainer::new(TrainConfig {
            epochs: 50,
            batch_size: 8,
            patience: Some(0),
            learning_rate: 0.5, // absurd LR forces divergence quickly
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        assert!(report.stopped_early);
        assert!(report.epochs_ran < 50);
    }

    #[test]
    fn no_early_stop_when_disabled() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(30), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 8,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        assert_eq!(report.epochs_ran, 3);
        assert!(!report.stopped_early);
    }

    #[test]
    fn evaluate_empty_dataset_is_zero() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let empty = dataset(4).subset(&[]);
        assert_eq!(evaluate(&mut model, &empty, 8), 0.0);
    }

    #[test]
    fn cosine_schedule_trains_and_converges() {
        use crate::schedule::LrSchedule;
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(80), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 16,
            lr_schedule: LrSchedule::Cosine { floor: 0.05 },
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        let first = report.history.first().unwrap().val_loss;
        assert!(report.best_val_loss <= first);
    }

    #[test]
    fn plateau_schedule_reduces_lr_on_stall() {
        use crate::optim::Adam;
        use crate::schedule::LrSchedule;
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(40), model.input_spec());
        let (train, val) = data.split(0.8, 0);
        // Absurd LR so validation stalls immediately, triggering reductions.
        let mut opt = Adam::new(0.5);
        let trainer = Trainer::new(TrainConfig {
            epochs: 8,
            batch_size: 8,
            learning_rate: 0.5,
            lr_schedule: LrSchedule::ReduceOnPlateau { patience: 1 },
            patience: None,
            ..Default::default()
        });
        let _ = trainer.fit_with(&mut model, &train, &val, &mut opt);
        assert!(
            opt.learning_rate() < 0.5,
            "plateau schedule never reduced: {}",
            opt.learning_rate()
        );
    }

    #[test]
    fn scratch_arena_is_stable_across_epochs() {
        // Steady-state training must not grow any layer's scratch arena:
        // one epoch warms every (layer, batch-shape) buffer, after which
        // the footprint is pinned.
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(40), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 8,
            patience: None,
            ..Default::default()
        });
        trainer.fit(&mut model, &data).expect("graph validates");
        let warm = model.scratch_bytes();
        assert!(warm > 0, "conv/dense layers should report scratch");
        trainer.fit(&mut model, &data).expect("graph validates");
        trainer.fit(&mut model, &data).expect("graph validates");
        assert_eq!(
            model.scratch_bytes(),
            warm,
            "scratch must be allocated once per (layer, batch-shape)"
        );
    }

    #[test]
    fn observed_fit_matches_unobserved_and_reports_epochs() {
        let make = || {
            let mut model = CarModel::build(ModelKind::Linear, &cfg());
            let data = prepare_dataset(&dataset(60), model.input_spec());
            (model, data)
        };
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            batch_size: 16,
            patience: None,
            ..Default::default()
        });
        let (mut plain_model, data) = make();
        let plain = trainer.fit(&mut plain_model, &data).expect("graph validates");
        let (mut obs_model, data) = make();
        let mut obs = Obs::new();
        let observed = trainer
            .fit_observed(&mut obs_model, &data, &mut obs)
            .expect("graph validates");

        // Telemetry must not perturb training.
        assert_eq!(plain.history.len(), observed.history.len());
        for (a, b) in plain.history.iter().zip(&observed.history) {
            assert_eq!(a.train_loss, b.train_loss);
            assert_eq!(a.val_loss, b.val_loss);
        }
        assert!(observed.scratch_peak_bytes > 0);
        assert_eq!(
            observed.scratch_peak_bytes,
            obs.metrics().gauge("nn.scratch_peak_bytes") as u64
        );
        // One fit span, one epoch event per epoch, exact loss round-trip.
        assert_eq!(obs.trace().spans_named("fit").count(), 1);
        let epochs: Vec<&autolearn_obs::Event> = obs.trace().events_named("epoch").collect();
        assert_eq!(epochs.len(), observed.epochs_ran);
        let first_loss = autolearn_obs::attr(&epochs[0].attrs, "val_loss")
            .unwrap()
            .as_f64()
            .unwrap();
        assert_eq!(first_loss, f64::from(observed.history[0].val_loss));
        assert_eq!(obs.metrics().counter("nn.examples_seen"), observed.examples_seen);
    }

    #[test]
    fn unobserved_fit_still_reports_scratch_peak() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(40), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 8,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        assert_eq!(report.scratch_peak_bytes, model.scratch_bytes() as u64);
        assert!(report.scratch_peak_bytes > 0);
    }

    #[test]
    fn best_epoch_tracks_minimum() {
        let mut model = CarModel::build(ModelKind::Linear, &cfg());
        let data = prepare_dataset(&dataset(60), model.input_spec());
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            batch_size: 16,
            patience: None,
            ..Default::default()
        });
        let report = trainer.fit(&mut model, &data).expect("graph validates");
        let min_epoch = report
            .history
            .iter()
            .min_by(|a, b| a.val_loss.partial_cmp(&b.val_loss).unwrap())
            .unwrap()
            .epoch;
        assert_eq!(report.best_epoch, min_epoch);
    }
}
