//! Learning-rate schedules.
//!
//! Keras users reach for `ReduceLROnPlateau` and cosine decay; the zoo's
//! training loop supports the same three behaviours.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule: maps (epoch, epochs_total, recent validation
/// behaviour) to a multiplier on the base learning rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant base rate.
    Constant,
    /// Multiply by `gamma` every `every` epochs.
    StepDecay { every: usize, gamma: f32 },
    /// Cosine annealing from the base rate down to `floor` x base.
    Cosine { floor: f32 },
    /// Halve the rate after `patience` epochs without val improvement
    /// (Keras' ReduceLROnPlateau with factor 0.5).
    ReduceOnPlateau { patience: usize },
}

/// Stateful evaluator for a schedule.
#[derive(Debug, Clone)]
pub struct LrScheduler {
    schedule: LrSchedule,
    base_lr: f32,
    best_val: f32,
    since_best: usize,
    plateau_factor: f32,
}

impl LrScheduler {
    pub fn new(schedule: LrSchedule, base_lr: f32) -> LrScheduler {
        LrScheduler {
            schedule,
            base_lr,
            best_val: f32::INFINITY,
            since_best: 0,
            plateau_factor: 1.0,
        }
    }

    /// Learning rate for `epoch` (0-based) of `total` epochs, given the
    /// last validation loss.
    pub fn lr_for_epoch(&mut self, epoch: usize, total: usize, last_val_loss: f32) -> f32 {
        match self.schedule {
            LrSchedule::Constant => self.base_lr,
            LrSchedule::StepDecay { every, gamma } => {
                let steps = epoch.checked_div(every).unwrap_or(0);
                // analyze::allow(no-unannotated-narrowing): epoch-scale exponent fits i32
                self.base_lr * gamma.powi(steps as i32)
            }
            LrSchedule::Cosine { floor } => {
                let t = if total <= 1 {
                    0.0
                } else {
                    // cast: epoch counters are small, exact in f32.
                    epoch as f32 / (total - 1) as f32
                };
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                self.base_lr * (floor + (1.0 - floor) * cos)
            }
            LrSchedule::ReduceOnPlateau { patience } => {
                if last_val_loss < self.best_val {
                    self.best_val = last_val_loss;
                    self.since_best = 0;
                } else {
                    self.since_best += 1;
                    if self.since_best > patience {
                        self.plateau_factor *= 0.5;
                        self.since_best = 0;
                    }
                }
                self.base_lr * self.plateau_factor
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let mut s = LrScheduler::new(LrSchedule::Constant, 1e-3);
        for e in 0..10 {
            assert_eq!(s.lr_for_epoch(e, 10, 1.0), 1e-3);
        }
    }

    #[test]
    fn step_decay_steps() {
        let mut s = LrScheduler::new(
            LrSchedule::StepDecay {
                every: 3,
                gamma: 0.1,
            },
            1.0,
        );
        assert_eq!(s.lr_for_epoch(0, 10, 1.0), 1.0);
        assert_eq!(s.lr_for_epoch(2, 10, 1.0), 1.0);
        assert!((s.lr_for_epoch(3, 10, 1.0) - 0.1).abs() < 1e-7);
        assert!((s.lr_for_epoch(6, 10, 1.0) - 0.01).abs() < 1e-8);
    }

    #[test]
    fn cosine_descends_to_floor() {
        let mut s = LrScheduler::new(LrSchedule::Cosine { floor: 0.1 }, 1.0);
        let first = s.lr_for_epoch(0, 11, 1.0);
        let mid = s.lr_for_epoch(5, 11, 1.0);
        let last = s.lr_for_epoch(10, 11, 1.0);
        assert!((first - 1.0).abs() < 1e-6);
        assert!(mid < first && mid > last);
        assert!((last - 0.1).abs() < 1e-6);
    }

    #[test]
    fn plateau_halves_after_patience() {
        let mut s = LrScheduler::new(LrSchedule::ReduceOnPlateau { patience: 2 }, 1.0);
        // Improving: full rate.
        assert_eq!(s.lr_for_epoch(0, 10, 1.0), 1.0);
        assert_eq!(s.lr_for_epoch(1, 10, 0.9), 1.0);
        // Stagnating for patience+1 epochs → halved.
        assert_eq!(s.lr_for_epoch(2, 10, 0.95), 1.0);
        assert_eq!(s.lr_for_epoch(3, 10, 0.95), 1.0);
        assert_eq!(s.lr_for_epoch(4, 10, 0.95), 0.5);
        // Improvement resets the counter but keeps the reduced rate.
        assert_eq!(s.lr_for_epoch(5, 10, 0.5), 0.5);
    }

    #[test]
    fn single_epoch_cosine_does_not_divide_by_zero() {
        let mut s = LrScheduler::new(LrSchedule::Cosine { floor: 0.2 }, 1.0);
        assert!((s.lr_for_epoch(0, 1, 1.0) - 1.0).abs() < 1e-6);
    }
}
