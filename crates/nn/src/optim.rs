//! Optimizers.
//!
//! Optimizers keep per-parameter state keyed by position in the model's
//! `params_mut()` ordering, which is stable for a fixed architecture.

use crate::layers::Param;

/// A gradient-descent optimizer.
pub trait Optimizer: Send {
    /// Apply one update step to `params` using their accumulated gradients,
    /// then zero the gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// Current learning rate (for schedules/reporting).
    fn learning_rate(&self) -> f32;

    /// Override the learning rate (LR schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// SGD with classical momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Vec<f32>>,
}

impl Sgd {
    pub fn new(lr: f32, momentum: f32) -> Sgd {
        assert!(lr > 0.0 && (0.0..1.0).contains(&momentum));
        Sgd {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
        }
        for (p, v) in params.iter_mut().zip(&mut self.velocity) {
            debug_assert_eq!(p.value.len(), v.len(), "parameter set changed shape");
            let g = p.grad.data();
            for (i, vel) in v.iter_mut().enumerate() {
                *vel = self.momentum * *vel - self.lr * g[i];
            }
            let pv = p.value.data_mut();
            for (x, vel) in pv.iter_mut().zip(v.iter()) {
                *x += *vel;
            }
            p.grad.fill(0.0);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam (Kingma & Ba), the Keras default used by DonkeyCar's training.
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    pub fn new(lr: f32) -> Adam {
        Adam::with_betas(lr, 0.9, 0.999)
    }

    pub fn with_betas(lr: f32, beta1: f32, beta2: f32) -> Adam {
        assert!(lr > 0.0);
        Adam {
            lr,
            beta1,
            beta2,
            eps: 1e-7, // Keras default epsilon
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.v = params.iter().map(|p| vec![0.0; p.value.len()]).collect();
            self.t = 0;
        }
        self.t += 1;
        // analyze::allow(no-unannotated-narrowing): step count stays far below i32::MAX
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32); // analyze::allow(no-unannotated-narrowing): same bound as above
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            debug_assert_eq!(p.value.len(), m.len(), "parameter set changed shape");
            let g = p.grad.data();
            let pv = p.value.data_mut();
            for i in 0..pv.len() {
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g[i];
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g[i] * g[i];
                let mhat = m[i] / b1t;
                let vhat = v[i] / b2t;
                pv[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
            p.grad.fill(0.0);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Minimise f(x) = sum(x^2) from x0; returns final |x|.
    fn descend(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut p = Param::new(Tensor::from_vec(&[2], vec![3.0, -2.0]));
        for _ in 0..steps {
            // grad of sum(x^2) = 2x
            let g = p.value.scale(2.0);
            p.grad = g;
            opt.step(&mut [&mut p]);
        }
        p.value.norm()
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1, 0.0);
        assert!(descend(&mut opt, 100) < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let mut plain = Sgd::new(0.01, 0.0);
        let mut momentum = Sgd::new(0.01, 0.9);
        let slow = descend(&mut plain, 30);
        let fast = descend(&mut momentum, 30);
        assert!(fast < slow, "momentum {fast} should beat plain {slow}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.3);
        assert!(descend(&mut opt, 200) < 1e-2);
    }

    #[test]
    fn step_zeroes_grads() {
        let mut p = Param::new(Tensor::from_vec(&[2], vec![1.0, 1.0]));
        p.grad = Tensor::from_vec(&[2], vec![0.5, 0.5]);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn learning_rate_settable() {
        let mut opt = Sgd::new(0.1, 0.5);
        assert_eq!(opt.learning_rate(), 0.1);
        opt.set_learning_rate(0.01);
        assert_eq!(opt.learning_rate(), 0.01);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step from zero state, update ≈ lr * sign(g).
        let mut p = Param::new(Tensor::from_vec(&[1], vec![0.0]));
        p.grad = Tensor::from_vec(&[1], vec![10.0]);
        let mut opt = Adam::new(0.1);
        opt.step(&mut [&mut p]);
        assert!((p.value.data()[0] + 0.1).abs() < 1e-3, "got {}", p.value.data()[0]);
    }
}
