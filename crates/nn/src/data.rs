//! Supervised driving datasets.
//!
//! A [`Dataset`] holds one tensor per model input (batch axis first) plus
//! per-example steering/throttle targets. Transforms produce the sequence
//! and control-history variants needed by the RNN/3D and Memory models from
//! a plain frame dataset.

use crate::tensor::Tensor;
use autolearn_util::rng::rng_from_seed;
use rand::seq::SliceRandom;

/// One minibatch: parallel slices of the dataset's inputs and targets.
#[derive(Debug, Clone)]
pub struct Batch {
    pub inputs: Vec<Tensor>,
    pub steering: Vec<f32>,
    pub throttle: Vec<f32>,
}

impl Batch {
    pub fn len(&self) -> usize {
        self.steering.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steering.is_empty()
    }
}

/// A supervised dataset with one or more aligned input tensors.
#[derive(Debug, Clone)]
pub struct Dataset {
    inputs: Vec<Tensor>,
    steering: Vec<f32>,
    throttle: Vec<f32>,
}

impl Dataset {
    /// Build from a single input tensor (e.g. images `[N, C, H, W]`).
    pub fn new(input: Tensor, steering: Vec<f32>, throttle: Vec<f32>) -> Dataset {
        Self::multi(vec![input], steering, throttle)
    }

    /// Build from several aligned input tensors.
    pub fn multi(inputs: Vec<Tensor>, steering: Vec<f32>, throttle: Vec<f32>) -> Dataset {
        assert!(!inputs.is_empty(), "dataset needs at least one input");
        let n = steering.len();
        assert_eq!(n, throttle.len(), "steering/throttle length mismatch");
        for t in &inputs {
            assert_eq!(t.dim0(), n, "input batch dim != target count");
        }
        Dataset {
            inputs,
            steering,
            throttle,
        }
    }

    pub fn len(&self) -> usize {
        self.steering.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steering.is_empty()
    }

    pub fn inputs(&self) -> &[Tensor] {
        &self.inputs
    }

    pub fn steering(&self) -> &[f32] {
        &self.steering
    }

    pub fn throttle(&self) -> &[f32] {
        &self.throttle
    }

    /// Select a subset by example index.
    pub fn subset(&self, idx: &[usize]) -> Dataset {
        Dataset {
            inputs: self.inputs.iter().map(|t| t.gather0(idx)).collect(),
            steering: idx.iter().map(|&i| self.steering[i]).collect(),
            throttle: idx.iter().map(|&i| self.throttle[i]).collect(),
        }
    }

    /// Deterministic shuffled train/validation split.
    pub fn split(&self, train_frac: f64, seed: u64) -> (Dataset, Dataset) {
        assert!((0.0..=1.0).contains(&train_frac));
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut rng_from_seed(seed));
        // cast: rounded fraction of a usize length is non-negative and fits.
        let cut = (self.len() as f64 * train_frac).round() as usize;
        (self.subset(&idx[..cut]), self.subset(&idx[cut..]))
    }

    /// Minibatches, optionally shuffled. The final short batch is kept.
    pub fn batches(&self, batch_size: usize, shuffle: bool, seed: u64) -> Vec<Batch> {
        assert!(batch_size > 0);
        let mut idx: Vec<usize> = (0..self.len()).collect();
        if shuffle {
            idx.shuffle(&mut rng_from_seed(seed));
        }
        idx.chunks(batch_size)
            .map(|chunk| {
                let sub = self.subset(chunk);
                Batch {
                    inputs: sub.inputs,
                    steering: sub.steering,
                    throttle: sub.throttle,
                }
            })
            .collect()
    }

    /// Convert a frame dataset `[N, C, H, W]` into overlapping sequences
    /// `[N-T+1, T, C, H, W]` for the RNN and 3D models. Targets come from
    /// the *last* frame of each window (predict the current control from
    /// recent history). Assumes temporally-ordered records.
    pub fn to_sequences(&self, t: usize) -> Dataset {
        assert_eq!(self.inputs.len(), 1, "to_sequences expects a frame dataset");
        let frames = &self.inputs[0];
        assert_eq!(frames.rank(), 4, "frames must be [N, C, H, W]");
        assert!(t >= 1 && self.len() >= t, "need at least {t} frames");
        let n_out = self.len() - t + 1;
        let ex = frames.example_len();
        let mut data = Vec::with_capacity(n_out * t * ex);
        for i in 0..n_out {
            for k in 0..t {
                data.extend_from_slice(frames.example(i + k));
            }
        }
        let mut shape = vec![n_out, t];
        shape.extend_from_slice(&frames.shape()[1..]);
        Dataset {
            inputs: vec![Tensor::from_vec(&shape, data)],
            steering: self.steering[t - 1..].to_vec(),
            throttle: self.throttle[t - 1..].to_vec(),
        }
    }

    /// Append a control-history input `[N, 2M]` (the previous M
    /// steering/throttle pairs, zero-padded at the start) for the Memory
    /// model. Assumes temporally-ordered records.
    pub fn with_history(&self, m: usize) -> Dataset {
        assert_eq!(self.inputs.len(), 1, "with_history expects a frame dataset");
        assert!(m >= 1);
        let n = self.len();
        let mut hist = vec![0.0f32; n * 2 * m];
        for i in 0..n {
            for k in 0..m {
                if i > k {
                    let j = i - 1 - k;
                    hist[i * 2 * m + 2 * k] = self.steering[j];
                    hist[i * 2 * m + 2 * k + 1] = self.throttle[j];
                }
            }
        }
        Dataset {
            inputs: vec![
                self.inputs[0].clone(),
                Tensor::from_vec(&[n, 2 * m], hist),
            ],
            steering: self.steering.clone(),
            throttle: self.throttle.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n: usize) -> Dataset {
        let imgs = Tensor::from_vec(
            &[n, 1, 2, 2],
            (0..n * 4).map(|i| i as f32).collect(),
        );
        let steer: Vec<f32> = (0..n).map(|i| i as f32 / n as f32).collect();
        let throt: Vec<f32> = (0..n).map(|i| 1.0 - i as f32 / n as f32).collect();
        Dataset::new(imgs, steer, throt)
    }

    #[test]
    fn split_partitions_everything() {
        let d = toy(10);
        let (tr, va) = d.split(0.8, 42);
        assert_eq!(tr.len(), 8);
        assert_eq!(va.len(), 2);
        // Together they cover all steering values exactly once.
        let mut all: Vec<f32> = tr.steering().iter().chain(va.steering()).cloned().collect();
        all.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut expect: Vec<f32> = d.steering().to_vec();
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(all, expect);
    }

    #[test]
    fn split_deterministic() {
        let d = toy(20);
        let (a, _) = d.split(0.5, 7);
        let (b, _) = d.split(0.5, 7);
        assert_eq!(a.steering(), b.steering());
    }

    #[test]
    fn batches_cover_dataset() {
        let d = toy(10);
        let bs = d.batches(3, true, 1);
        assert_eq!(bs.len(), 4); // 3+3+3+1
        assert_eq!(bs.iter().map(|b| b.len()).sum::<usize>(), 10);
        assert_eq!(bs[0].inputs[0].shape(), &[3, 1, 2, 2]);
        assert_eq!(bs[3].len(), 1);
    }

    #[test]
    fn unshuffled_batches_preserve_order() {
        let d = toy(5);
        let bs = d.batches(2, false, 0);
        assert_eq!(bs[0].steering, &d.steering()[0..2]);
        assert_eq!(bs[2].steering, &d.steering()[4..5]);
    }

    #[test]
    fn sequences_window_correctly() {
        let d = toy(5);
        let seq = d.to_sequences(3);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq.inputs()[0].shape(), &[3, 3, 1, 2, 2]);
        // First window = frames 0..3; target = frame 2's controls.
        assert_eq!(seq.steering()[0], d.steering()[2]);
        // Window 0's frames are the first three originals, in order.
        let w0 = seq.inputs()[0].example(0);
        assert_eq!(&w0[0..4], d.inputs()[0].example(0));
        assert_eq!(&w0[8..12], d.inputs()[0].example(2));
    }

    #[test]
    fn history_is_previous_controls() {
        let d = toy(4);
        let h = d.with_history(2);
        assert_eq!(h.inputs().len(), 2);
        let hist = &h.inputs()[1];
        assert_eq!(hist.shape(), &[4, 4]);
        // Example 0 has no history: zeros.
        assert_eq!(hist.example(0), &[0.0, 0.0, 0.0, 0.0]);
        // Example 2's first pair is example 1's controls.
        assert_eq!(hist.example(2)[0], d.steering()[1]);
        assert_eq!(hist.example(2)[1], d.throttle()[1]);
        // ... and second pair is example 0's.
        assert_eq!(hist.example(2)[2], d.steering()[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_misaligned_targets() {
        let imgs = Tensor::zeros(&[3, 1, 2, 2]);
        let _ = Dataset::new(imgs, vec![0.0; 3], vec![0.0; 2]);
    }

    #[test]
    fn batch_larger_than_dataset_is_one_batch() {
        let d = toy(3);
        let bs = d.batches(100, true, 0);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].len(), 3);
    }

    #[test]
    fn split_extremes() {
        let d = toy(5);
        let (all, none) = d.split(1.0, 0);
        assert_eq!(all.len(), 5);
        assert!(none.is_empty());
        let (nothing, everything) = d.split(0.0, 0);
        assert!(nothing.is_empty());
        assert_eq!(everything.len(), 5);
    }

    #[test]
    fn sequence_of_length_one_is_identity_windowing() {
        let d = toy(4);
        let seq = d.to_sequences(1);
        assert_eq!(seq.len(), 4);
        assert_eq!(seq.inputs()[0].shape(), &[4, 1, 1, 2, 2]);
        assert_eq!(seq.steering(), d.steering());
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn sequences_longer_than_dataset_rejected() {
        let d = toy(2);
        let _ = d.to_sequences(5);
    }
}
