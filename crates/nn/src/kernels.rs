//! The optimized numeric core: one GEMM primitive reused everywhere.
//!
//! Every hot path in this crate — dense layers, LSTM gate math, and (via
//! im2col lowering) 2-D/3-D convolution forward *and* backward — bottoms out
//! in [`gemm`], a blocked, panel-packed `f32` matrix multiply:
//!
//! * **register tiling** — a `4 x 16` micro-kernel keeps a C tile in
//!   registers across the whole K loop, so each loaded A/B element feeds
//!   many multiply-adds instead of one,
//! * **panel packing** — A row-panels and B column-panels are repacked into
//!   contiguous, k-major buffers so the micro-kernel's loads are unit-stride
//!   regardless of the operands' logical layout (including transposed
//!   operands, which cost nothing extra: transposition happens during
//!   packing),
//! * **cache blocking** — loops are blocked over M/N/K (`MC`/`NC`/`KC`) in
//!   the usual BLIS/GotoBLAS nesting so packed panels stay resident in cache
//!   while they are reused.
//!
//! Packing buffers are thread-local and grow-only: after the first call at a
//! given size the steady-state training loop performs no heap allocation
//! inside any kernel. Layers hold their larger per-shape temporaries
//! (im2col matrices, cached activations, gradient staging) in a [`Scratch`]
//! arena with the same grow-only discipline.
//!
//! The pre-GEMM naive kernels live on in [`reference`] as the correctness
//! oracle: `tests/kernel_parity.rs` asserts the optimized and reference
//! paths agree to 1e-4 relative tolerance over randomized shapes, and the
//! kernel benchmarks (`scripts/bench.sh`) report the speedup between the
//! two so the trajectory stays measured rather than assumed.

use std::cell::RefCell;

/// Micro-kernel tile rows (A panel height).
const MR: usize = 4;
/// Micro-kernel tile columns (B panel width).
const NR: usize = 16;
/// Cache-block rows of A per packed block.
const MC: usize = 64;
/// Cache-block depth (K) per packed panel pair.
const KC: usize = 256;
/// Cache-block columns of B per packed block.
const NC: usize = 512;

thread_local! {
    /// Grow-only packing buffers `(packed A block, packed B block)` shared
    /// by every GEMM call on this thread. Sized for one `MC x KC` and one
    /// `KC x NC` block (rounded up to whole micro-panels); after warm-up no
    /// call allocates.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> =
        const { RefCell::new((Vec::new(), Vec::new())) }
}

/// `out = a · b` for row-major `a: [m, k]`, `b: [k, n]`, `out: [m, n]`.
///
/// Convenience wrapper over [`gemm`] with no transposes and no
/// accumulation.
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    gemm(out, false, a, false, b, false, m, k, n);
}

/// General `f32` matrix multiply: `out (+)= op(a) · op(b)`.
///
/// Logical dimensions are `op(a): [m, k]`, `op(b): [k, n]`, `out: [m, n]`,
/// all row-major. `ta`/`tb` select the transposed storage interpretation:
/// with `ta == true`, `a` is stored `[k, m]` and read as its transpose
/// (likewise `tb` for `b`, stored `[n, k]`). With `acc == true` the product
/// is accumulated into `out` (`+=`), which is how parameter gradients fold
/// over a batch without temporaries; otherwise `out` is overwritten.
pub fn gemm(
    out: &mut [f32],
    acc: bool,
    a: &[f32],
    ta: bool,
    b: &[f32],
    tb: bool,
    m: usize,
    k: usize,
    n: usize,
) {
    assert_eq!(a.len(), m * k, "gemm: lhs storage does not match [{m}, {k}]");
    assert_eq!(b.len(), k * n, "gemm: rhs storage does not match [{k}, {n}]");
    assert_eq!(out.len(), m * n, "gemm: out storage does not match [{m}, {n}]");
    if !acc {
        out.fill(0.0);
    }
    if m == 0 || n == 0 || k == 0 {
        return;
    }

    PACK.with(|pack| {
        let mut pack = pack.borrow_mut();
        let (pa, pb) = &mut *pack;
        // Grow-only: allocates on the first call, reuses afterwards.
        let pa_need = MC.min(m).next_multiple_of(MR) * KC.min(k);
        let pb_need = NC.min(n).next_multiple_of(NR) * KC.min(k);
        if pa.len() < pa_need {
            pa.resize(pa_need, 0.0);
        }
        if pb.len() < pb_need {
            pb.resize(pb_need, 0.0);
        }

        // hot-kernel: begin (blocked GEMM — no allocation below this line)
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                // Row-major B needs no packing for full-width panels: the
                // micro-kernel reads it in place at row stride `n`, which
                // the prefetcher handles and which halves the pack traffic
                // on the common forward shapes. Transposed B (and the
                // ragged tail panel, which needs zero padding) still go
                // through the packed path.
                if tb {
                    pack_b(pb, b, tb, k, n, pc, kc, jc, nc);
                }
                for ic in (0..m).step_by(MC) {
                    let mc = MC.min(m - ic);
                    // Row-major A needs no packing for full-height tiles
                    // either: the micro-kernel reads the four row slices in
                    // place (four sequential streams the prefetcher tracks),
                    // which removes the single biggest fixed cost on skinny
                    // forward shapes. Transposed A still packs the whole
                    // block; a ragged tail tile packs just its own panel.
                    if ta {
                        pack_a(pa, a, ta, m, k, ic, mc, pc, kc);
                    } else if mc % MR != 0 {
                        let tail = mc - mc % MR;
                        pack_a(pa, a, ta, m, k, ic + tail, mc - tail, pc, kc);
                    }
                    for jr in (0..nc).step_by(NR) {
                        let nr = NR.min(nc - jr);
                        let direct = !tb && nr == NR;
                        if !tb && nr < NR && ic == 0 {
                            // Pack just the ragged tail panel (at offset 0).
                            pack_b(pb, b, tb, k, n, pc, kc, jc + jr, nr);
                        }
                        let bp = if tb {
                            &pb[(jr / NR) * kc * NR..][..kc * NR]
                        } else {
                            &pb[..kc * NR]
                        };
                        for ir in (0..mc).step_by(MR) {
                            let mr = MR.min(mc - ir);
                            let mut tile = [[0.0f32; NR]; MR];
                            if !ta && mr == MR {
                                let ar = [
                                    &a[(ic + ir) * k + pc..][..kc],
                                    &a[(ic + ir + 1) * k + pc..][..kc],
                                    &a[(ic + ir + 2) * k + pc..][..kc],
                                    &a[(ic + ir + 3) * k + pc..][..kc],
                                ];
                                if direct {
                                    micro_kernel_direct_ab(
                                        ar,
                                        &b[pc * n..],
                                        jc + jr,
                                        n,
                                        kc,
                                        &mut tile,
                                    );
                                } else {
                                    micro_kernel_direct_a(ar, bp, &mut tile);
                                }
                            } else {
                                // Packed A: the whole block when `ta`, just
                                // the zero-padded tail panel otherwise.
                                let ap = if ta {
                                    &pa[(ir / MR) * kc * MR..][..kc * MR]
                                } else {
                                    &pa[..kc * MR]
                                };
                                if direct {
                                    micro_kernel_direct(
                                        ap,
                                        &b[pc * n..],
                                        jc + jr,
                                        n,
                                        kc,
                                        &mut tile,
                                    );
                                } else {
                                    micro_kernel(ap, bp, &mut tile);
                                }
                            }
                            for (r, trow) in tile.iter().enumerate().take(mr) {
                                let orow = &mut out[(ic + ir + r) * n + jc + jr..][..nr];
                                for (o, t) in orow.iter_mut().zip(trow) {
                                    *o += t;
                                }
                            }
                        }
                    }
                }
            }
        }
        // hot-kernel: end
    });
}

/// One 8-wide vector lane of the C tile: `acc += a * b` element-wise.
///
/// Written over a fixed-size `[f32; 8]` so LLVM keeps the lane in a single
/// vector register across the whole K loop instead of round-tripping the
/// accumulator through the stack.
#[inline(always)]
fn fma_lane(acc: &mut [f32; 8], a: f32, b: &[f32]) {
    for (x, &bv) in acc.iter_mut().zip(b) {
        *x += a * bv;
    }
}

/// The register-tiled inner kernel: `tile[MR][NR] += ap · bp` over one
/// packed K panel. `ap` is k-major `MR`-wide, `bp` k-major `NR`-wide.
///
/// The C tile is held in eight *named* `[f32; 8]` lanes (4 rows x 2 lanes)
/// rather than one `[[f32; NR]; MR]` array: scalar-replacement gives up on
/// the large array and spills every accumulator to the stack per K step
/// (~10x slower), while the named lanes each live in one vector register
/// for the duration of the loop.
#[inline(always)]
fn micro_kernel(ap: &[f32], bp: &[f32], tile: &mut [[f32; NR]; MR]) {
    let mut r0a = [0.0f32; 8];
    let mut r0b = [0.0f32; 8];
    let mut r1a = [0.0f32; 8];
    let mut r1b = [0.0f32; 8];
    let mut r2a = [0.0f32; 8];
    let mut r2b = [0.0f32; 8];
    let mut r3a = [0.0f32; 8];
    let mut r3b = [0.0f32; 8];
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)) {
        let (b0, b1) = brow.split_at(8);
        fma_lane(&mut r0a, arow[0], b0);
        fma_lane(&mut r0b, arow[0], b1);
        fma_lane(&mut r1a, arow[1], b0);
        fma_lane(&mut r1b, arow[1], b1);
        fma_lane(&mut r2a, arow[2], b0);
        fma_lane(&mut r2b, arow[2], b1);
        fma_lane(&mut r3a, arow[3], b0);
        fma_lane(&mut r3b, arow[3], b1);
    }
    tile[0][..8].copy_from_slice(&r0a);
    tile[0][8..].copy_from_slice(&r0b);
    tile[1][..8].copy_from_slice(&r1a);
    tile[1][8..].copy_from_slice(&r1b);
    tile[2][..8].copy_from_slice(&r2a);
    tile[2][8..].copy_from_slice(&r2b);
    tile[3][..8].copy_from_slice(&r3a);
    tile[3][8..].copy_from_slice(&r3b);
}

/// [`micro_kernel`] variant that reads a full-width B panel in place from
/// the row-major matrix (`bs` starts at the panel's first row, `bcol` is
/// the panel's column offset, rows are `n` apart) instead of a packed
/// copy. Skipping the pack halves B traffic on forward-shaped calls where
/// B is already row-major; the fixed-stride loads prefetch cleanly.
#[inline(always)]
fn micro_kernel_direct(
    ap: &[f32],
    bs: &[f32],
    bcol: usize,
    n: usize,
    kc: usize,
    tile: &mut [[f32; NR]; MR],
) {
    let mut r0a = [0.0f32; 8];
    let mut r0b = [0.0f32; 8];
    let mut r1a = [0.0f32; 8];
    let mut r1b = [0.0f32; 8];
    let mut r2a = [0.0f32; 8];
    let mut r2b = [0.0f32; 8];
    let mut r3a = [0.0f32; 8];
    let mut r3b = [0.0f32; 8];
    // Zipping packed-A pairs with contiguous B rows avoids a per-step
    // index multiply and lets the k loop run two steps per iteration.
    let mut brows = bs.chunks_exact(n);
    let mut apairs = ap.chunks_exact(2 * MR);
    let mut done = 0usize;
    while done + 2 <= kc {
        // The iterators cannot run dry before `kc` steps (the caller sizes
        // both operands), but if they ever did the indexed tail loop below
        // would still cover the remaining steps correctly.
        let (Some(apair), Some(brow0), Some(brow1)) = (apairs.next(), brows.next(), brows.next())
        else {
            break;
        };
        for (arow, brow) in [(&apair[..MR], brow0), (&apair[MR..], brow1)] {
            let (b0, b1) = brow[bcol..bcol + NR].split_at(8);
            fma_lane(&mut r0a, arow[0], b0);
            fma_lane(&mut r0b, arow[0], b1);
            fma_lane(&mut r1a, arow[1], b0);
            fma_lane(&mut r1b, arow[1], b1);
            fma_lane(&mut r2a, arow[2], b0);
            fma_lane(&mut r2b, arow[2], b1);
            fma_lane(&mut r3a, arow[3], b0);
            fma_lane(&mut r3b, arow[3], b1);
        }
        done += 2;
    }
    for kk in done..kc {
        let arow = &ap[kk * MR..][..MR];
        let (b0, b1) = bs[kk * n + bcol..][..NR].split_at(8);
        fma_lane(&mut r0a, arow[0], b0);
        fma_lane(&mut r0b, arow[0], b1);
        fma_lane(&mut r1a, arow[1], b0);
        fma_lane(&mut r1b, arow[1], b1);
        fma_lane(&mut r2a, arow[2], b0);
        fma_lane(&mut r2b, arow[2], b1);
        fma_lane(&mut r3a, arow[3], b0);
        fma_lane(&mut r3b, arow[3], b1);
    }
    tile[0][..8].copy_from_slice(&r0a);
    tile[0][8..].copy_from_slice(&r0b);
    tile[1][..8].copy_from_slice(&r1a);
    tile[1][8..].copy_from_slice(&r1b);
    tile[2][..8].copy_from_slice(&r2a);
    tile[2][8..].copy_from_slice(&r2b);
    tile[3][..8].copy_from_slice(&r3a);
    tile[3][8..].copy_from_slice(&r3b);
}

/// Fully in-place [`micro_kernel`] variant: reads the four A rows and the
/// full-width B panel directly from the row-major matrices, no packed
/// copies on either side. `ar` holds the tile's four row slices of `a`
/// (each `kc` long); `bs`/`bcol`/`n` address the B panel as in
/// [`micro_kernel_direct`]. This is the steady-state path for forward
/// GEMMs, where both operands are row-major and packing was the largest
/// fixed cost on skinny matrices.
#[inline(always)]
fn micro_kernel_direct_ab(
    ar: [&[f32]; 4],
    bs: &[f32],
    bcol: usize,
    n: usize,
    kc: usize,
    tile: &mut [[f32; NR]; MR],
) {
    let [a0, a1, a2, a3] = ar;
    let mut r0a = [0.0f32; 8];
    let mut r0b = [0.0f32; 8];
    let mut r1a = [0.0f32; 8];
    let mut r1b = [0.0f32; 8];
    let mut r2a = [0.0f32; 8];
    let mut r2b = [0.0f32; 8];
    let mut r3a = [0.0f32; 8];
    let mut r3b = [0.0f32; 8];
    let mut brows = bs.chunks_exact(n);
    let mut done = 0usize;
    while done + 2 <= kc {
        // The iterator cannot run dry before `kc` steps (the caller sizes
        // the operand), but if it ever did the indexed tail loop below
        // would still cover the remaining steps correctly.
        let (Some(brow0), Some(brow1)) = (brows.next(), brows.next()) else {
            break;
        };
        for (kk, brow) in [(done, brow0), (done + 1, brow1)] {
            let (b0, b1) = brow[bcol..bcol + NR].split_at(8);
            fma_lane(&mut r0a, a0[kk], b0);
            fma_lane(&mut r0b, a0[kk], b1);
            fma_lane(&mut r1a, a1[kk], b0);
            fma_lane(&mut r1b, a1[kk], b1);
            fma_lane(&mut r2a, a2[kk], b0);
            fma_lane(&mut r2b, a2[kk], b1);
            fma_lane(&mut r3a, a3[kk], b0);
            fma_lane(&mut r3b, a3[kk], b1);
        }
        done += 2;
    }
    for kk in done..kc {
        let (b0, b1) = bs[kk * n + bcol..][..NR].split_at(8);
        fma_lane(&mut r0a, a0[kk], b0);
        fma_lane(&mut r0b, a0[kk], b1);
        fma_lane(&mut r1a, a1[kk], b0);
        fma_lane(&mut r1b, a1[kk], b1);
        fma_lane(&mut r2a, a2[kk], b0);
        fma_lane(&mut r2b, a2[kk], b1);
        fma_lane(&mut r3a, a3[kk], b0);
        fma_lane(&mut r3b, a3[kk], b1);
    }
    tile[0][..8].copy_from_slice(&r0a);
    tile[0][8..].copy_from_slice(&r0b);
    tile[1][..8].copy_from_slice(&r1a);
    tile[1][8..].copy_from_slice(&r1b);
    tile[2][..8].copy_from_slice(&r2a);
    tile[2][8..].copy_from_slice(&r2b);
    tile[3][..8].copy_from_slice(&r3a);
    tile[3][8..].copy_from_slice(&r3b);
}

/// [`micro_kernel`] variant that reads the four A rows in place from the
/// row-major matrix (`ar` as in [`micro_kernel_direct_ab`]) against a
/// packed B panel — the transposed-B and ragged-tail-panel cases where B
/// must be packed but A still needn't be.
#[inline(always)]
fn micro_kernel_direct_a(ar: [&[f32]; 4], bp: &[f32], tile: &mut [[f32; NR]; MR]) {
    let [a0, a1, a2, a3] = ar;
    let mut r0a = [0.0f32; 8];
    let mut r0b = [0.0f32; 8];
    let mut r1a = [0.0f32; 8];
    let mut r1b = [0.0f32; 8];
    let mut r2a = [0.0f32; 8];
    let mut r2b = [0.0f32; 8];
    let mut r3a = [0.0f32; 8];
    let mut r3b = [0.0f32; 8];
    for (kk, (&av0, brow)) in a0.iter().zip(bp.chunks_exact(NR)).enumerate() {
        let (b0, b1) = brow.split_at(8);
        fma_lane(&mut r0a, av0, b0);
        fma_lane(&mut r0b, av0, b1);
        fma_lane(&mut r1a, a1[kk], b0);
        fma_lane(&mut r1b, a1[kk], b1);
        fma_lane(&mut r2a, a2[kk], b0);
        fma_lane(&mut r2b, a2[kk], b1);
        fma_lane(&mut r3a, a3[kk], b0);
        fma_lane(&mut r3b, a3[kk], b1);
    }
    tile[0][..8].copy_from_slice(&r0a);
    tile[0][8..].copy_from_slice(&r0b);
    tile[1][..8].copy_from_slice(&r1a);
    tile[1][8..].copy_from_slice(&r1b);
    tile[2][..8].copy_from_slice(&r2a);
    tile[2][8..].copy_from_slice(&r2b);
    tile[3][..8].copy_from_slice(&r3a);
    tile[3][8..].copy_from_slice(&r3b);
}

/// Pack the `mc x kc` block of `op(a)` starting at `(ic, pc)` into
/// k-major `MR`-row panels, zero-padding the ragged last panel.
fn pack_a(
    pa: &mut [f32],
    a: &[f32],
    ta: bool,
    m: usize,
    k: usize,
    ic: usize,
    mc: usize,
    pc: usize,
    kc: usize,
) {
    let panels = mc.div_ceil(MR);
    for p in 0..panels {
        let base = p * kc * MR;
        if ta {
            // `a` stored [k, m]: for a fixed k step the rows are adjacent,
            // so the k-outer order reads contiguously.
            for kk in 0..kc {
                let srow = &a[(pc + kk) * m..];
                for r in 0..MR {
                    let row = p * MR + r;
                    pa[base + kk * MR + r] = if row < mc { srow[ic + row] } else { 0.0 };
                }
            }
        } else {
            // `a` stored [m, k]: read each row's kc-slice contiguously
            // (k-outer here would stride by the full row length per load —
            // one cache line per element on large matrices).
            for r in 0..MR {
                let row = p * MR + r;
                if row < mc {
                    let src = &a[(ic + row) * k + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        pa[base + kk * MR + r] = v;
                    }
                } else {
                    for kk in 0..kc {
                        pa[base + kk * MR + r] = 0.0;
                    }
                }
            }
        }
    }
}

/// Pack the `kc x nc` block of `op(b)` starting at `(pc, jc)` into
/// k-major `NR`-column panels, zero-padding the ragged last panel.
fn pack_b(
    pb: &mut [f32],
    b: &[f32],
    tb: bool,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    jc: usize,
    nc: usize,
) {
    let panels = nc.div_ceil(NR);
    for p in 0..panels {
        let base = p * kc * NR;
        if tb {
            // `b` stored [n, k]: read each column's kc-slice contiguously.
            for c in 0..NR {
                let col = p * NR + c;
                if col < nc {
                    let src = &b[(jc + col) * k + pc..][..kc];
                    for (kk, &v) in src.iter().enumerate() {
                        pb[base + kk * NR + c] = v;
                    }
                } else {
                    for kk in 0..kc {
                        pb[base + kk * NR + c] = 0.0;
                    }
                }
            }
        } else {
            // `b` stored [k, n]: for a fixed k step the columns are
            // adjacent, so the k-outer order reads contiguously.
            for kk in 0..kc {
                let srow = &b[(pc + kk) * n..];
                for c in 0..NR {
                    let col = p * NR + c;
                    pb[base + kk * NR + c] = if col < nc { srow[jc + col] } else { 0.0 };
                }
            }
        }
    }
}

/// Lower one `[c, h, w]` image into the im2col matrix
/// `cols: [c*k*k, oh*ow]` for a square `k` kernel with stride `s` and valid
/// padding. Row `(ci*k + ky)*k + kx` of `cols` holds that kernel tap's
/// value for every output position, so convolution becomes
/// `W[f, c*k*k] · cols`.
pub fn im2col2d(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    debug_assert_eq!(x.len(), c * h * w);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    let ohow = oh * ow;
    let mut row = 0usize;
    // hot-kernel: begin (im2col lowering)
    for ci in 0..c {
        let xc = &x[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let dst = &mut cols[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let src = (oy * s + ky) * w + kx;
                    let drow = &mut dst[oy * ow..(oy + 1) * ow];
                    if s == 1 {
                        drow.copy_from_slice(&xc[src..src + ow]);
                    } else {
                        for (ox, d) in drow.iter_mut().enumerate() {
                            *d = xc[src + ox * s];
                        }
                    }
                }
                row += 1;
            }
        }
    }
    // hot-kernel: end
}

/// Adjoint of [`im2col2d`]: scatter-add `cols: [c*k*k, oh*ow]` back into
/// the `[c, h, w]` image gradient `dx` (which the caller has zeroed).
/// Overlapping receptive fields accumulate, which is exactly the
/// convolution input-gradient.
pub fn col2im2d(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    s: usize,
    oh: usize,
    ow: usize,
    dx: &mut [f32],
) {
    debug_assert_eq!(dx.len(), c * h * w);
    debug_assert_eq!(cols.len(), c * k * k * oh * ow);
    let ohow = oh * ow;
    let mut row = 0usize;
    // hot-kernel: begin (col2im scatter-add)
    for ci in 0..c {
        let xc = &mut dx[ci * h * w..(ci + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let src = &cols[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let dst = (oy * s + ky) * w + kx;
                    let srow = &src[oy * ow..(oy + 1) * ow];
                    for (ox, &v) in srow.iter().enumerate() {
                        xc[dst + ox * s] += v;
                    }
                }
                row += 1;
            }
        }
    }
    // hot-kernel: end
}

/// 3-D analogue of [`im2col2d`]: lower one `[c, t, h, w]` volume into
/// `cols: [c*kt*k*k, ot*oh*ow]` for kernel `(kt, k, k)` and stride
/// `(st, s, s)`, valid padding.
#[allow(clippy::too_many_arguments)]
pub fn im2col3d(
    x: &[f32],
    c: usize,
    t: usize,
    h: usize,
    w: usize,
    kt: usize,
    k: usize,
    st: usize,
    s: usize,
    ot: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    debug_assert_eq!(x.len(), c * t * h * w);
    debug_assert_eq!(cols.len(), c * kt * k * k * ot * oh * ow);
    let osp = ot * oh * ow;
    let mut row = 0usize;
    // hot-kernel: begin (3-D im2col lowering)
    for ci in 0..c {
        for kz in 0..kt {
            for ky in 0..k {
                for kx in 0..k {
                    let dst = &mut cols[row * osp..(row + 1) * osp];
                    for oz in 0..ot {
                        let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                        for oy in 0..oh {
                            let src = zoff + (oy * s + ky) * w + kx;
                            let drow =
                                &mut dst[(oz * oh + oy) * ow..(oz * oh + oy + 1) * ow];
                            if s == 1 {
                                drow.copy_from_slice(&x[src..src + ow]);
                            } else {
                                for (ox, d) in drow.iter_mut().enumerate() {
                                    *d = x[src + ox * s];
                                }
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
    // hot-kernel: end
}

/// Adjoint of [`im2col3d`]: scatter-add `cols` back into the zeroed
/// `[c, t, h, w]` volume gradient `dx`.
#[allow(clippy::too_many_arguments)]
pub fn col2im3d(
    cols: &[f32],
    c: usize,
    t: usize,
    h: usize,
    w: usize,
    kt: usize,
    k: usize,
    st: usize,
    s: usize,
    ot: usize,
    oh: usize,
    ow: usize,
    dx: &mut [f32],
) {
    debug_assert_eq!(dx.len(), c * t * h * w);
    debug_assert_eq!(cols.len(), c * kt * k * k * ot * oh * ow);
    let osp = ot * oh * ow;
    let mut row = 0usize;
    // hot-kernel: begin (3-D col2im scatter-add)
    for ci in 0..c {
        for kz in 0..kt {
            for ky in 0..k {
                for kx in 0..k {
                    let src = &cols[row * osp..(row + 1) * osp];
                    for oz in 0..ot {
                        let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                        for oy in 0..oh {
                            let dst = zoff + (oy * s + ky) * w + kx;
                            let srow = &src[(oz * oh + oy) * ow..(oz * oh + oy + 1) * ow];
                            for (ox, &v) in srow.iter().enumerate() {
                                dx[dst + ox * s] += v;
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
    }
    // hot-kernel: end
}

/// A per-layer arena of reusable `f32` buffers.
///
/// Slots are positional and grow-only: a layer asks for the lengths it
/// needs each step and gets the same backing storage back, so buffers are
/// allocated once per `(layer, batch-shape)` and steady-state training
/// performs no per-step heap allocation. A slot that shrinks (smaller
/// batch) keeps its capacity and hands back a prefix.
///
/// Returned slices are *not* zeroed; callers that need zeroed storage fill
/// explicitly (and only where required).
#[derive(Debug, Default)]
pub struct Scratch {
    slots: Vec<Vec<f32>>,
}

impl Scratch {
    /// Empty arena; the first use of each slot allocates it.
    pub fn new() -> Scratch {
        Scratch { slots: Vec::new() }
    }

    fn ensure(&mut self, idx: usize, len: usize) {
        if self.slots.len() <= idx {
            self.slots.resize_with(idx + 1, Vec::new);
        }
        if self.slots[idx].len() < len {
            self.slots[idx].resize(len, 0.0);
        }
    }

    /// Borrow slot 0 at `len` elements.
    pub fn get1(&mut self, l0: usize) -> &mut [f32] {
        self.ensure(0, l0);
        &mut self.slots[0][..l0]
    }

    /// Borrow slots 0 and 1 simultaneously.
    pub fn get2(&mut self, l0: usize, l1: usize) -> (&mut [f32], &mut [f32]) {
        self.ensure(0, l0);
        self.ensure(1, l1);
        let (s0, rest) = self.slots.split_at_mut(1);
        (&mut s0[0][..l0], &mut rest[0][..l1])
    }

    /// Borrow slots 0–2 simultaneously.
    pub fn get3(&mut self, l0: usize, l1: usize, l2: usize) -> (&mut [f32], &mut [f32], &mut [f32]) {
        self.ensure(0, l0);
        self.ensure(1, l1);
        self.ensure(2, l2);
        let (s0, rest) = self.slots.split_at_mut(1);
        let (s1, rest) = rest.split_at_mut(1);
        (&mut s0[0][..l0], &mut s1[0][..l1], &mut rest[0][..l2])
    }

    /// Borrow slots 0–3 simultaneously.
    pub fn get4(
        &mut self,
        l0: usize,
        l1: usize,
        l2: usize,
        l3: usize,
    ) -> (&mut [f32], &mut [f32], &mut [f32], &mut [f32]) {
        self.ensure(0, l0);
        self.ensure(1, l1);
        self.ensure(2, l2);
        self.ensure(3, l3);
        let (s0, rest) = self.slots.split_at_mut(1);
        let (s1, rest) = rest.split_at_mut(1);
        let (s2, rest) = rest.split_at_mut(1);
        (
            &mut s0[0][..l0],
            &mut s1[0][..l1],
            &mut s2[0][..l2],
            &mut rest[0][..l3],
        )
    }

    /// Bytes currently held by the arena. Stable across steady-state steps
    /// (same batch shape ⇒ same value), which is what the reuse tests pin.
    pub fn bytes(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.len() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Naive direct-loop kernels kept as the correctness oracle for the
/// optimized GEMM path (see the parity tests and `tests/kernel_parity.rs`).
pub mod reference {
    //! The pre-GEMM naive kernels, kept verbatim in spirit as the
    //! correctness oracle for the optimized path.
    //!
    //! These are the direct-loop implementations the layers shipped with
    //! before the GEMM rewrite (minus the data-dependent zero-skip
    //! branches, which made timing input-dependent without changing
    //! results). They are deliberately simple: `tests/kernel_parity.rs`
    //! holds the optimized kernels to 1e-4 relative agreement with these
    //! over randomized shapes, and `scripts/bench.sh` reports the
    //! optimized-over-reference speedup per case.

    /// Naive row-sweep matmul: `out = a · b` with the old `(i, k, j)` loop
    /// order, `a: [m, k]`, `b: [k, n]`, `out: [m, n]`.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        assert_eq!(a.len(), m * k);
        assert_eq!(b.len(), k * n);
        assert_eq!(out.len(), m * n);
        out.fill(0.0);
        for (i, row) in out.chunks_mut(n.max(1)).enumerate().take(m) {
            for kk in 0..k {
                let av = a[i * k + kk];
                let brow = &b[kk * n..(kk + 1) * n];
                for (o, &bv) in row.iter_mut().zip(brow) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Naive direct 2-D convolution forward: the original 6-deep loop.
    /// `x: [batch, c, h, w]`, `wv: [f, c, k, k]`, `bias: [f]`,
    /// `out: [batch, f, oh, ow]` with `oh = (h-k)/s + 1` (valid padding).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_forward(
        x: &[f32],
        wv: &[f32],
        bias: &[f32],
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        f: usize,
        k: usize,
        s: usize,
        out: &mut [f32],
    ) {
        let (oh, ow) = ((h - k) / s + 1, (w - k) / s + 1);
        assert_eq!(out.len(), batch * f * oh * ow);
        for bi in 0..batch {
            let xb = &x[bi * c * h * w..(bi + 1) * c * h * w];
            let ob = &mut out[bi * f * oh * ow..(bi + 1) * f * oh * ow];
            for fi in 0..f {
                let wf = &wv[fi * c * k * k..(fi + 1) * c * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias[fi];
                        for ci in 0..c {
                            let xc = &xb[ci * h * w..(ci + 1) * h * w];
                            let wc = &wf[ci * k * k..(ci + 1) * k * k];
                            for ky in 0..k {
                                let row = (oy * s + ky) * w + ox * s;
                                let xr = &xc[row..row + k];
                                let wr = &wc[ky * k..ky * k + k];
                                for (xv, wvv) in xr.iter().zip(wr) {
                                    acc += xv * wvv;
                                }
                            }
                        }
                        ob[fi * oh * ow + oy * ow + ox] = acc;
                    }
                }
            }
        }
    }

    /// Naive direct 2-D convolution backward. Accumulates `dw`/`db` (caller
    /// zeroes or carries prior gradient state) and adds into `dx` (caller
    /// zeroes for a fresh input gradient).
    #[allow(clippy::too_many_arguments)]
    pub fn conv2d_backward(
        x: &[f32],
        wv: &[f32],
        g: &[f32],
        batch: usize,
        c: usize,
        h: usize,
        w: usize,
        f: usize,
        k: usize,
        s: usize,
        dx: &mut [f32],
        dw: &mut [f32],
        db: &mut [f32],
    ) {
        let (oh, ow) = ((h - k) / s + 1, (w - k) / s + 1);
        assert_eq!(g.len(), batch * f * oh * ow);
        assert_eq!(dx.len(), batch * c * h * w);
        for bi in 0..batch {
            let xb = &x[bi * c * h * w..(bi + 1) * c * h * w];
            let gb = &g[bi * f * oh * ow..(bi + 1) * f * oh * ow];
            let dxb = &mut dx[bi * c * h * w..(bi + 1) * c * h * w];
            for fi in 0..f {
                let gf = &gb[fi * oh * ow..(fi + 1) * oh * ow];
                let wf = &wv[fi * c * k * k..(fi + 1) * c * k * k];
                let dwf = &mut dw[fi * c * k * k..(fi + 1) * c * k * k];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let gv = gf[oy * ow + ox];
                        db[fi] += gv;
                        for ci in 0..c {
                            let xoff = ci * h * w;
                            let woff = ci * k * k;
                            for ky in 0..k {
                                let irow = (oy * s + ky) * w + ox * s;
                                for kx in 0..k {
                                    dwf[woff + ky * k + kx] += gv * xb[xoff + irow + kx];
                                    dxb[xoff + irow + kx] += gv * wf[woff + ky * k + kx];
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    /// Naive direct 3-D convolution forward: the original 8-deep loop.
    /// `x: [batch, c, t, h, w]`, `wv: [f, c, kt, k, k]`,
    /// `out: [batch, f, ot, oh, ow]`, strides `(st, s, s)`, valid padding.
    #[allow(clippy::too_many_arguments)]
    pub fn conv3d_forward(
        x: &[f32],
        wv: &[f32],
        bias: &[f32],
        batch: usize,
        c: usize,
        t: usize,
        h: usize,
        w: usize,
        f: usize,
        kt: usize,
        k: usize,
        st: usize,
        s: usize,
        out: &mut [f32],
    ) {
        let (ot, oh, ow) = ((t - kt) / st + 1, (h - k) / s + 1, (w - k) / s + 1);
        assert_eq!(out.len(), batch * f * ot * oh * ow);
        for bi in 0..batch {
            let xb = &x[bi * c * t * h * w..(bi + 1) * c * t * h * w];
            let ob = &mut out[bi * f * ot * oh * ow..(bi + 1) * f * ot * oh * ow];
            for fi in 0..f {
                let wf = &wv[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                for oz in 0..ot {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let mut acc = bias[fi];
                            for ci in 0..c {
                                for kz in 0..kt {
                                    let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                                    let woff = ci * kt * k * k + kz * k * k;
                                    for ky in 0..k {
                                        let row = zoff + (oy * s + ky) * w + ox * s;
                                        for kx in 0..k {
                                            acc += xb[row + kx] * wf[woff + ky * k + kx];
                                        }
                                    }
                                }
                            }
                            ob[fi * ot * oh * ow + oz * oh * ow + oy * ow + ox] = acc;
                        }
                    }
                }
            }
        }
    }

    /// Naive direct 3-D convolution backward; same accumulation contract
    /// as [`conv2d_backward`].
    #[allow(clippy::too_many_arguments)]
    pub fn conv3d_backward(
        x: &[f32],
        wv: &[f32],
        g: &[f32],
        batch: usize,
        c: usize,
        t: usize,
        h: usize,
        w: usize,
        f: usize,
        kt: usize,
        k: usize,
        st: usize,
        s: usize,
        dx: &mut [f32],
        dw: &mut [f32],
        db: &mut [f32],
    ) {
        let (ot, oh, ow) = ((t - kt) / st + 1, (h - k) / s + 1, (w - k) / s + 1);
        assert_eq!(g.len(), batch * f * ot * oh * ow);
        assert_eq!(dx.len(), batch * c * t * h * w);
        for bi in 0..batch {
            let xb = &x[bi * c * t * h * w..(bi + 1) * c * t * h * w];
            let gb = &g[bi * f * ot * oh * ow..(bi + 1) * f * ot * oh * ow];
            let dxb = &mut dx[bi * c * t * h * w..(bi + 1) * c * t * h * w];
            for fi in 0..f {
                let gf = &gb[fi * ot * oh * ow..(fi + 1) * ot * oh * ow];
                let wf = &wv[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                let dwf = &mut dw[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                for oz in 0..ot {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = gf[oz * oh * ow + oy * ow + ox];
                            db[fi] += gv;
                            for ci in 0..c {
                                for kz in 0..kt {
                                    let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                                    let woff = ci * kt * k * k + kz * k * k;
                                    for ky in 0..k {
                                        let row = zoff + (oy * s + ky) * w + ox * s;
                                        for kx in 0..k {
                                            dwf[woff + ky * k + kx] += gv * xb[row + kx];
                                            dxb[row + kx] += gv * wf[woff + ky * k + kx];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::rng::rng_from_seed;
    use rand::Rng;

    fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            let tol = 1e-4 * (1.0 + x.abs().max(y.abs()));
            assert!((x - y).abs() <= tol, "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn gemm_matches_reference_over_shapes() {
        let mut rng = rng_from_seed(11);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (4, 16, 16),
            (5, 17, 19),
            (64, 64, 64),
            (70, 300, 33),
            (2, 600, 40),
        ] {
            let a = rand_vec(m * k, &mut rng);
            let b = rand_vec(k * n, &mut rng);
            let mut want = vec![0.0; m * n];
            reference::matmul(&a, &b, m, k, n, &mut want);
            let mut got = vec![0.0; m * n];
            matmul_into(&mut got, &a, &b, m, k, n);
            assert_close(&got, &want, &format!("gemm {m}x{k}x{n}"));
        }
    }

    #[test]
    fn gemm_transpose_flags() {
        let mut rng = rng_from_seed(12);
        let (m, k, n) = (6, 9, 11);
        let a = rand_vec(m * k, &mut rng); // [m, k]
        let b = rand_vec(k * n, &mut rng); // [k, n]
        let mut want = vec![0.0; m * n];
        reference::matmul(&a, &b, m, k, n, &mut want);

        // a stored transposed: at[kx*m + i] = a[i*k + kx].
        let mut at = vec![0.0; m * k];
        for i in 0..m {
            for kx in 0..k {
                at[kx * m + i] = a[i * k + kx];
            }
        }
        let mut got = vec![0.0; m * n];
        gemm(&mut got, false, &at, true, &b, false, m, k, n);
        assert_close(&got, &want, "gemm ta");

        // b stored transposed: bt[j*k + kx] = b[kx*n + j].
        let mut bt = vec![0.0; k * n];
        for kx in 0..k {
            for j in 0..n {
                bt[j * k + kx] = b[kx * n + j];
            }
        }
        let mut got = vec![0.0; m * n];
        gemm(&mut got, false, &a, false, &bt, true, m, k, n);
        assert_close(&got, &want, "gemm tb");
    }

    #[test]
    fn gemm_accumulates_when_asked() {
        let mut rng = rng_from_seed(13);
        let (m, k, n) = (5, 8, 7);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let mut once = vec![0.0; m * n];
        matmul_into(&mut once, &a, &b, m, k, n);
        let mut twice = vec![0.0; m * n];
        gemm(&mut twice, true, &a, false, &b, false, m, k, n);
        gemm(&mut twice, true, &a, false, &b, false, m, k, n);
        let doubled: Vec<f32> = once.iter().map(|v| 2.0 * v).collect();
        assert_close(&twice, &doubled, "gemm acc");
    }

    #[test]
    fn im2col_col2im_2d_roundtrip_counts_overlaps() {
        // col2im(im2col(x)) multiplies each pixel by the number of windows
        // covering it; with k=1, s=1 that count is exactly 1.
        let mut rng = rng_from_seed(14);
        let (c, h, w) = (2, 5, 6);
        let x = rand_vec(c * h * w, &mut rng);
        let mut cols = vec![0.0; c * h * w];
        im2col2d(&x, c, h, w, 1, 1, h, w, &mut cols);
        let mut back = vec![0.0; c * h * w];
        col2im2d(&cols, c, h, w, 1, 1, h, w, &mut back);
        assert_close(&back, &x, "1x1 roundtrip");
    }

    #[test]
    fn im2col2d_lowered_conv_matches_direct() {
        let mut rng = rng_from_seed(15);
        let (c, h, w, f, k, s) = (3, 9, 8, 4, 3, 2);
        let (oh, ow) = ((h - k) / s + 1, (w - k) / s + 1);
        let x = rand_vec(c * h * w, &mut rng);
        let wv = rand_vec(f * c * k * k, &mut rng);
        let bias = rand_vec(f, &mut rng);

        let mut want = vec![0.0; f * oh * ow];
        reference::conv2d_forward(&x, &wv, &bias, 1, c, h, w, f, k, s, &mut want);

        let ckk = c * k * k;
        let mut cols = vec![0.0; ckk * oh * ow];
        im2col2d(&x, c, h, w, k, s, oh, ow, &mut cols);
        let mut got = vec![0.0; f * oh * ow];
        matmul_into(&mut got, &wv, &cols, f, ckk, oh * ow);
        for fi in 0..f {
            for v in &mut got[fi * oh * ow..(fi + 1) * oh * ow] {
                *v += bias[fi];
            }
        }
        assert_close(&got, &want, "lowered conv2d");
    }

    #[test]
    fn im2col3d_lowered_conv_matches_direct() {
        let mut rng = rng_from_seed(16);
        let (c, t, h, w, f, kt, k, st, s) = (2, 4, 7, 6, 3, 2, 3, 1, 2);
        let (ot, oh, ow) = ((t - kt) / st + 1, (h - k) / s + 1, (w - k) / s + 1);
        let x = rand_vec(c * t * h * w, &mut rng);
        let wv = rand_vec(f * c * kt * k * k, &mut rng);
        let bias = rand_vec(f, &mut rng);

        let mut want = vec![0.0; f * ot * oh * ow];
        reference::conv3d_forward(
            &x, &wv, &bias, 1, c, t, h, w, f, kt, k, st, s, &mut want,
        );

        let ckk = c * kt * k * k;
        let mut cols = vec![0.0; ckk * ot * oh * ow];
        im2col3d(&x, c, t, h, w, kt, k, st, s, ot, oh, ow, &mut cols);
        let mut got = vec![0.0; f * ot * oh * ow];
        matmul_into(&mut got, &wv, &cols, f, ckk, ot * oh * ow);
        for fi in 0..f {
            for v in &mut got[fi * ot * oh * ow..(fi + 1) * ot * oh * ow] {
                *v += bias[fi];
            }
        }
        assert_close(&got, &want, "lowered conv3d");
    }

    #[test]
    fn scratch_slots_are_stable_and_disjoint() {
        let mut s = Scratch::new();
        {
            let (a, b) = s.get2(8, 4);
            a.fill(1.0);
            b.fill(2.0);
            assert_eq!(a.len(), 8);
            assert_eq!(b.len(), 4);
        }
        let bytes = s.bytes();
        // Same request: same storage, no growth.
        let _ = s.get2(8, 4);
        assert_eq!(s.bytes(), bytes);
        // Smaller request hands back a prefix without shrinking.
        assert_eq!(s.get1(3).len(), 3);
        assert_eq!(s.bytes(), bytes);
        // Larger request grows.
        let _ = s.get1(100);
        assert!(s.bytes() > bytes);
        let (q, r, t, u) = s.get4(1, 2, 3, 4);
        q[0] = 1.0;
        r[0] = 2.0;
        t[0] = 3.0;
        u[0] = 4.0;
    }
}
