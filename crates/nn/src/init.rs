//! Weight initialisation schemes.

use crate::tensor::Tensor;
use rand::Rng;

/// Glorot/Xavier uniform: limit = sqrt(6 / (fan_in + fan_out)). Keras'
/// default for Dense/Conv layers, so the zoo matches DonkeyCar's defaults.
pub fn glorot_uniform(shape: &[usize], fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    // cast: fan sizes are small layer dims, exactly representable in f32.
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::uniform(shape, limit, rng)
}

/// He normal: std = sqrt(2 / fan_in); better for deep ReLU stacks.
pub fn he_normal(shape: &[usize], fan_in: usize, rng: &mut impl Rng) -> Tensor {
    // cast: fan-in is a small layer dim, exactly representable in f32.
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(shape, std, rng)
}

/// Orthogonal-ish initialisation for recurrent kernels: scaled normal run
/// through one Gram–Schmidt pass per row (adequate for small LSTMs).
pub fn recurrent_init(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    let mut t = Tensor::randn(&[rows, cols], 1.0, rng);
    // Row-wise Gram–Schmidt against previous rows (best effort when
    // rows > cols; the goal is spectral norm near 1, not exact orthogonality).
    let data = t.data_mut();
    for i in 0..rows {
        for j in 0..i.min(cols) {
            let dot: f32 = (0..cols).map(|k| data[i * cols + k] * data[j * cols + k]).sum();
            let njsq: f32 = (0..cols).map(|k| data[j * cols + k] * data[j * cols + k]).sum();
            if njsq > 1e-12 {
                for k in 0..cols {
                    data[i * cols + k] -= dot / njsq * data[j * cols + k];
                }
            }
        }
        let n: f32 = (0..cols)
            .map(|k| data[i * cols + k] * data[i * cols + k])
            .sum::<f32>()
            .sqrt();
        if n > 1e-12 {
            for k in 0..cols {
                data[i * cols + k] /= n;
            }
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn glorot_limit_respected() {
        let mut rng = rng_from_seed(1);
        let t = glorot_uniform(&[100, 100], 100, 100, &mut rng);
        let limit = (6.0f32 / 200.0).sqrt();
        assert!(t.data().iter().all(|&x| x.abs() <= limit + 1e-6));
        // Not all zero.
        assert!(t.norm() > 0.1);
    }

    #[test]
    fn he_normal_std() {
        let mut rng = rng_from_seed(2);
        let t = he_normal(&[50_000], 8, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
            / t.len() as f32;
        assert!((var - 0.25).abs() < 0.02, "var {var} expected 0.25");
    }

    #[test]
    fn recurrent_rows_are_unit_norm_and_orthogonal() {
        let mut rng = rng_from_seed(3);
        let t = recurrent_init(4, 8, &mut rng);
        let d = t.data();
        for i in 0..4 {
            let n: f32 = (0..8).map(|k| d[i * 8 + k] * d[i * 8 + k]).sum();
            assert!((n - 1.0).abs() < 1e-4, "row {i} norm^2 {n}");
        }
        for i in 0..4 {
            for j in 0..i {
                let dot: f32 = (0..8).map(|k| d[i * 8 + k] * d[j * 8 + k]).sum();
                assert!(dot.abs() < 1e-4, "rows {i},{j} dot {dot}");
            }
        }
    }
}
