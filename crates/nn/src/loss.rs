//! Loss functions.
//!
//! Each returns `(loss, grad)` where the loss is averaged over the batch and
//! `grad` is dLoss/dPrediction with the same shape as the prediction.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Loss {
    /// Mean squared error over all elements.
    Mse,
    /// Softmax + categorical cross-entropy. Predictions are raw logits
    /// `[batch, classes]`; targets are one-hot (or soft) distributions.
    SoftmaxCrossEntropy,
}

impl Loss {
    pub fn compute(self, pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
        assert_eq!(pred.shape(), target.shape(), "loss shape mismatch");
        match self {
            Loss::Mse => mse(pred, target),
            Loss::SoftmaxCrossEntropy => softmax_ce(pred, target),
        }
    }
}

fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let n = pred.len() as f32; // cast: batch length, exact in f32
    let loss: f32 = pred
        .data()
        .iter()
        .zip(target.data())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / n;
    let grad = pred.zip(target, |p, t| 2.0 * (p - t) / n);
    (loss, grad)
}

/// Numerically-stable softmax of each row.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let cols = logits.shape()[logits.rank() - 1];
    let mut out = logits.clone();
    for row in out.data_mut().chunks_mut(cols) {
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    out
}

fn softmax_ce(logits: &Tensor, target: &Tensor) -> (f32, Tensor) {
    let batch = logits.dim0() as f32; // cast: batch length, exact in f32
    let probs = softmax_rows(logits);
    let mut loss = 0.0f32;
    for (p, t) in probs.data().iter().zip(target.data()) {
        if *t > 0.0 {
            loss -= t * p.max(1e-12).ln();
        }
    }
    // d/dlogits of mean CE = (softmax - target) / batch.
    let grad = probs.zip(target, |p, t| (p - t) / batch);
    (loss / batch, grad)
}

/// One-hot encode class indices into `[batch, classes]`.
pub fn one_hot(indices: &[usize], classes: usize) -> Tensor {
    let mut t = Tensor::zeros(&[indices.len(), classes]);
    for (i, &c) in indices.iter().enumerate() {
        assert!(c < classes, "class {c} out of range {classes}");
        t.data_mut()[i * classes + c] = 1.0;
    }
    t
}

/// Linear binning of a continuous value in [lo, hi] into `bins` classes —
/// how KerasCategorical discretises steering/throttle.
pub fn bin_value(v: f32, lo: f32, hi: f32, bins: usize) -> usize {
    let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
    // cast: t in [0,1] so the product is a small non-negative index.
    ((t * bins as f32) as usize).min(bins - 1)
}

/// Midpoint of bin `i` — the inverse of [`bin_value`] used at inference.
pub fn unbin_value(i: usize, lo: f32, hi: f32, bins: usize) -> f32 {
    // cast: bin index / count are small, exact in f32.
    lo + (hi - lo) * (i as f32 + 0.5) / bins as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_at_target() {
        let p = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let (l, g) = Loss::Mse.compute(&p, &p);
        assert_eq!(l, 0.0);
        assert!(g.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_value_and_grad() {
        let p = Tensor::from_vec(&[1, 2], vec![1.0, 3.0]);
        let t = Tensor::from_vec(&[1, 2], vec![0.0, 0.0]);
        let (l, g) = Loss::Mse.compute(&p, &t);
        assert!((l - 5.0).abs() < 1e-6); // (1 + 9)/2
        assert!((g.data()[0] - 1.0).abs() < 1e-6); // 2*1/2
        assert!((g.data()[1] - 3.0).abs() < 1e-6); // 2*3/2
    }

    #[test]
    fn mse_grad_matches_finite_difference() {
        let p = Tensor::from_vec(&[2, 3], vec![0.5, -1.0, 2.0, 0.0, 1.5, -0.5]);
        let t = Tensor::from_vec(&[2, 3], vec![0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
        let (_, g) = Loss::Mse.compute(&p, &t);
        let eps = 1e-3;
        for i in 0..p.len() {
            let mut pp = p.clone();
            pp.data_mut()[i] += eps;
            let (lp, _) = Loss::Mse.compute(&pp, &t);
            let mut pm = p.clone();
            pm.data_mut()[i] -= eps;
            let (lm, _) = Loss::Mse.compute(&pm, &t);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(&[2, 3], vec![1., 2., 3., -5., 0., 5.]);
        let p = softmax_rows(&logits);
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_stable_for_large_logits() {
        let logits = Tensor::from_vec(&[1, 2], vec![1000.0, 1000.0]);
        let p = softmax_rows(&logits);
        assert!((p.data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn ce_minimised_at_correct_class() {
        let good = Tensor::from_vec(&[1, 3], vec![10.0, 0.0, 0.0]);
        let bad = Tensor::from_vec(&[1, 3], vec![0.0, 10.0, 0.0]);
        let target = one_hot(&[0], 3);
        let (lg, _) = Loss::SoftmaxCrossEntropy.compute(&good, &target);
        let (lb, _) = Loss::SoftmaxCrossEntropy.compute(&bad, &target);
        assert!(lg < 0.01);
        assert!(lb > 5.0);
    }

    #[test]
    fn ce_grad_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.5, -0.2, 0.1, 1.0, 0.0, -1.0]);
        let target = one_hot(&[2, 0], 3);
        let (_, g) = Loss::SoftmaxCrossEntropy.compute(&logits, &target);
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let (vp, _) = Loss::SoftmaxCrossEntropy.compute(&lp, &target);
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (vm, _) = Loss::SoftmaxCrossEntropy.compute(&lm, &target);
            let num = (vp - vm) / (2.0 * eps);
            assert!(
                (num - g.data()[i]).abs() < 1e-3,
                "grad[{i}] {} vs {num}",
                g.data()[i]
            );
        }
    }

    #[test]
    fn binning_roundtrip() {
        // DonkeyCar steering: 15 bins over [-1, 1].
        for &v in &[-1.0f32, -0.51, 0.0, 0.49, 1.0] {
            let b = bin_value(v, -1.0, 1.0, 15);
            let back = unbin_value(b, -1.0, 1.0, 15);
            assert!((back - v).abs() <= 2.0 / 15.0, "{v} -> bin {b} -> {back}");
        }
        assert_eq!(bin_value(-1.0, -1.0, 1.0, 15), 0);
        assert_eq!(bin_value(1.0, -1.0, 1.0, 15), 14);
        assert_eq!(bin_value(5.0, -1.0, 1.0, 15), 14); // clamps
    }

    #[test]
    fn one_hot_shape() {
        let t = one_hot(&[1, 0], 3);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.data(), &[0., 1., 0., 1., 0., 0.]);
    }
}
