//! `CarModel`: one implementation covering all six DonkeyCar architectures.

use super::{DonkeyModel, InferredThrottle, InputSpec, ModelConfig, ModelKind};
use crate::data::Batch;
use crate::layers::{
    Activation, ActivationLayer, Conv2D, Conv3D, Dense, Dropout, Flatten, Layer, Lstm,
    TimeDistributed,
};
use crate::loss::{bin_value, one_hot, softmax_rows, unbin_value, Loss};
use crate::optim::Optimizer;
use crate::sequential::Sequential;
use crate::tensor::Tensor;
use autolearn_analyze::contract::FrameLayout;
use autolearn_analyze::graph::{LayerSpec, ModelSpec};
use autolearn_util::rng::derive_rng;
use serde::{Deserialize, Serialize};

/// Concatenate two `[B, a]` / `[B, b]` tensors into `[B, a+b]`.
fn concat_cols(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.dim0(), b.dim0());
    let (batch, wa, wb) = (a.dim0(), a.example_len(), b.example_len());
    let mut out = Vec::with_capacity(batch * (wa + wb));
    for i in 0..batch {
        out.extend_from_slice(a.example(i));
        out.extend_from_slice(b.example(i));
    }
    Tensor::from_vec(&[batch, wa + wb], out)
}

/// Split the gradient of a column-concat back into the two halves.
fn split_cols(g: &Tensor, wa: usize) -> (Tensor, Tensor) {
    let batch = g.dim0();
    let w = g.example_len();
    let wb = w - wa;
    let mut ga = Vec::with_capacity(batch * wa);
    let mut gb = Vec::with_capacity(batch * wb);
    for i in 0..batch {
        let row = g.example(i);
        ga.extend_from_slice(&row[..wa]);
        gb.extend_from_slice(&row[wa..]);
    }
    (
        Tensor::from_vec(&[batch, wa], ga),
        Tensor::from_vec(&[batch, wb], gb),
    )
}

/// One of the six DonkeyCar models. Construct with [`CarModel::build`].
pub struct CarModel {
    kind: ModelKind,
    cfg: ModelConfig,
    /// Image (or image-sequence) feature extractor → `[B, feat_dim]`.
    trunk: Sequential,
    /// Memory model only: dense stack applied after concatenating the
    /// control history onto the trunk features.
    merge: Option<Sequential>,
    head_s: Sequential,
    head_t: Option<Sequential>,
    feat_dim: usize,
    pub inferred_throttle: InferredThrottle,
}

impl CarModel {
    /// Build a model of `kind` with the given config.
    pub fn build(kind: ModelKind, cfg: &ModelConfig) -> CarModel {
        let mut rng = derive_rng(cfg.seed, kind.name());
        let (c, h, w) = (cfg.channels, cfg.height, cfg.width);

        // Shared 2-D conv feature stack (scaled-down DonkeyCar default).
        let conv_stack = |rng: &mut rand::rngs::StdRng| -> (Sequential, usize) {
            let mut s = Sequential::new();
            s.add(Conv2D::new(c, 8, 5, 2, rng));
            s.add(ActivationLayer::new(Activation::Relu));
            s.add(Conv2D::new(8, 16, 3, 2, rng));
            s.add(ActivationLayer::new(Activation::Relu));
            s.add(Conv2D::new(16, 32, 3, 2, rng));
            s.add(ActivationLayer::new(Activation::Relu));
            s.add(Flatten::new());
            let flat = s.output_shape(&[1, c, h, w])[1];
            (s, flat)
        };

        let mut merge = None;
        let (trunk, feat_dim) = match kind {
            ModelKind::Linear | ModelKind::Categorical | ModelKind::Inferred => {
                let (mut s, flat) = conv_stack(&mut rng);
                s.add(Dense::new(flat, 64, &mut rng));
                s.add(ActivationLayer::new(Activation::Relu));
                s.add(Dropout::new(cfg.dropout, cfg.seed ^ 0xd0));
                (s, 64)
            }
            ModelKind::Memory => {
                let (mut s, flat) = conv_stack(&mut rng);
                s.add(Dense::new(flat, 64, &mut rng));
                s.add(ActivationLayer::new(Activation::Relu));
                let mut m = Sequential::new();
                m.add(Dense::new(64 + 2 * cfg.history, 64, &mut rng));
                m.add(ActivationLayer::new(Activation::Relu));
                m.add(Dropout::new(cfg.dropout, cfg.seed ^ 0xd1));
                merge = Some(m);
                (s, 64)
            }
            ModelKind::Rnn => {
                let (mut inner, flat) = conv_stack(&mut rng);
                inner.add(Dense::new(flat, 64, &mut rng));
                inner.add(ActivationLayer::new(Activation::Relu));
                let mut s = Sequential::new();
                s.add(TimeDistributed::new(Box::new(inner)));
                s.add(Lstm::new(64, 32, &mut rng));
                (s, 32)
            }
            ModelKind::ThreeD => {
                assert!(cfg.seq_len >= 3, "3D model needs seq_len >= 3");
                let mut s = Sequential::new();
                s.add(Conv3D::new(c, 8, 2, 5, 1, 2, &mut rng));
                s.add(ActivationLayer::new(Activation::Relu));
                s.add(Conv3D::new(8, 16, 2, 3, 1, 2, &mut rng));
                s.add(ActivationLayer::new(Activation::Relu));
                s.add(Flatten::new());
                let flat = s.output_shape(&[1, c, cfg.seq_len, h, w])[1];
                s.add(Dense::new(flat, 64, &mut rng));
                s.add(ActivationLayer::new(Activation::Relu));
                (s, 64)
            }
        };

        let (head_s, head_t) = match kind {
            ModelKind::Categorical => {
                let mut hs = Sequential::new();
                hs.add(Dense::new(feat_dim, cfg.steering_bins, &mut rng));
                let mut ht = Sequential::new();
                ht.add(Dense::new(feat_dim, cfg.throttle_bins, &mut rng));
                (hs, Some(ht))
            }
            ModelKind::Inferred => {
                let mut hs = Sequential::new();
                hs.add(Dense::new(feat_dim, 1, &mut rng));
                hs.add(ActivationLayer::new(Activation::Tanh));
                (hs, None)
            }
            _ => {
                let mut hs = Sequential::new();
                hs.add(Dense::new(feat_dim, 1, &mut rng));
                hs.add(ActivationLayer::new(Activation::Tanh));
                let mut ht = Sequential::new();
                ht.add(Dense::new(feat_dim, 1, &mut rng));
                ht.add(ActivationLayer::new(Activation::Sigmoid));
                (hs, Some(ht))
            }
        };

        CarModel {
            kind,
            cfg: cfg.clone(),
            trunk,
            merge,
            head_s,
            head_t,
            feat_dim,
            inferred_throttle: InferredThrottle::default(),
        }
    }

    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Shape of the primary (image) input for a single example.
    fn image_input_shape(&self, batch: usize) -> Vec<usize> {
        let ModelConfig {
            height,
            width,
            channels,
            seq_len,
            ..
        } = self.cfg;
        match self.kind {
            ModelKind::Rnn => vec![batch, seq_len, channels, height, width],
            ModelKind::ThreeD => vec![batch, channels, seq_len, height, width],
            _ => vec![batch, channels, height, width],
        }
    }

    /// Total bytes of reusable kernel scratch (im2col buffers, activation
    /// caches, LSTM step state) currently held across trunk, merge and
    /// heads. Constant across steady-state training steps — the trainer
    /// test pins that no per-step reallocation happens.
    pub fn scratch_bytes(&self) -> usize {
        self.trunk.scratch_bytes()
            + self.merge.as_ref().map_or(0, |m| m.scratch_bytes())
            + self.head_s.scratch_bytes()
            + self.head_t.as_ref().map_or(0, |t| t.scratch_bytes())
    }

    /// Forward pass to the shared feature vector, handling the Memory
    /// concat. Returns features `[B, feat]`.
    fn features(&mut self, inputs: &[Tensor], train: bool) -> Tensor {
        let img = &inputs[0];
        // The RNN wants [B, T, C, H, W]; ThreeD wants [B, C, T, H, W].
        // Sequence datasets provide [B, T, C, H, W]; transpose for ThreeD.
        // Other kinds feed the input straight through — no copy.
        let feat = if self.kind == ModelKind::ThreeD {
            let img = transpose_time_channel(img);
            self.trunk.forward(&img, train)
        } else {
            self.trunk.forward(img, train)
        };
        match (&mut self.merge, inputs.get(1)) {
            (Some(merge), Some(hist)) => {
                let joined = concat_cols(&feat, hist);
                merge.forward(&joined, train)
            }
            // INVARIANT: prepare_dataset adds the history input for
            // InputSpec::FramesWithHistory; only a caller bypassing it hits this.
            (Some(_), None) => panic!("Memory model requires a history input"),
            _ => feat,
        }
    }

    /// Backward from a feature-gradient through merge + trunk.
    fn backward_features(&mut self, d_feat: &Tensor) {
        let d_trunk_out = match &mut self.merge {
            Some(merge) => {
                let d_joined = merge.backward(d_feat);
                let (d_img_feat, _d_hist) = split_cols(&d_joined, self.feat_dim);
                d_img_feat
            }
            None => d_feat.clone(),
        };
        let _ = self.trunk.backward(&d_trunk_out);
    }

    fn all_params(&mut self) -> Vec<&mut crate::layers::Param> {
        let mut ps = self.trunk.params_mut();
        if let Some(m) = &mut self.merge {
            ps.extend(m.params_mut());
        }
        ps.extend(self.head_s.params_mut());
        if let Some(t) = &mut self.head_t {
            ps.extend(t.params_mut());
        }
        ps
    }

    /// Encode regression targets `[B, 1]`.
    fn regression_targets(values: &[f32]) -> Tensor {
        Tensor::from_vec(&[values.len(), 1], values.to_vec())
    }

    fn forward_loss(&mut self, batch: &Batch, train: bool) -> (f32, Option<(Tensor, Tensor)>) {
        let feat = self.features(&batch.inputs, train);
        let s_out = self.head_s.forward(&feat, train);
        let t_out = self.head_t.as_mut().map(|h| h.forward(&feat, train));

        match self.kind {
            ModelKind::Categorical => {
                let s_target = one_hot(
                    &batch
                        .steering
                        .iter()
                        .map(|&v| bin_value(v, -1.0, 1.0, self.cfg.steering_bins))
                        .collect::<Vec<_>>(),
                    self.cfg.steering_bins,
                );
                let t_target = one_hot(
                    &batch
                        .throttle
                        .iter()
                        .map(|&v| bin_value(v, 0.0, 1.0, self.cfg.throttle_bins))
                        .collect::<Vec<_>>(),
                    self.cfg.throttle_bins,
                );
                let (ls, gs) = Loss::SoftmaxCrossEntropy.compute(&s_out, &s_target);
                let (lt, gt) =
                    Loss::SoftmaxCrossEntropy.compute(t_out.as_ref().unwrap(), &t_target);
                (ls + lt, Some((gs, gt)))
            }
            ModelKind::Inferred => {
                let s_target = Self::regression_targets(&batch.steering);
                let (ls, gs) = Loss::Mse.compute(&s_out, &s_target);
                (ls, Some((gs, Tensor::zeros(&[batch.len(), 1]))))
            }
            _ => {
                let s_target = Self::regression_targets(&batch.steering);
                let t_target = Self::regression_targets(&batch.throttle);
                let (ls, gs) = Loss::Mse.compute(&s_out, &s_target);
                let (lt, gt) = Loss::Mse.compute(t_out.as_ref().unwrap(), &t_target);
                (ls + lt, Some((gs, gt)))
            }
        }
    }

    /// Symbolic architecture plan for `kind`/`cfg`, built without
    /// allocating a single tensor. This is the zoo's declared expectation:
    /// [`CarModel::graph_spec`] validates the *live* layers against the
    /// plan's parameter totals, so an edit to [`CarModel::build`] that is
    /// not mirrored here fails validation before training starts. Feed it
    /// to [`autolearn_analyze::validate_model`] to vet a config (e.g. a
    /// degenerate camera geometry) before paying for `build`.
    /// Where the camera frame lives in this kind's input tensor — the
    /// static-contract counterpart of the input shape [`CarModel::plan`]
    /// declares.
    pub fn frame_layout(kind: ModelKind) -> FrameLayout {
        match kind {
            ModelKind::Rnn => FrameLayout::Btchw,
            ModelKind::ThreeD => FrameLayout::Bcthw,
            _ => FrameLayout::Bchw,
        }
    }

    pub fn plan(kind: ModelKind, cfg: &ModelConfig) -> ModelSpec {
        let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
        let relu = || LayerSpec::Activation {
            kind: "relu".to_string(),
        };
        let conv_stack = || {
            vec![
                LayerSpec::Conv2D {
                    in_channels: c,
                    filters: 8,
                    kernel: 5,
                    stride: 2,
                },
                relu(),
                LayerSpec::Conv2D {
                    in_channels: 8,
                    filters: 16,
                    kernel: 3,
                    stride: 2,
                },
                relu(),
                LayerSpec::Conv2D {
                    in_channels: 16,
                    filters: 32,
                    kernel: 3,
                    stride: 2,
                },
                relu(),
                LayerSpec::Flatten,
            ]
        };
        // Symbolic flat-dim: 0 when the geometry is degenerate, so the
        // validator reports the conv error instead of this panicking.
        let flat_after = |layers: &[LayerSpec], input: &[usize]| -> usize {
            LayerSpec::Chain(layers.to_vec())
                .output_shape(input)
                .map(|s| s[1])
                .unwrap_or(0)
        };

        let mut aux_width = None;
        let mut merge = Vec::new();
        let (input, layers, feat) = match kind {
            ModelKind::Linear | ModelKind::Categorical | ModelKind::Inferred => {
                let input = vec![1, c, h, w];
                let mut layers = conv_stack();
                let flat = flat_after(&layers, &input);
                layers.push(LayerSpec::Dense {
                    input: flat,
                    output: 64,
                });
                layers.push(relu());
                layers.push(LayerSpec::Dropout {
                    rate: cfg.dropout as f64,
                });
                (input, layers, 64)
            }
            ModelKind::Memory => {
                let input = vec![1, c, h, w];
                let mut layers = conv_stack();
                let flat = flat_after(&layers, &input);
                layers.push(LayerSpec::Dense {
                    input: flat,
                    output: 64,
                });
                layers.push(relu());
                aux_width = Some(2 * cfg.history);
                merge = vec![
                    LayerSpec::Dense {
                        input: 64 + 2 * cfg.history,
                        output: 64,
                    },
                    relu(),
                    LayerSpec::Dropout {
                        rate: cfg.dropout as f64,
                    },
                ];
                (input, layers, 64)
            }
            ModelKind::Rnn => {
                let input = vec![1, cfg.seq_len, c, h, w];
                let mut inner = conv_stack();
                let flat = flat_after(&inner, &[1, c, h, w]);
                inner.push(LayerSpec::Dense {
                    input: flat,
                    output: 64,
                });
                inner.push(relu());
                let layers = vec![
                    LayerSpec::TimeDistributed {
                        inner: Box::new(LayerSpec::Chain(inner)),
                    },
                    LayerSpec::Lstm {
                        input: 64,
                        hidden: 32,
                    },
                ];
                (input, layers, 32)
            }
            ModelKind::ThreeD => {
                let input = vec![1, c, cfg.seq_len, h, w];
                let mut layers = vec![
                    LayerSpec::Conv3D {
                        in_channels: c,
                        filters: 8,
                        kernel_t: 2,
                        kernel: 5,
                        stride_t: 1,
                        stride: 2,
                    },
                    relu(),
                    LayerSpec::Conv3D {
                        in_channels: 8,
                        filters: 16,
                        kernel_t: 2,
                        kernel: 3,
                        stride_t: 1,
                        stride: 2,
                    },
                    relu(),
                    LayerSpec::Flatten,
                ];
                let flat = flat_after(&layers, &input);
                layers.push(LayerSpec::Dense {
                    input: flat,
                    output: 64,
                });
                layers.push(relu());
                (input, layers, 64)
            }
        };

        let tanh = || LayerSpec::Activation {
            kind: "tanh".to_string(),
        };
        let heads = match kind {
            ModelKind::Categorical => vec![
                (
                    "steering".to_string(),
                    vec![LayerSpec::Dense {
                        input: feat,
                        output: cfg.steering_bins,
                    }],
                ),
                (
                    "throttle".to_string(),
                    vec![LayerSpec::Dense {
                        input: feat,
                        output: cfg.throttle_bins,
                    }],
                ),
            ],
            ModelKind::Inferred => vec![(
                "steering".to_string(),
                vec![
                    LayerSpec::Dense {
                        input: feat,
                        output: 1,
                    },
                    tanh(),
                ],
            )],
            _ => vec![
                (
                    "steering".to_string(),
                    vec![
                        LayerSpec::Dense {
                            input: feat,
                            output: 1,
                        },
                        tanh(),
                    ],
                ),
                (
                    "throttle".to_string(),
                    vec![
                        LayerSpec::Dense {
                            input: feat,
                            output: 1,
                        },
                        LayerSpec::Activation {
                            kind: "sigmoid".to_string(),
                        },
                    ],
                ),
            ],
        };

        ModelSpec {
            name: kind.name().to_string(),
            input,
            layers,
            aux_width,
            merge,
            heads,
            declared_params: None,
            declared_feature_dim: Some(feat),
        }
    }
}

/// Unwrap a `Sequential`'s spec into its layer list.
fn chain_layers(s: &Sequential) -> Vec<LayerSpec> {
    match s.spec() {
        LayerSpec::Chain(layers) => layers,
        other => vec![other],
    }
}

/// `[B, T, C, H, W] -> [B, C, T, H, W]` for the Conv3D stack.
fn transpose_time_channel(x: &Tensor) -> Tensor {
    assert_eq!(x.rank(), 5);
    let (b, t, c, h, w) = (
        x.shape()[0],
        x.shape()[1],
        x.shape()[2],
        x.shape()[3],
        x.shape()[4],
    );
    let hw = h * w;
    let mut out = vec![0.0f32; x.len()];
    let xd = x.data();
    for bi in 0..b {
        for ti in 0..t {
            for ci in 0..c {
                let src = ((bi * t + ti) * c + ci) * hw;
                let dst = ((bi * c + ci) * t + ti) * hw;
                out[dst..dst + hw].copy_from_slice(&xd[src..src + hw]);
            }
        }
    }
    Tensor::from_vec(&[b, c, t, h, w], out)
}

impl DonkeyModel for CarModel {
    fn kind(&self) -> ModelKind {
        self.kind
    }

    fn scratch_bytes(&self) -> usize {
        CarModel::scratch_bytes(self)
    }

    fn input_spec(&self) -> InputSpec {
        match self.kind {
            ModelKind::Rnn | ModelKind::ThreeD => InputSpec::Sequence(self.cfg.seq_len),
            ModelKind::Memory => InputSpec::FramesWithHistory(self.cfg.history),
            _ => InputSpec::Frames,
        }
    }

    fn train_batch(&mut self, batch: &Batch, opt: &mut dyn Optimizer) -> f32 {
        let (loss, grads) = self.forward_loss(batch, true);
        let (gs, gt) = grads.expect("training grads");
        let mut d_feat = self.head_s.backward(&gs);
        if let Some(head_t) = &mut self.head_t {
            let d2 = head_t.backward(&gt);
            d_feat.add_scaled(&d2, 1.0);
        }
        self.backward_features(&d_feat);
        let mut params = self.all_params();
        opt.step(&mut params);
        loss
    }

    fn eval_batch(&mut self, batch: &Batch) -> f32 {
        self.forward_loss(batch, false).0
    }

    fn predict(&mut self, inputs: &[Tensor]) -> Vec<(f32, f32)> {
        let feat = self.features(inputs, false);
        let s_out = self.head_s.forward(&feat, false);
        let t_out = self.head_t.as_mut().map(|h| h.forward(&feat, false));
        let n = feat.dim0();

        match self.kind {
            ModelKind::Categorical => {
                let sp = softmax_rows(&s_out);
                let tp = softmax_rows(t_out.as_ref().unwrap());
                let si = sp.argmax_per_example();
                let ti = tp.argmax_per_example();
                (0..n)
                    .map(|i| {
                        (
                            unbin_value(si[i], -1.0, 1.0, self.cfg.steering_bins),
                            unbin_value(ti[i], 0.0, 1.0, self.cfg.throttle_bins),
                        )
                    })
                    .collect()
            }
            ModelKind::Inferred => (0..n)
                .map(|i| {
                    let s = s_out.data()[i].clamp(-1.0, 1.0);
                    (s, self.inferred_throttle.throttle_for(s))
                })
                .collect(),
            _ => {
                let t_out = t_out.unwrap();
                (0..n)
                    .map(|i| {
                        (
                            s_out.data()[i].clamp(-1.0, 1.0),
                            t_out.data()[i].clamp(0.0, 1.0),
                        )
                    })
                    .collect()
            }
        }
    }

    fn flops_per_inference(&self) -> u64 {
        let img_shape = self.image_input_shape(1);
        let mut total = self.trunk.flops_per_example(&img_shape);
        let feat_shape = vec![1usize, self.feat_dim];
        if let Some(m) = &self.merge {
            total += m.flops_per_example(&[1, self.feat_dim + 2 * self.cfg.history]);
        }
        total += self.head_s.flops_per_example(&feat_shape);
        if let Some(t) = &self.head_t {
            total += t.flops_per_example(&feat_shape);
        }
        total
    }

    fn param_count(&mut self) -> usize {
        self.all_params().iter().map(|p| p.value.len()).sum()
    }

    fn state_dict(&mut self) -> Vec<Vec<f32>> {
        self.all_params()
            .iter()
            .map(|p| p.value.data().to_vec())
            .collect()
    }

    fn load_state(&mut self, state: &[Vec<f32>]) {
        let mut params = self.all_params();
        assert_eq!(params.len(), state.len(), "state dict arity mismatch");
        for (p, s) in params.iter_mut().zip(state) {
            assert_eq!(p.value.len(), s.len(), "state dict shape mismatch");
            p.value.data_mut().copy_from_slice(s);
        }
    }

    fn graph_spec(&self) -> Option<ModelSpec> {
        // The live layers are the spec under test; the static plan is the
        // declared expectation. Parameter drift between them means build()
        // and plan() have diverged.
        let declared = CarModel::plan(self.kind, &self.cfg).total_params();
        let mut heads = vec![("steering".to_string(), chain_layers(&self.head_s))];
        if let Some(t) = &self.head_t {
            heads.push(("throttle".to_string(), chain_layers(t)));
        }
        Some(ModelSpec {
            name: self.kind.name().to_string(),
            input: self.image_input_shape(1),
            layers: chain_layers(&self.trunk),
            aux_width: self.merge.as_ref().map(|_| 2 * self.cfg.history),
            merge: self.merge.as_ref().map(chain_layers).unwrap_or_default(),
            heads,
            declared_params: Some(declared),
            declared_feature_dim: Some(self.feat_dim),
        })
    }
}

/// Serialisable snapshot of a trained model (what AutoLearn stores in the
/// object store as a "pre-trained model" artifact).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SavedModel {
    pub kind: ModelKind,
    pub config: ModelConfig,
    pub weights: Vec<Vec<f32>>,
}

impl SavedModel {
    pub fn capture(model: &mut CarModel) -> SavedModel {
        SavedModel {
            kind: model.kind(),
            config: model.config().clone(),
            weights: model.state_dict(),
        }
    }

    pub fn restore(&self) -> CarModel {
        let mut model = CarModel::build(self.kind, &self.config);
        model.load_state(&self.weights);
        model
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("model serialises")
    }

    pub fn from_json(s: &str) -> Result<SavedModel, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::models::prepare_dataset;
    use crate::optim::Adam;
    use autolearn_util::rng::rng_from_seed;
    use rand::Rng;

    fn small_cfg() -> ModelConfig {
        ModelConfig {
            height: 24,
            width: 32,
            channels: 1,
            seq_len: 3,
            history: 2,
            dropout: 0.0,
            ..Default::default()
        }
    }

    /// A synthetic "track" dataset: images whose mean column brightness
    /// encodes the steering target, so any competent model can fit it.
    fn synthetic_dataset(n: usize, cfg: &ModelConfig) -> Dataset {
        let mut rng = rng_from_seed(99);
        let (c, h, w) = (cfg.channels, cfg.height, cfg.width);
        let mut frames = Vec::with_capacity(n);
        let mut steering = Vec::with_capacity(n);
        let mut throttle = Vec::with_capacity(n);
        for _ in 0..n {
            let s: f32 = rng.gen_range(-1.0..1.0);
            let t: f32 = rng.gen_range(0.2..0.9);
            // Bright vertical band whose position tracks steering.
            let band = (((s + 1.0) / 2.0) * (w as f32 - 1.0)) as usize;
            let mut img = vec![0.1f32; c * h * w];
            for y in 0..h {
                for x in band.saturating_sub(2)..(band + 3).min(w) {
                    img[y * w + x] = 0.9;
                }
            }
            frames.push(Tensor::from_vec(&[c, h, w], img));
            steering.push(s);
            throttle.push(t);
        }
        Dataset::new(Tensor::stack(&frames), steering, throttle)
    }

    fn train_and_eval(kind: ModelKind, epochs: usize) -> (f32, f32) {
        let cfg = small_cfg();
        let mut model = CarModel::build(kind, &cfg);
        let raw = synthetic_dataset(120, &cfg);
        let data = prepare_dataset(&raw, model.input_spec());
        let (train, val) = data.split(0.8, 7);
        let mut opt = Adam::new(1e-3);

        let first: f32 = val
            .batches(16, false, 0)
            .iter()
            .map(|b| model.eval_batch(b))
            .sum::<f32>();
        for e in 0..epochs {
            for b in train.batches(16, true, e as u64) {
                model.train_batch(&b, &mut opt);
            }
        }
        let last: f32 = val
            .batches(16, false, 0)
            .iter()
            .map(|b| model.eval_batch(b))
            .sum::<f32>();
        (first, last)
    }

    #[test]
    fn linear_model_learns() {
        let (first, last) = train_and_eval(ModelKind::Linear, 8);
        assert!(last < first * 0.7, "val loss {first} -> {last}");
    }

    #[test]
    fn categorical_model_learns() {
        // CE over 15+20 bins starts near ln(15)+ln(20); the steering head is
        // learnable while throttle targets are random, so expect a solid but
        // partial drop.
        let (first, last) = train_and_eval(ModelKind::Categorical, 15);
        assert!(last < first * 0.9, "val loss {first} -> {last}");
    }

    #[test]
    fn inferred_model_learns() {
        let (first, last) = train_and_eval(ModelKind::Inferred, 8);
        assert!(last < first * 0.7, "val loss {first} -> {last}");
    }

    #[test]
    fn memory_model_learns() {
        let (first, last) = train_and_eval(ModelKind::Memory, 8);
        assert!(last < first * 0.7, "val loss {first} -> {last}");
    }

    #[test]
    fn rnn_model_learns() {
        let (first, last) = train_and_eval(ModelKind::Rnn, 6);
        assert!(last < first, "val loss {first} -> {last}");
    }

    #[test]
    fn threed_model_learns() {
        let (first, last) = train_and_eval(ModelKind::ThreeD, 6);
        assert!(last < first, "val loss {first} -> {last}");
    }

    #[test]
    fn predictions_in_range_for_all_kinds() {
        let cfg = small_cfg();
        for kind in ModelKind::all() {
            let mut model = CarModel::build(kind, &cfg);
            let raw = synthetic_dataset(10, &cfg);
            let data = prepare_dataset(&raw, model.input_spec());
            let batch = &data.batches(4, false, 0)[0];
            let preds = model.predict(&batch.inputs);
            assert_eq!(preds.len(), 4);
            for (s, t) in preds {
                assert!((-1.0..=1.0).contains(&s), "{kind}: steering {s}");
                assert!((0.0..=1.0).contains(&t), "{kind}: throttle {t}");
            }
        }
    }

    #[test]
    fn inferred_derives_throttle_from_steering() {
        let cfg = small_cfg();
        let mut model = CarModel::build(ModelKind::Inferred, &cfg);
        let raw = synthetic_dataset(4, &cfg);
        let batch = &raw.batches(4, false, 0)[0];
        let preds = model.predict(&batch.inputs);
        for (s, t) in preds {
            assert!((t - model.inferred_throttle.throttle_for(s)).abs() < 1e-6);
        }
    }

    #[test]
    fn save_restore_preserves_predictions() {
        let cfg = small_cfg();
        let mut model = CarModel::build(ModelKind::Linear, &cfg);
        let raw = synthetic_dataset(4, &cfg);
        let batch = &raw.batches(4, false, 0)[0];
        let before = model.predict(&batch.inputs);

        let saved = SavedModel::capture(&mut model);
        let json = saved.to_json();
        let mut restored = SavedModel::from_json(&json).unwrap().restore();
        let after = restored.predict(&batch.inputs);
        for ((s1, t1), (s2, t2)) in before.iter().zip(&after) {
            assert!((s1 - s2).abs() < 1e-6);
            assert!((t1 - t2).abs() < 1e-6);
        }
    }

    #[test]
    fn save_restore_all_six_kinds() {
        let cfg = small_cfg();
        let raw = synthetic_dataset(8, &cfg);
        for kind in ModelKind::all() {
            let mut model = CarModel::build(kind, &cfg);
            let data = prepare_dataset(&raw, model.input_spec());
            let batch = &data.batches(4, false, 0)[0];
            let before = model.predict(&batch.inputs);
            let mut restored = SavedModel::capture(&mut model).restore();
            let after = restored.predict(&batch.inputs);
            for ((s1, t1), (s2, t2)) in before.iter().zip(&after) {
                assert!((s1 - s2).abs() < 1e-6, "{kind}: steering drifted");
                assert!((t1 - t2).abs() < 1e-6, "{kind}: throttle drifted");
            }
        }
    }

    #[test]
    fn load_state_rejects_wrong_shape() {
        let cfg = small_cfg();
        let mut a = CarModel::build(ModelKind::Linear, &cfg);
        let mut b = CarModel::build(ModelKind::Categorical, &cfg);
        let state = a.state_dict();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            b.load_state(&state);
        }));
        assert!(result.is_err(), "mismatched state dict must be rejected");
    }

    #[test]
    fn flops_ordering_is_sane() {
        // Sequence models cost more than single-frame models.
        let cfg = small_cfg();
        let linear = CarModel::build(ModelKind::Linear, &cfg).flops_per_inference();
        let rnn = CarModel::build(ModelKind::Rnn, &cfg).flops_per_inference();
        let threed = CarModel::build(ModelKind::ThreeD, &cfg).flops_per_inference();
        assert!(rnn > linear, "rnn {rnn} vs linear {linear}");
        assert!(threed > linear, "3d {threed} vs linear {linear}");
        assert!(linear > 10_000, "linear {linear} suspiciously small");
    }

    #[test]
    fn param_counts_positive_and_distinct_heads() {
        let cfg = small_cfg();
        let mut linear = CarModel::build(ModelKind::Linear, &cfg);
        let mut categorical = CarModel::build(ModelKind::Categorical, &cfg);
        // Categorical heads are wider (15+20 outputs vs 1+1).
        assert!(categorical.param_count() > linear.param_count());
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let b = Tensor::from_vec(&[2, 1], vec![9., 8.]);
        let j = concat_cols(&a, &b);
        assert_eq!(j.shape(), &[2, 3]);
        assert_eq!(j.data(), &[1., 2., 9., 3., 4., 8.]);
        let (ga, gb) = split_cols(&j, 2);
        assert_eq!(ga.data(), a.data());
        assert_eq!(gb.data(), b.data());
    }

    #[test]
    fn every_kind_plans_a_valid_graph() {
        // The static plan for each zoo kind must survive symbolic shape
        // propagation, and its parameter arithmetic must agree with the
        // live model built from the same config — so any drift between
        // `plan` and `build` is caught here, not at a student's train step.
        let cfg = small_cfg();
        for kind in ModelKind::all() {
            let spec = CarModel::plan(kind, &cfg);
            let report = autolearn_analyze::validate_model(&spec)
                .unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
            let mut live = CarModel::build(kind, &cfg);
            assert_eq!(
                report.total_params,
                live.param_count() as u64,
                "{kind:?}: plan params != live params"
            );
        }
    }

    #[test]
    fn live_graph_spec_matches_plan() {
        // graph_spec() describes the *built* layers; validating it must
        // succeed and agree with the plan's feature dim for each kind.
        let cfg = small_cfg();
        for kind in ModelKind::all() {
            let model = CarModel::build(kind, &cfg);
            let spec = model.graph_spec().expect("zoo models publish a spec");
            let report = autolearn_analyze::validate_model(&spec)
                .unwrap_or_else(|e| panic!("{kind:?}: {e:?}"));
            let planned = CarModel::plan(kind, &cfg);
            assert_eq!(
                Some(report.feature_dim),
                planned.declared_feature_dim,
                "{kind:?}: live feature dim != planned"
            );
        }
    }

    #[test]
    fn degenerate_geometry_is_rejected_before_training() {
        // A 4x4 camera cannot survive three 5x5/3x3 convolutions: the plan
        // must be rejected statically, with no tensor ever allocated.
        let cfg = ModelConfig {
            height: 4,
            width: 4,
            ..small_cfg()
        };
        let errs = autolearn_analyze::validate_model(&CarModel::plan(ModelKind::Linear, &cfg))
            .expect_err("degenerate geometry must not validate");
        assert!(!errs.is_empty());
    }

    #[test]
    fn trainer_rejects_shape_broken_model_before_any_step() {
        use crate::train::{TrainConfig, Trainer};

        // Build a live model, then sabotage its config so graph_spec()
        // reports an input the trunk cannot process. fit() must refuse
        // before running a single weight update.
        let cfg = small_cfg();
        let mut model = CarModel::build(ModelKind::Linear, &cfg);
        model.cfg.height = 4;
        model.cfg.width = 4;
        let raw = synthetic_dataset(8, &cfg);
        let data = prepare_dataset(&raw, crate::models::InputSpec::Frames);
        let before = model.param_count();
        let errs = Trainer::new(TrainConfig {
            epochs: 1,
            batch_size: 4,
            ..Default::default()
        })
        .fit(&mut model, &data)
        .expect_err("shape-broken model must be rejected");
        assert!(!errs.is_empty());
        assert_eq!(model.param_count(), before, "no weights touched");
    }

    #[test]
    fn transpose_time_channel_roundtrip() {
        let x = Tensor::from_vec(&[1, 2, 3, 1, 2], (0..12).map(|i| i as f32).collect());
        let y = transpose_time_channel(&x);
        assert_eq!(y.shape(), &[1, 3, 2, 1, 2]);
        // Element (t=0, c=1) of x is at (c=1, t=0) of y.
        // x index ((0*2+0)*3+1)*2 = 2 -> y index ((0*3+1)*2+0)*2 = 4
        assert_eq!(y.data()[4], x.data()[2]);
        // And the full tensor is a permutation: same multiset of values.
        let mut xs: Vec<f32> = x.data().to_vec();
        let mut ys: Vec<f32> = y.data().to_vec();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ys.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(xs, ys);
    }
}
