//! The DonkeyCar model zoo.
//!
//! §3.3 of the paper: *"AutoLearn comes with six tested models, including
//! linear, memory, 3D, categorical, inferred, and RNN"*. All six are
//! reproduced here (scaled to the reproduction's synthetic camera) behind
//! one [`DonkeyModel`] trait:
//!
//! | kind        | input                  | outputs                                |
//! |-------------|------------------------|----------------------------------------|
//! | Linear      | image                  | steering (tanh) + throttle (sigmoid)   |
//! | Categorical | image                  | 15 steering bins + 20 throttle bins    |
//! | Inferred    | image                  | steering only; throttle derived        |
//! | Memory      | image + last M controls| steering + throttle                    |
//! | Rnn         | last T images          | steering + throttle via LSTM           |
//! | ThreeD      | last T images          | steering + throttle via Conv3D         |

mod zoo;

pub use zoo::{CarModel, SavedModel};

use crate::data::{Batch, Dataset};
pub use autolearn_analyze::graph::ModelSpec;
use crate::optim::Optimizer;
use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Which of the six DonkeyCar architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelKind {
    Linear,
    Categorical,
    Inferred,
    Memory,
    Rnn,
    ThreeD,
}

impl ModelKind {
    /// All six, in the paper's listing order.
    pub fn all() -> [ModelKind; 6] {
        [
            ModelKind::Linear,
            ModelKind::Memory,
            ModelKind::ThreeD,
            ModelKind::Categorical,
            ModelKind::Inferred,
            ModelKind::Rnn,
        ]
    }

    /// DonkeyCar's command-line name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Linear => "linear",
            ModelKind::Categorical => "categorical",
            ModelKind::Inferred => "inferred",
            ModelKind::Memory => "memory",
            ModelKind::Rnn => "rnn",
            ModelKind::ThreeD => "3d",
        }
    }

    pub fn from_name(s: &str) -> Option<ModelKind> {
        Some(match s {
            "linear" => ModelKind::Linear,
            "categorical" => ModelKind::Categorical,
            "inferred" => ModelKind::Inferred,
            "memory" => ModelKind::Memory,
            "rnn" => ModelKind::Rnn,
            "3d" => ModelKind::ThreeD,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What inputs a model expects; drives dataset preparation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputSpec {
    /// Single frames `[N, C, H, W]`.
    Frames,
    /// Sliding windows of T frames `[N, T, C, H, W]`.
    Sequence(usize),
    /// Frames plus the previous M control pairs `[N, 2M]`.
    FramesWithHistory(usize),
}

/// Hyper-parameters shared by the zoo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Camera frame size fed to the network (the tub pipeline downscales
    /// the recorded 160x120 frames to this).
    pub height: usize,
    pub width: usize,
    pub channels: usize,
    /// Sequence length for Rnn/ThreeD.
    pub seq_len: usize,
    /// Control-history length for Memory.
    pub history: usize,
    /// Steering bins for Categorical (DonkeyCar default 15).
    pub steering_bins: usize,
    /// Throttle bins for Categorical (DonkeyCar default 20).
    pub throttle_bins: usize,
    pub dropout: f32,
    /// Weight-init / dropout seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            height: 30,
            width: 40,
            channels: 1,
            seq_len: 3,
            history: 4,
            steering_bins: 15,
            throttle_bins: 20,
            dropout: 0.1,
            seed: 42,
        }
    }
}

/// Throttle-from-steering policy used by the Inferred model at drive time:
/// full base throttle on straights, easing off proportionally to steering
/// magnitude. This is what lets Inferred "speed fast, while still being
/// accurate" (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferredThrottle {
    pub base: f32,
    pub gain: f32,
    pub min: f32,
}

impl Default for InferredThrottle {
    fn default() -> Self {
        InferredThrottle {
            base: 0.8,
            gain: 0.6,
            min: 0.25,
        }
    }
}

impl InferredThrottle {
    pub fn throttle_for(self, steering: f32) -> f32 {
        (self.base - self.gain * steering.abs()).max(self.min)
    }
}

/// A trained (or trainable) self-driving model.
pub trait DonkeyModel: Send {
    fn kind(&self) -> ModelKind;

    fn input_spec(&self) -> InputSpec;

    /// One optimisation step on a minibatch; returns the batch loss.
    fn train_batch(&mut self, batch: &Batch, opt: &mut dyn Optimizer) -> f32;

    /// Forward-only loss on a minibatch (no parameter update).
    fn eval_batch(&mut self, batch: &Batch) -> f32;

    /// Predict (steering, throttle) for each example in `inputs`.
    fn predict(&mut self, inputs: &[Tensor]) -> Vec<(f32, f32)>;

    /// FLOPs for one single-example inference.
    fn flops_per_inference(&self) -> u64;

    /// Trainable parameter count.
    fn param_count(&mut self) -> usize;

    /// Flat weight snapshot, in stable parameter order.
    fn state_dict(&mut self) -> Vec<Vec<f32>>;

    /// Restore a snapshot from [`DonkeyModel::state_dict`].
    fn load_state(&mut self, state: &[Vec<f32>]);

    /// Symbolic graph description for the static validator, if the model
    /// can produce one. The trainer validates it before the first
    /// optimisation step; `None` skips the pre-flight check.
    fn graph_spec(&self) -> Option<ModelSpec> {
        None
    }

    /// Total bytes currently held by the model's grow-only scratch arenas.
    /// The arenas only grow on new (layer, batch-shape) pairs, so after
    /// training this *is* the peak footprint — the trainer surfaces it as
    /// the `nn.scratch_peak_bytes` gauge. Models without arenas report 0.
    fn scratch_bytes(&self) -> usize {
        0
    }
}

/// Transform a raw frame dataset into the layout `spec` requires.
pub fn prepare_dataset(dataset: &Dataset, spec: InputSpec) -> Dataset {
    match spec {
        InputSpec::Frames => dataset.clone(),
        InputSpec::Sequence(t) => dataset.to_sequences(t),
        InputSpec::FramesWithHistory(m) => dataset.with_history(m),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip() {
        for kind in ModelKind::all() {
            assert_eq!(ModelKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(ModelKind::from_name("bogus"), None);
        assert_eq!(ModelKind::ThreeD.to_string(), "3d");
    }

    #[test]
    fn all_lists_six_distinct() {
        let all = ModelKind::all();
        assert_eq!(all.len(), 6);
        for i in 0..6 {
            for j in 0..i {
                assert_ne!(all[i], all[j]);
            }
        }
    }

    #[test]
    fn inferred_throttle_policy() {
        let p = InferredThrottle::default();
        // Straight: full base throttle.
        assert_eq!(p.throttle_for(0.0), p.base);
        // Hard turn: clamped at min.
        assert_eq!(p.throttle_for(1.0), p.min);
        // Monotone decreasing in |steering|.
        assert!(p.throttle_for(0.2) > p.throttle_for(0.5));
        // Symmetric.
        assert_eq!(p.throttle_for(-0.4), p.throttle_for(0.4));
    }
}
