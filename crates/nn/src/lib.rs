//! From-scratch neural-network library for the AutoLearn reproduction.
//!
//! The paper trains DonkeyCar's Keras model zoo (linear, categorical,
//! inferred, memory, RNN, 3D) on TensorFlow atop Chameleon GPU nodes. With
//! no TensorFlow available, this crate reimplements the necessary subset
//! from scratch:
//!
//! * a dense `f32` [`Tensor`] whose matmul/conv paths all lower onto one
//!   blocked, panel-packed GEMM primitive ([`kernels`]), with the naive
//!   loops kept in [`kernels::reference`] as the correctness oracle,
//! * layers with hand-written backward passes (`Dense`, `Conv2D`, `Conv3D`,
//!   `MaxPool2D`, `Flatten`, `Dropout`, `BatchNorm1d`, activations, `Lstm`,
//!   `TimeDistributed`),
//! * losses (MSE, softmax cross-entropy), optimizers (SGD+momentum, Adam),
//! * a [`Sequential`] container plus the six two-headed DonkeyCar
//!   architectures in [`models`],
//! * FLOP introspection per layer, feeding the analytic GPU performance
//!   model in `autolearn-cloud`,
//! * JSON (de)serialisation of weights so "pre-trained models" can live in
//!   the object store exactly as the paper stores them.
//!
//! Every layer's backward pass is validated against central finite
//! differences in the test suite.

pub mod data;
pub mod init;
/// Blocked panel-packed GEMM, im2col lowering, and the per-layer scratch
/// arena — the numeric core every layer's forward/backward routes through.
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod models;
pub mod optim;
pub mod schedule;
pub mod sequential;
pub mod tensor;
pub mod train;

pub use autolearn_analyze::contract::{
    format_contract_errors, standard_stages, validate_pipeline, ContractError, ContractReport,
    DType, FrameContract, FrameLayout, StageSpec,
};
pub use autolearn_analyze::graph::{format_errors, validate_model, GraphError, GraphReport};
pub use data::{Batch, Dataset};
pub use layers::{Activation, Layer};
pub use loss::Loss;
pub use models::{DonkeyModel, ModelKind};
pub use optim::{Adam, Optimizer, Sgd};
pub use schedule::{LrSchedule, LrScheduler};
pub use sequential::Sequential;
pub use tensor::Tensor;
pub use train::{TrainConfig, TrainReport, Trainer};
