//! Sequential layer container.

use crate::layers::{Layer, Param};
use crate::tensor::Tensor;

/// A straight chain of layers. The DonkeyCar models are built as a shared
/// `Sequential` trunk plus one `Sequential` per output head.
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    pub fn new() -> Sequential {
        Sequential { layers: Vec::new() }
    }

    /// Builder-style push.
    pub fn push(mut self, layer: impl Layer + 'static) -> Sequential {
        self.layers.push(Box::new(layer));
        self
    }

    pub fn add(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    pub fn len(&self) -> usize {
        self.layers.len()
    }

    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// One-line-per-layer summary with output shapes, like Keras'
    /// `model.summary()`.
    pub fn summary(&mut self, input_shape: &[usize]) -> String {
        let mut shape = input_shape.to_vec();
        let mut out = String::new();
        for layer in &mut self.layers {
            shape = layer.output_shape(&shape);
            out.push_str(&format!("{:<40} -> {:?}\n", layer.name(), shape));
        }
        out
    }
}

impl Default for Sequential {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // First layer reads `x` directly (no entry clone); later layers
        // consume the previous layer's owned output.
        let mut iter = self.layers.iter_mut();
        let mut cur = match iter.next() {
            Some(first) => first.forward(x, train),
            None => return x.clone(),
        };
        for layer in iter {
            cur = layer.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut iter = self.layers.iter_mut().rev();
        let mut cur = match iter.next() {
            Some(last) => last.backward(grad_out),
            None => return grad_out.clone(),
        };
        for layer in iter {
            cur = layer.backward(&cur);
        }
        cur
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let mut shape = input_shape.to_vec();
        let mut total = 0u64;
        for layer in &self.layers {
            total += layer.flops_per_example(&shape);
            shape = layer.output_shape(&shape);
        }
        total
    }

    fn scratch_bytes(&self) -> usize {
        self.layers.iter().map(|l| l.scratch_bytes()).sum()
    }

    fn name(&self) -> String {
        format!("Sequential[{}]", self.layers.len())
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Chain(self.layers.iter().map(|l| l.spec()).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{gradcheck, Activation, ActivationLayer, Conv2D, Dense, Flatten};
    use autolearn_util::rng::rng_from_seed;

    fn tiny_convnet(rng: &mut impl rand::Rng) -> Sequential {
        Sequential::new()
            .push(Conv2D::new(1, 2, 3, 2, rng))
            .push(ActivationLayer::new(Activation::Relu))
            .push(Flatten::new())
            .push(Dense::new(2 * 3 * 3, 4, rng))
            .push(ActivationLayer::new(Activation::Tanh))
    }

    #[test]
    fn forward_through_chain() {
        let mut rng = rng_from_seed(1);
        let mut net = tiny_convnet(&mut rng);
        let x = Tensor::randn(&[2, 1, 7, 7], 1.0, &mut rng);
        let y = net.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        assert_eq!(net.output_shape(&[2, 1, 7, 7]), vec![2, 4]);
    }

    #[test]
    fn gradcheck_whole_network() {
        let mut rng = rng_from_seed(2);
        let mut net = tiny_convnet(&mut rng);
        let x = Tensor::randn(&[2, 1, 7, 7], 0.5, &mut rng);
        gradcheck::check_input_grad(&mut net, &x, 5e-2);
        gradcheck::check_param_grads(&mut net, &x, 5e-2);
    }

    #[test]
    fn params_flow_through() {
        let mut rng = rng_from_seed(3);
        let mut net = tiny_convnet(&mut rng);
        // conv w+b, dense w+b.
        assert_eq!(net.params_mut().len(), 4);
        assert!(net.param_count() > 0);
        net.zero_grads();
        for p in net.params_mut() {
            assert!(p.grad.data().iter().all(|&g| g == 0.0));
        }
    }

    #[test]
    fn flops_accumulate() {
        let mut rng = rng_from_seed(4);
        let net = tiny_convnet(&mut rng);
        let f = net.flops_per_example(&[1, 1, 7, 7]);
        assert!(f > 0);
    }

    #[test]
    fn summary_lists_layers() {
        let mut rng = rng_from_seed(5);
        let mut net = tiny_convnet(&mut rng);
        let s = net.summary(&[1, 1, 7, 7]);
        assert!(s.contains("Conv2D"));
        assert!(s.contains("Dense"));
        assert_eq!(s.lines().count(), 5);
    }
}
