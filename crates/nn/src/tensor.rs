//! A dense row-major `f32` tensor.
//!
//! Shapes use the conventions: vectors `[n]`, matrices `[rows, cols]`,
//! image batches `[batch, channels, height, width]` (CHW) and image-sequence
//! batches `[batch, time, channels, height, width]`. The batch dimension is
//! always first.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// Dense row-major tensor of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], value: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Build from raw data; length must match the shape product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} does not match data length {}",
            data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Uniform random in [-limit, limit].
    pub fn uniform(shape: &[usize], limit: f32, rng: &mut impl Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.gen_range(-limit..=limit)).collect();
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Standard normal scaled by `std` (Box–Muller, deterministic in rng).
    pub fn randn(shape: &[usize], std: f32, rng: &mut impl Rng) -> Tensor {
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        while data.len() < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < n {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn data(&self) -> &[f32] {
        &self.data
    }

    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret with a new shape of the same total size.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.data.len(),
            "cannot reshape {:?} ({}) to {shape:?}",
            self.shape,
            self.data.len()
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// First dimension (batch size for batched tensors).
    pub fn dim0(&self) -> usize {
        self.shape.first().copied().unwrap_or(0)
    }

    /// Elements per example (= len / dim0).
    pub fn example_len(&self) -> usize {
        if self.dim0() == 0 {
            0
        } else {
            self.len() / self.dim0()
        }
    }

    /// Borrow example `i` of a batched tensor as a flat slice.
    pub fn example(&self, i: usize) -> &[f32] {
        let k = self.example_len();
        &self.data[i * k..(i + 1) * k]
    }

    /// Stack equal-shaped example tensors into a batch along a new first axis.
    pub fn stack(examples: &[Tensor]) -> Tensor {
        assert!(!examples.is_empty(), "cannot stack zero tensors");
        let inner = examples[0].shape.clone();
        let mut shape = vec![examples.len()];
        shape.extend_from_slice(&inner);
        let mut data = Vec::with_capacity(examples.len() * examples[0].len());
        for e in examples {
            assert_eq!(e.shape, inner, "stack requires equal shapes");
            data.extend_from_slice(&e.data);
        }
        Tensor { shape, data }
    }

    /// Select a subset of examples (rows along axis 0) by index.
    pub fn gather0(&self, idx: &[usize]) -> Tensor {
        let k = self.example_len();
        let mut shape = self.shape.clone();
        shape[0] = idx.len();
        let mut data = Vec::with_capacity(idx.len() * k);
        for &i in idx {
            data.extend_from_slice(self.example(i));
        }
        Tensor { shape, data }
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise combine with an equal-shaped tensor.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "zip requires equal shapes");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a + b)
    }

    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip(other, |a, b| a - b)
    }

    pub fn scale(&self, k: f32) -> Tensor {
        self.map(|x| x * k)
    }

    /// In-place axpy: `self += other * k`.
    pub fn add_scaled(&mut self, other: &Tensor, k: f32) {
        assert_eq!(self.shape, other.shape);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b * k;
        }
    }

    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            // cast: element count may round in f32; fine for a mean.
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element of a flat slice range per example.
    pub fn argmax_per_example(&self) -> Vec<usize> {
        (0..self.dim0())
            .map(|i| {
                let row = self.example(i);
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Matrix multiply `[m, k] x [k, n] -> [m, n]` through the blocked,
    /// panel-packed GEMM in [`crate::kernels`].
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let mut out = Tensor::zeros(&[self.shape[0], other.shape.get(1).copied().unwrap_or(0)]);
        self.matmul_into(other, &mut out);
        out
    }

    /// Matrix multiply writing into caller-provided storage: `out = self ·
    /// other`. `out` is resized (grow-only capacity) to `[m, n]`, so a
    /// reused output tensor costs no allocation in steady state.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) {
        assert_eq!(self.rank(), 2, "matmul lhs must be rank 2");
        assert_eq!(other.rank(), 2, "matmul rhs must be rank 2");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions {k} vs {k2}");

        debug_assert_eq!(self.data.len(), m * k, "matmul lhs data/shape mismatch");
        debug_assert_eq!(other.data.len(), k * n, "matmul rhs data/shape mismatch");
        debug_check_finite("matmul lhs", &self.data);
        debug_check_finite("matmul rhs", &other.data);

        out.resize_storage(&[m, n]);
        crate::kernels::matmul_into(&mut out.data, &self.data, &other.data, m, k, n);
    }

    /// Re-shape in place, resizing the backing storage to match. Existing
    /// capacity is kept when shrinking, so alternating between batch shapes
    /// reuses the same allocation. New elements (if growing) are zeroed;
    /// existing elements are preserved only as a flat prefix.
    pub fn resize_storage(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        self.shape.clear();
        self.shape.extend_from_slice(shape);
        self.data.resize(n, 0.0);
    }

    /// Overwrite this tensor with `src`'s shape and contents, reusing the
    /// existing backing storage (grow-only). The borrow-free replacement
    /// for `cache = Some(src.clone())` in layer forward passes.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize_storage(&src.shape);
        self.data.copy_from_slice(&src.data);
    }

    /// Transpose of a rank-2 tensor.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// L2 norm of all elements.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Debug-build guard used by the hot kernels (matmul, conv loops): checks a
/// bounded prefix of `data` for NaN/inf so exploding gradients surface at
/// the kernel that produced them instead of as a silent bad loss. Bounded at
/// 256 elements to keep debug test runs fast; compiled out in release.
pub(crate) fn debug_check_finite(kernel: &str, data: &[f32]) {
    if cfg!(debug_assertions) {
        let n = data.len().min(256);
        if let Some((i, v)) = data[..n].iter().enumerate().find(|(_, v)| !v.is_finite()) {
            // INVARIANT: debug-only numeric guard; release builds skip it.
            panic!("{kernel}: non-finite value {v} at element {i}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rank(), 2);
        assert!(t.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(&[2], 7.0);
        assert_eq!(f.data(), &[7.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "does not match data length")]
    fn from_vec_validates_length() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let mut rng = rng_from_seed(1);
        let a = Tensor::randn(&[4, 4], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.data_mut()[i * 4 + i] = 1.0;
        }
        let b = a.matmul(&eye);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn transpose_roundtrip() {
        let mut rng = rng_from_seed(2);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let back = a.transpose2().transpose2();
        assert_eq!(a, back);
    }

    #[test]
    fn matmul_agrees_with_transpose_identity() {
        // (A B)^T == B^T A^T
        let mut rng = rng_from_seed(3);
        let a = Tensor::randn(&[3, 4], 1.0, &mut rng);
        let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose2();
        let rhs = b.transpose2().matmul(&a.transpose2());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn stack_and_example() {
        let a = Tensor::from_vec(&[2], vec![1., 2.]);
        let b = Tensor::from_vec(&[2], vec![3., 4.]);
        let s = Tensor::stack(&[a, b]);
        assert_eq!(s.shape(), &[2, 2]);
        assert_eq!(s.example(1), &[3., 4.]);
        assert_eq!(s.example_len(), 2);
    }

    #[test]
    fn gather0_selects_rows() {
        let t = Tensor::from_vec(&[3, 2], vec![0., 1., 10., 11., 20., 21.]);
        let g = t.gather0(&[2, 0]);
        assert_eq!(g.shape(), &[2, 2]);
        assert_eq!(g.data(), &[20., 21., 0., 1.]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[3], vec![1., 2., 3.]);
        let b = Tensor::from_vec(&[3], vec![10., 20., 30.]);
        assert_eq!(a.add(&b).data(), &[11., 22., 33.]);
        assert_eq!(b.sub(&a).data(), &[9., 18., 27.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.1);
        assert!((c.data()[2] - 6.0).abs() < 1e-6);
        assert_eq!(a.sum(), 6.0);
        assert_eq!(a.mean(), 2.0);
    }

    #[test]
    fn argmax_per_example_rows() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.2, 0.5, 0.1, 0.8]);
        assert_eq!(t.argmax_per_example(), vec![1, 2]);
    }

    #[test]
    fn randn_statistics() {
        let mut rng = rng_from_seed(7);
        let t = Tensor::randn(&[10_000], 2.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|x| (x - mean) * (x - mean)).sum::<f32>()
            / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "variance {var}");
    }

    #[test]
    fn uniform_within_limit() {
        let mut rng = rng_from_seed(8);
        let t = Tensor::uniform(&[1000], 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }

    #[test]
    fn matmul_into_reuses_storage() {
        let a = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let mut out = Tensor::zeros(&[2, 2]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
        // Second call with the same shapes reuses the buffer and fully
        // overwrites the previous product.
        a.matmul_into(&b, &mut out);
        assert_eq!(out.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn copy_from_tracks_shape_and_contents() {
        let src = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let mut dst = Tensor::zeros(&[8]);
        dst.copy_from(&src);
        assert_eq!(dst.shape(), &[2, 2]);
        assert_eq!(dst.data(), src.data());
        let smaller = Tensor::from_vec(&[2], vec![9., 9.]);
        dst.copy_from(&smaller);
        assert_eq!(dst.shape(), &[2]);
        assert_eq!(dst.data(), &[9., 9.]);
    }

    #[test]
    fn argmax_total_cmp_handles_nan_rows() {
        let t = Tensor::from_vec(&[1, 3], vec![0.2, f32::NAN, 0.4]);
        // total_cmp orders NaN above every finite float, so the NaN index
        // wins deterministically instead of depending on scan order.
        assert_eq!(t.argmax_per_example(), vec![1]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let r = t.reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }
}
