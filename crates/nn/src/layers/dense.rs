//! Fully-connected layer.

use super::{Layer, Param};
use crate::init::glorot_uniform;
use crate::tensor::Tensor;
use rand::Rng;

/// `y = x W + b`, input `[batch, in]`, output `[batch, out]`.
pub struct Dense {
    pub w: Param,
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    cache_x: Option<Tensor>,
}

impl Dense {
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Dense {
        Dense {
            w: Param::new(glorot_uniform(&[in_dim, out_dim], in_dim, out_dim, rng)),
            b: Param::new(Tensor::zeros(&[out_dim])),
            in_dim,
            out_dim,
            cache_x: None,
        }
    }

    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 2, "Dense expects [batch, features]");
        assert_eq!(x.shape()[1], self.in_dim, "Dense input width");
        let batch = x.shape()[0];
        let mut y = Tensor::zeros(&[batch, self.out_dim]);
        // The backward cache reuses its buffer: allocated on the first
        // forward, a plain copy every step after.
        match &mut self.cache_x {
            Some(c) => c.copy_from(x),
            None => self.cache_x = Some(x.clone()),
        }
        let b = self.b.value.data();
        // hot-kernel: begin (dense forward GEMM + bias, alloc-free)
        crate::kernels::matmul_into(
            y.data_mut(),
            x.data(),
            self.w.value.data(),
            batch,
            self.in_dim,
            self.out_dim,
        );
        for row in y.data_mut().chunks_mut(self.out_dim) {
            for (v, &bb) in row.iter_mut().zip(b) {
                *v += bb;
            }
        }
        // hot-kernel: end
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let batch = x.shape()[0];
        let mut dx = Tensor::zeros(&[batch, self.in_dim]);
        // hot-kernel: begin (dense backward GEMMs, alloc-free)
        // dW += xᵀ · dY, accumulated straight into the grad buffer.
        crate::kernels::gemm(
            self.w.grad.data_mut(),
            true,
            x.data(),
            true,
            grad_out.data(),
            false,
            self.in_dim,
            batch,
            self.out_dim,
        );
        // db += column sums of dY
        let db = self.b.grad.data_mut();
        for row in grad_out.data().chunks(self.out_dim) {
            for (g, &r) in db.iter_mut().zip(row) {
                *g += r;
            }
        }
        // dX = dY · Wᵀ
        crate::kernels::gemm(
            dx.data_mut(),
            false,
            grad_out.data(),
            false,
            self.w.value.data(),
            true,
            batch,
            self.out_dim,
            self.in_dim,
        );
        // hot-kernel: end
        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.out_dim]
    }

    fn flops_per_example(&self, _input_shape: &[usize]) -> u64 {
        // multiply-accumulate = 2 flops, plus bias add.
        (2 * self.in_dim * self.out_dim + self.out_dim) as u64
    }

    fn scratch_bytes(&self) -> usize {
        self.cache_x
            .as_ref()
            .map_or(0, |c| c.len() * std::mem::size_of::<f32>())
    }

    fn name(&self) -> String {
        format!("Dense({}→{})", self.in_dim, self.out_dim)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Dense {
            input: self.in_dim,
            output: self.out_dim,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = rng_from_seed(1);
        let mut d = Dense::new(3, 2, &mut rng);
        d.w.value.fill(0.0);
        d.b.value = Tensor::from_vec(&[2], vec![1.0, -1.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = d.forward(&x, false);
        assert_eq!(y.shape(), &[4, 2]);
        for row in y.data().chunks(2) {
            assert_eq!(row, &[1.0, -1.0]);
        }
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(2);
        let mut d = Dense::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut d, &x, 2e-2);
        gradcheck::check_param_grads(&mut d, &x, 2e-2);
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut rng = rng_from_seed(3);
        let mut d = Dense::new(2, 2, &mut rng);
        let x = Tensor::randn(&[1, 2], 1.0, &mut rng);
        let y = d.forward(&x, true);
        let _ = d.backward(&y);
        let g1 = d.w.grad.clone();
        let y = d.forward(&x, true);
        let _ = d.backward(&y);
        // Second backward doubles the accumulator.
        for (a, b) in d.w.grad.data().iter().zip(g1.data()) {
            assert!((a - 2.0 * b).abs() < 1e-4);
        }
        d.zero_grads();
        assert!(d.w.grad.data().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn flops_and_params() {
        let mut rng = rng_from_seed(4);
        let mut d = Dense::new(10, 5, &mut rng);
        assert_eq!(d.param_count(), 10 * 5 + 5);
        assert_eq!(d.flops_per_example(&[1, 10]), 2 * 10 * 5 + 5);
        assert_eq!(d.output_shape(&[7, 10]), vec![7, 5]);
    }

    #[test]
    #[should_panic(expected = "Dense input width")]
    fn rejects_wrong_width() {
        let mut rng = rng_from_seed(5);
        let mut d = Dense::new(3, 2, &mut rng);
        let _ = d.forward(&Tensor::zeros(&[1, 4]), false);
    }
}
