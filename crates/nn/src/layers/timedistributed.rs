//! Time-distributed wrapper: apply an inner layer independently to every
//! timestep with shared weights, exactly like Keras' `TimeDistributed`.
//!
//! Implemented by folding time into the batch axis — `[B, T, ...]` becomes
//! `[B*T, ...]` — which shares weights and accumulates gradients across
//! timesteps for free.

use super::{Layer, Param};
use crate::tensor::Tensor;

pub struct TimeDistributed {
    inner: Box<dyn Layer>,
    cache_bt: (usize, usize),
}

impl TimeDistributed {
    pub fn new(inner: Box<dyn Layer>) -> TimeDistributed {
        TimeDistributed {
            inner,
            cache_bt: (0, 0),
        }
    }
}

impl Layer for TimeDistributed {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert!(x.rank() >= 3, "TimeDistributed expects [batch, time, ...]");
        let (b, t) = (x.shape()[0], x.shape()[1]);
        self.cache_bt = (b, t);
        let mut merged_shape = vec![b * t];
        merged_shape.extend_from_slice(&x.shape()[2..]);
        let y = self.inner.forward(&x.reshape(&merged_shape), train);
        let mut out_shape = vec![b, t];
        out_shape.extend_from_slice(&y.shape()[1..]);
        y.reshape(&out_shape)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (b, t) = self.cache_bt;
        let mut merged = vec![b * t];
        merged.extend_from_slice(&grad_out.shape()[2..]);
        let dx = self.inner.backward(&grad_out.reshape(&merged));
        let mut out_shape = vec![b, t];
        out_shape.extend_from_slice(&dx.shape()[1..]);
        dx.reshape(&out_shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.inner.params_mut()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut merged = vec![input_shape[0] * input_shape[1]];
        merged.extend_from_slice(&input_shape[2..]);
        let inner_out = self.inner.output_shape(&merged);
        let mut out = vec![input_shape[0], input_shape[1]];
        out.extend_from_slice(&inner_out[1..]);
        out
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let mut merged = vec![input_shape[0] * input_shape[1]];
        merged.extend_from_slice(&input_shape[2..]);
        input_shape[1] as u64 * self.inner.flops_per_example(&merged)
    }

    fn scratch_bytes(&self) -> usize {
        self.inner.scratch_bytes()
    }

    fn name(&self) -> String {
        format!("TimeDistributed({})", self.inner.name())
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::TimeDistributed {
            inner: Box::new(self.inner.spec()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{gradcheck, Dense};
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn applies_inner_per_timestep() {
        let mut rng = rng_from_seed(1);
        let inner = Dense::new(2, 3, &mut rng);
        // Clone the weights so we can compare against a direct call.
        let w = inner.w.value.clone();
        let b = inner.b.value.clone();
        let mut td = TimeDistributed::new(Box::new(inner));
        let x = Tensor::randn(&[2, 4, 2], 1.0, &mut rng);
        let y = td.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4, 3]);

        // Timestep (1, 2) equals a manual dense on that slice.
        let xt: Vec<f32> = x.data()[(1 * 4 + 2) * 2..(1 * 4 + 2) * 2 + 2].to_vec();
        let expect: Vec<f32> = (0..3)
            .map(|j| xt[0] * w.data()[j] + xt[1] * w.data()[3 + j] + b.data()[j])
            .collect();
        let got = &y.data()[(1 * 4 + 2) * 3..(1 * 4 + 2) * 3 + 3];
        for (e, g) in expect.iter().zip(got) {
            assert!((e - g).abs() < 1e-5);
        }
    }

    #[test]
    fn gradcheck_through_time() {
        let mut rng = rng_from_seed(2);
        let mut td = TimeDistributed::new(Box::new(Dense::new(3, 2, &mut rng)));
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut td, &x, 2e-2);
        gradcheck::check_param_grads(&mut td, &x, 2e-2);
    }

    #[test]
    fn shape_and_flops() {
        let mut rng = rng_from_seed(3);
        let td = TimeDistributed::new(Box::new(Dense::new(4, 2, &mut rng)));
        assert_eq!(td.output_shape(&[5, 3, 4]), vec![5, 3, 2]);
        // 3 timesteps x dense flops.
        assert_eq!(td.flops_per_example(&[5, 3, 4]), 3 * (2 * 4 * 2 + 2));
    }
}
