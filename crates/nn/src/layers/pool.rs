//! 2-D max pooling.

use super::Layer;
use crate::tensor::Tensor;

/// Max pooling over `[batch, ch, h, w]` with a square window and stride equal
/// to the window size (the Keras default used by DonkeyCar's 3D model).
pub struct MaxPool2D {
    k: usize,
    /// Flat input index of each output element's argmax, for backward.
    /// Reused across forwards (resize keeps capacity); `seen_forward`
    /// distinguishes a legitimate empty cache from backward-before-forward.
    cache_argmax: Vec<usize>,
    cache_in_shape: Vec<usize>,
    seen_forward: bool,
}

impl MaxPool2D {
    pub fn new(k: usize) -> MaxPool2D {
        assert!(k >= 1);
        MaxPool2D {
            k,
            cache_argmax: Vec::new(),
            cache_in_shape: Vec::new(),
            seen_forward: false,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (h / self.k, w / self.k)
    }
}

impl Layer for MaxPool2D {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 4, "MaxPool2D expects [batch, ch, h, w]");
        let (batch, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (oh, ow) = self.out_hw(h, w);
        assert!(oh > 0 && ow > 0, "pool window larger than input");
        let k = self.k;

        let xin = x.data();
        let mut out_t = Tensor::zeros(&[batch, c, oh, ow]);
        let out = out_t.data_mut();
        self.cache_argmax.resize(batch * c * oh * ow, 0);
        let arg = &mut self.cache_argmax;
        // hot-kernel: begin (max-pool sweep, alloc-free)
        for bi in 0..batch {
            for ci in 0..c {
                let base = (bi * c + ci) * h * w;
                let obase = (bi * c + ci) * oh * ow;
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut besti = 0usize;
                        for ky in 0..k {
                            for kx in 0..k {
                                let idx = base + (oy * k + ky) * w + ox * k + kx;
                                if xin[idx] > best {
                                    best = xin[idx];
                                    besti = idx;
                                }
                            }
                        }
                        out[obase + oy * ow + ox] = best;
                        arg[obase + oy * ow + ox] = besti;
                    }
                }
            }
        }
        // hot-kernel: end
        self.cache_in_shape.clear();
        self.cache_in_shape.extend_from_slice(x.shape());
        self.seen_forward = true;
        out_t
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert!(self.seen_forward, "backward before forward");
        let mut dx = Tensor::zeros(&self.cache_in_shape);
        let d = dx.data_mut();
        for (g, &i) in grad_out.data().iter().zip(&self.cache_argmax) {
            d[i] += g;
        }
        dx
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], input_shape[1], oh, ow]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        // One comparison per input element in each window.
        input_shape[1..].iter().product::<usize>() as u64
    }

    fn scratch_bytes(&self) -> usize {
        self.cache_argmax.len() * std::mem::size_of::<usize>()
    }

    fn name(&self) -> String {
        format!("MaxPool2D({0}x{0})", self.k)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::MaxPool2D { size: self.k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;

    #[test]
    fn pools_maxima() {
        let mut p = MaxPool2D::new(2);
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1., 2., 3., 4., //
                5., 6., 7., 8., //
                9., 10., 11., 12., //
                13., 14., 15., 16.,
            ],
        );
        let y = p.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6., 8., 14., 16.]);
    }

    #[test]
    fn backward_routes_to_argmax() {
        let mut p = MaxPool2D::new(2);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1., 9., 3., 4.]);
        let _ = p.forward(&x, true);
        let dx = p.backward(&Tensor::from_vec(&[1, 1, 1, 1], vec![2.0]));
        assert_eq!(dx.data(), &[0., 2., 0., 0.]);
    }

    #[test]
    fn gradcheck_pool() {
        use autolearn_util::rng::rng_from_seed;
        let mut rng = rng_from_seed(1);
        let mut p = MaxPool2D::new(2);
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut p, &x, 5e-2);
    }

    #[test]
    fn truncates_ragged_edges() {
        let p = MaxPool2D::new(2);
        assert_eq!(p.output_shape(&[1, 3, 5, 7]), vec![1, 3, 2, 3]);
    }
}
