//! 3-D convolution over image sequences, for the DonkeyCar "3D" model.
//!
//! Lowered onto the blocked GEMM in [`crate::kernels`] exactly like
//! [`Conv2D`](super::conv2d::Conv2D), with the kernel's temporal extent
//! folded into the im2col row index: per example the `[c, t, h, w]` volume
//! unrolls into a `[c*kt*k*k, ot*oh*ow]` column matrix, and forward /
//! `dw` / `dx` are one GEMM each (plus the col2im scatter for `dx`). The
//! column matrices live in the layer's [`Scratch`] arena and double as the
//! backward cache.

use super::{Layer, Param};
use crate::init::glorot_uniform;
use crate::kernels::{self, Scratch};
use crate::tensor::Tensor;
use rand::Rng;

/// Convolution over `[batch, in_ch, T, H, W]` with kernel
/// `[filters, in_ch, kt, k, k]`, stride `(st, s, s)`, valid padding.
pub struct Conv3D {
    pub w: Param,
    pub b: Param,
    in_ch: usize,
    filters: usize,
    kt: usize,
    k: usize,
    st: usize,
    s: usize,
    scratch: Scratch,
    cache_in_shape: Option<[usize; 5]>,
}

impl Conv3D {
    pub fn new(
        in_ch: usize,
        filters: usize,
        kt: usize,
        k: usize,
        st: usize,
        s: usize,
        rng: &mut impl Rng,
    ) -> Conv3D {
        assert!(kt >= 1 && k >= 1 && st >= 1 && s >= 1);
        let fan_in = in_ch * kt * k * k;
        let fan_out = filters * kt * k * k;
        Conv3D {
            w: Param::new(glorot_uniform(
                &[filters, in_ch, kt, k, k],
                fan_in,
                fan_out,
                rng,
            )),
            b: Param::new(Tensor::zeros(&[filters])),
            in_ch,
            filters,
            kt,
            k,
            st,
            s,
            scratch: Scratch::new(),
            cache_in_shape: None,
        }
    }

    fn out_dims(&self, t: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert!(
            t >= self.kt && h >= self.k && w >= self.k,
            "input {t}x{h}x{w} smaller than kernel {}x{}x{}",
            self.kt,
            self.k,
            self.k
        );
        (
            (t - self.kt) / self.st + 1,
            (h - self.k) / self.s + 1,
            (w - self.k) / self.s + 1,
        )
    }
}

impl Layer for Conv3D {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 5, "Conv3D expects [batch, ch, t, h, w]");
        let (batch, c, t, h, w) = (
            x.shape()[0],
            x.shape()[1],
            x.shape()[2],
            x.shape()[3],
            x.shape()[4],
        );
        assert_eq!(c, self.in_ch);
        let (ot, oh, ow) = self.out_dims(t, h, w);
        let (f, kt, k, st, s) = (self.filters, self.kt, self.k, self.st, self.s);
        let (ckk, osp) = (c * kt * k * k, ot * oh * ow);

        let xin = x.data();
        crate::tensor::debug_check_finite("Conv3D input", xin);
        crate::tensor::debug_check_finite("Conv3D weights", self.w.value.data());

        let mut out = Tensor::zeros(&[batch, f, ot, oh, ow]);
        let ov = out.data_mut();
        let cols = self.scratch.get1(batch * ckk * osp);
        let wv = self.w.value.data();
        let bv = self.b.value.data();

        // hot-kernel: begin (3-D im2col + GEMM forward, alloc-free)
        for bi in 0..batch {
            let xb = &xin[bi * c * t * h * w..(bi + 1) * c * t * h * w];
            let cb = &mut cols[bi * ckk * osp..(bi + 1) * ckk * osp];
            kernels::im2col3d(xb, c, t, h, w, kt, k, st, s, ot, oh, ow, cb);
            let ob = &mut ov[bi * f * osp..(bi + 1) * f * osp];
            kernels::gemm(ob, false, wv, false, cb, false, f, ckk, osp);
            for fi in 0..f {
                let bias = bv[fi];
                for o in &mut ob[fi * osp..(fi + 1) * osp] {
                    *o += bias;
                }
            }
        }
        // hot-kernel: end

        self.cache_in_shape = Some([batch, c, t, h, w]);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [batch, c, t, h, w] = self.cache_in_shape.expect("backward before forward");
        let (f, kt, k, st, s) = (self.filters, self.kt, self.k, self.st, self.s);
        let (ot, oh, ow) = self.out_dims(t, h, w);
        let (ckk, osp) = (c * kt * k * k, ot * oh * ow);
        assert_eq!(grad_out.shape(), &[batch, f, ot, oh, ow]);

        let gout = grad_out.data();
        let mut dx = Tensor::zeros(&[batch, c, t, h, w]);
        let dxv = dx.data_mut();
        let (cols, dcols) = self.scratch.get2(batch * ckk * osp, ckk * osp);
        let wv = self.w.value.data();
        let dwv = self.w.grad.data_mut();
        let dbv = self.b.grad.data_mut();

        // hot-kernel: begin (3-D GEMM backward + col2im, alloc-free)
        for bi in 0..batch {
            let gb = &gout[bi * f * osp..(bi + 1) * f * osp];
            let cb = &cols[bi * ckk * osp..(bi + 1) * ckk * osp];
            kernels::gemm(dwv, true, gb, false, cb, true, f, osp, ckk);
            for fi in 0..f {
                let mut acc = 0.0;
                for &g in &gb[fi * osp..(fi + 1) * osp] {
                    acc += g;
                }
                dbv[fi] += acc;
            }
            kernels::gemm(dcols, false, wv, true, gb, false, ckk, f, osp);
            let dxb = &mut dxv[bi * c * t * h * w..(bi + 1) * c * t * h * w];
            kernels::col2im3d(dcols, c, t, h, w, kt, k, st, s, ot, oh, ow, dxb);
        }
        // hot-kernel: end

        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (ot, oh, ow) = self.out_dims(input_shape[2], input_shape[3], input_shape[4]);
        vec![input_shape[0], self.filters, ot, oh, ow]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let (ot, oh, ow) = self.out_dims(input_shape[2], input_shape[3], input_shape[4]);
        (2 * self.filters * self.in_ch * self.kt * self.k * self.k * ot * oh * ow) as u64
    }

    fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    fn name(&self) -> String {
        format!(
            "Conv3D({}→{}, {}x{}x{}/{}x{})",
            self.in_ch, self.filters, self.kt, self.k, self.k, self.st, self.s
        )
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Conv3D {
            in_channels: self.in_ch,
            filters: self.filters,
            kernel_t: self.kt,
            kernel: self.k,
            stride_t: self.st,
            stride: self.s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn output_dims() {
        let mut rng = rng_from_seed(1);
        let conv = Conv3D::new(1, 4, 2, 3, 1, 2, &mut rng);
        assert_eq!(conv.output_shape(&[2, 1, 3, 9, 9]), vec![2, 4, 2, 4, 4]);
    }

    #[test]
    fn temporal_sum_kernel() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv3D::new(1, 1, 2, 1, 1, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 2, 1, 1], vec![1.0, 1.0]);
        conv.b.value.fill(0.0);
        // Two 1x1 frames of values 3 and 4 → single output 7.
        let x = Tensor::from_vec(&[1, 1, 2, 1, 1], vec![3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1, 1]);
        assert_eq!(y.data(), &[7.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(3);
        let mut conv = Conv3D::new(1, 2, 2, 2, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 1, 3, 4, 4], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 4e-2);
        gradcheck::check_param_grads(&mut conv, &x, 4e-2);
    }

    #[test]
    fn scratch_is_stable_across_steps() {
        let mut rng = rng_from_seed(4);
        let mut conv = Conv3D::new(1, 2, 2, 3, 1, 2, &mut rng);
        let x = Tensor::randn(&[2, 1, 4, 9, 9], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let bytes = conv.scratch_bytes();
        assert!(bytes > 0);
        for _ in 0..3 {
            let y = conv.forward(&x, true);
            let _ = conv.backward(&y);
            assert_eq!(conv.scratch_bytes(), bytes, "steady-state must not grow");
        }
    }
}
