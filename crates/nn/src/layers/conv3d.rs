//! 3-D convolution over image sequences, for the DonkeyCar "3D" model.

use super::{Layer, Param};
use crate::init::glorot_uniform;
use crate::tensor::Tensor;
use rand::Rng;
use rayon::prelude::*;

/// Convolution over `[batch, in_ch, T, H, W]` with kernel
/// `[filters, in_ch, kt, k, k]`, stride `(st, s, s)`, valid padding.
pub struct Conv3D {
    pub w: Param,
    pub b: Param,
    in_ch: usize,
    filters: usize,
    kt: usize,
    k: usize,
    st: usize,
    s: usize,
    cache_x: Option<Tensor>,
}

impl Conv3D {
    pub fn new(
        in_ch: usize,
        filters: usize,
        kt: usize,
        k: usize,
        st: usize,
        s: usize,
        rng: &mut impl Rng,
    ) -> Conv3D {
        assert!(kt >= 1 && k >= 1 && st >= 1 && s >= 1);
        let fan_in = in_ch * kt * k * k;
        let fan_out = filters * kt * k * k;
        Conv3D {
            w: Param::new(glorot_uniform(
                &[filters, in_ch, kt, k, k],
                fan_in,
                fan_out,
                rng,
            )),
            b: Param::new(Tensor::zeros(&[filters])),
            in_ch,
            filters,
            kt,
            k,
            st,
            s,
            cache_x: None,
        }
    }

    fn out_dims(&self, t: usize, h: usize, w: usize) -> (usize, usize, usize) {
        assert!(
            t >= self.kt && h >= self.k && w >= self.k,
            "input {t}x{h}x{w} smaller than kernel {}x{}x{}",
            self.kt,
            self.k,
            self.k
        );
        (
            (t - self.kt) / self.st + 1,
            (h - self.k) / self.s + 1,
            (w - self.k) / self.s + 1,
        )
    }
}

impl Layer for Conv3D {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 5, "Conv3D expects [batch, ch, t, h, w]");
        let (batch, c, t, h, w) = (
            x.shape()[0],
            x.shape()[1],
            x.shape()[2],
            x.shape()[3],
            x.shape()[4],
        );
        assert_eq!(c, self.in_ch);
        let (ot, oh, ow) = self.out_dims(t, h, w);
        let (f, kt, k, st, s) = (self.filters, self.kt, self.k, self.st, self.s);

        let xin = x.data();
        let wv = self.w.value.data();
        let bv = self.b.value.data();
        let mut out = vec![0.0f32; batch * f * ot * oh * ow];

        out.par_chunks_mut(f * ot * oh * ow)
            .enumerate()
            .for_each(|(bi, ob)| {
                let xb = &xin[bi * c * t * h * w..(bi + 1) * c * t * h * w];
                for fi in 0..f {
                    let wf = &wv[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                    let bias = bv[fi];
                    for oz in 0..ot {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = bias;
                                for ci in 0..c {
                                    for kz in 0..kt {
                                        let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                                        let woff = ci * kt * k * k + kz * k * k;
                                        for ky in 0..k {
                                            let row = zoff + (oy * s + ky) * w + ox * s;
                                            for kx in 0..k {
                                                acc += xb[row + kx] * wf[woff + ky * k + kx];
                                            }
                                        }
                                    }
                                }
                                ob[fi * ot * oh * ow + oz * oh * ow + oy * ow + ox] = acc;
                            }
                        }
                    }
                }
            });

        self.cache_x = Some(x.clone());
        Tensor::from_vec(&[batch, f, ot, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let (batch, c, t, h, w) = (
            x.shape()[0],
            x.shape()[1],
            x.shape()[2],
            x.shape()[3],
            x.shape()[4],
        );
        let (f, kt, k, st, s) = (self.filters, self.kt, self.k, self.st, self.s);
        let (ot, oh, ow) = self.out_dims(t, h, w);

        let xin = x.data();
        let gout = grad_out.data();
        let wv = self.w.value.data();
        let wlen = f * c * kt * k * k;

        let partials: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..batch)
            .into_par_iter()
            .map(|bi| {
                let xb = &xin[bi * c * t * h * w..(bi + 1) * c * t * h * w];
                let gb = &gout[bi * f * ot * oh * ow..(bi + 1) * f * ot * oh * ow];
                let mut dxb = vec![0.0f32; c * t * h * w];
                let mut dwb = vec![0.0f32; wlen];
                let mut dbb = vec![0.0f32; f];
                for fi in 0..f {
                    let gf = &gb[fi * ot * oh * ow..(fi + 1) * ot * oh * ow];
                    let wf = &wv[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                    let dwf = &mut dwb[fi * c * kt * k * k..(fi + 1) * c * kt * k * k];
                    for oz in 0..ot {
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let g = gf[oz * oh * ow + oy * ow + ox];
                                if g == 0.0 {
                                    continue;
                                }
                                dbb[fi] += g;
                                for ci in 0..c {
                                    for kz in 0..kt {
                                        let zoff = ci * t * h * w + (oz * st + kz) * h * w;
                                        let woff = ci * kt * k * k + kz * k * k;
                                        for ky in 0..k {
                                            let row = zoff + (oy * s + ky) * w + ox * s;
                                            for kx in 0..k {
                                                dwf[woff + ky * k + kx] += g * xb[row + kx];
                                                dxb[row + kx] += g * wf[woff + ky * k + kx];
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                (dxb, dwb, dbb)
            })
            .collect();

        let mut dx = vec![0.0f32; batch * c * t * h * w];
        {
            let dwg = self.w.grad.data_mut();
            let dbg = self.b.grad.data_mut();
            for (bi, (dxb, dwb, dbb)) in partials.into_iter().enumerate() {
                dx[bi * c * t * h * w..(bi + 1) * c * t * h * w].copy_from_slice(&dxb);
                for (a, b) in dwg.iter_mut().zip(&dwb) {
                    *a += b;
                }
                for (a, b) in dbg.iter_mut().zip(&dbb) {
                    *a += b;
                }
            }
        }
        Tensor::from_vec(&[batch, c, t, h, w], dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (ot, oh, ow) = self.out_dims(input_shape[2], input_shape[3], input_shape[4]);
        vec![input_shape[0], self.filters, ot, oh, ow]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let (ot, oh, ow) = self.out_dims(input_shape[2], input_shape[3], input_shape[4]);
        (2 * self.filters * self.in_ch * self.kt * self.k * self.k * ot * oh * ow) as u64
    }

    fn name(&self) -> String {
        format!(
            "Conv3D({}→{}, {}x{}x{}/{}x{})",
            self.in_ch, self.filters, self.kt, self.k, self.k, self.st, self.s
        )
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Conv3D {
            in_channels: self.in_ch,
            filters: self.filters,
            kernel_t: self.kt,
            kernel: self.k,
            stride_t: self.st,
            stride: self.s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn output_dims() {
        let mut rng = rng_from_seed(1);
        let conv = Conv3D::new(1, 4, 2, 3, 1, 2, &mut rng);
        assert_eq!(conv.output_shape(&[2, 1, 3, 9, 9]), vec![2, 4, 2, 4, 4]);
    }

    #[test]
    fn temporal_sum_kernel() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv3D::new(1, 1, 2, 1, 1, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 2, 1, 1], vec![1.0, 1.0]);
        conv.b.value.fill(0.0);
        // Two 1x1 frames of values 3 and 4 → single output 7.
        let x = Tensor::from_vec(&[1, 1, 2, 1, 1], vec![3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 1, 1, 1]);
        assert_eq!(y.data(), &[7.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(3);
        let mut conv = Conv3D::new(1, 2, 2, 2, 1, 1, &mut rng);
        let x = Tensor::randn(&[2, 1, 3, 4, 4], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 4e-2);
        gradcheck::check_param_grads(&mut conv, &x, 4e-2);
    }
}
