//! 1-D batch normalisation.

use super::{Layer, Param};
use crate::tensor::Tensor;

const EPS: f32 = 1e-5;

/// Batch norm over `[batch, features]`, normalising each feature across the
/// batch at train time and using running statistics at inference.
pub struct BatchNorm1d {
    pub gamma: Param,
    pub beta: Param,
    features: usize,
    momentum: f32,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    // Caches for backward.
    cache_xhat: Option<Tensor>,
    cache_inv_std: Vec<f32>,
}

impl BatchNorm1d {
    pub fn new(features: usize) -> BatchNorm1d {
        BatchNorm1d {
            gamma: Param::new(Tensor::full(&[features], 1.0)),
            beta: Param::new(Tensor::zeros(&[features])),
            features,
            momentum: 0.9,
            running_mean: vec![0.0; features],
            running_var: vec![1.0; features],
            cache_xhat: None,
            cache_inv_std: Vec::new(),
        }
    }
}

impl Layer for BatchNorm1d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        assert_eq!(x.rank(), 2, "BatchNorm1d expects [batch, features]");
        assert_eq!(x.shape()[1], self.features);
        let (batch, f) = (x.shape()[0], self.features);
        let xd = x.data();

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; f];
            let mut var = vec![0.0f32; f];
            for row in xd.chunks(f) {
                for (m, &v) in mean.iter_mut().zip(row) {
                    *m += v;
                }
            }
            for m in &mut mean {
                *m /= batch as f32; // cast: batch size is small, exact in f32
            }
            for row in xd.chunks(f) {
                for ((vv, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
                    *vv += (v - m) * (v - m);
                }
            }
            for v in &mut var {
                *v /= batch as f32; // cast: batch size is small, exact in f32
            }
            for j in 0..f {
                self.running_mean[j] =
                    self.momentum * self.running_mean[j] + (1.0 - self.momentum) * mean[j];
                self.running_var[j] =
                    self.momentum * self.running_var[j] + (1.0 - self.momentum) * var[j];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|&v| 1.0 / (v + EPS).sqrt()).collect();
        let g = self.gamma.value.data();
        let b = self.beta.value.data();
        let mut xhat = vec![0.0f32; batch * f];
        let mut out = vec![0.0f32; batch * f];
        for (i, row) in xd.chunks(f).enumerate() {
            for j in 0..f {
                let h = (row[j] - mean[j]) * inv_std[j];
                xhat[i * f + j] = h;
                out[i * f + j] = g[j] * h + b[j];
            }
        }
        self.cache_xhat = Some(Tensor::from_vec(&[batch, f], xhat));
        self.cache_inv_std = inv_std;
        Tensor::from_vec(&[batch, f], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let xhat = self.cache_xhat.as_ref().expect("backward before forward");
        let (batch, f) = (grad_out.shape()[0], self.features);
        let g = grad_out.data();
        let xh = xhat.data();
        let gamma = self.gamma.value.data();

        // Parameter grads.
        let mut dgamma = vec![0.0f32; f];
        let mut dbeta = vec![0.0f32; f];
        for i in 0..batch {
            for j in 0..f {
                dgamma[j] += g[i * f + j] * xh[i * f + j];
                dbeta[j] += g[i * f + j];
            }
        }
        for (a, b) in self.gamma.grad.data_mut().iter_mut().zip(&dgamma) {
            *a += b;
        }
        for (a, b) in self.beta.grad.data_mut().iter_mut().zip(&dbeta) {
            *a += b;
        }

        // dX via the standard batch-norm backward.
        let n = batch as f32; // cast: batch size is small, exact in f32
        let mut dx = vec![0.0f32; batch * f];
        for j in 0..f {
            let k = gamma[j] * self.cache_inv_std[j] / n;
            for i in 0..batch {
                dx[i * f + j] = k
                    * (n * g[i * f + j] - dbeta[j] - xh[i * f + j] * dgamma[j]);
            }
        }
        Tensor::from_vec(&[batch, f], dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops_per_example(&self, _input_shape: &[usize]) -> u64 {
        (8 * self.features) as u64
    }

    fn name(&self) -> String {
        format!("BatchNorm1d({})", self.features)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::BatchNorm1d {
            features: self.features,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn normalises_batch_statistics() {
        let mut rng = rng_from_seed(1);
        let mut bn = BatchNorm1d::new(3);
        let x = Tensor::randn(&[64, 3], 5.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, true);
        // Per-feature mean ~0, var ~1.
        for j in 0..3 {
            let col: Vec<f32> = (0..64).map(|i| y.data()[i * 3 + j]).collect();
            let mean: f32 = col.iter().sum::<f32>() / 64.0;
            let var: f32 = col.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn inference_uses_running_stats() {
        let mut rng = rng_from_seed(2);
        let mut bn = BatchNorm1d::new(2);
        // Train on shifted data for a while.
        for _ in 0..200 {
            let x = Tensor::randn(&[32, 2], 1.0, &mut rng).map(|v| v + 4.0);
            let _ = bn.forward(&x, true);
        }
        // Inference on the same distribution should be near standard.
        let x = Tensor::randn(&[256, 2], 1.0, &mut rng).map(|v| v + 4.0);
        let y = bn.forward(&x, false);
        assert!(y.mean().abs() < 0.2, "mean {}", y.mean());
    }

    #[test]
    fn gradcheck_batchnorm() {
        use crate::layers::gradcheck;
        let mut rng = rng_from_seed(3);
        let mut bn = BatchNorm1d::new(4);
        let x = Tensor::randn(&[8, 4], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut bn, &x, 5e-2);
        gradcheck::check_param_grads(&mut bn, &x, 5e-2);
    }
}
