//! Flatten all non-batch dimensions.

use super::Layer;
use crate::tensor::Tensor;

/// `[batch, ...] -> [batch, prod(...)]`.
pub struct Flatten {
    cache_in_shape: Vec<usize>,
}

impl Flatten {
    pub fn new() -> Flatten {
        Flatten {
            cache_in_shape: Vec::new(),
        }
    }
}

impl Default for Flatten {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cache_in_shape = x.shape().to_vec();
        x.reshape(&[x.dim0(), x.example_len()])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.reshape(&self.cache_in_shape)
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], input_shape[1..].iter().product()]
    }

    fn flops_per_example(&self, _input_shape: &[usize]) -> u64 {
        0
    }

    fn name(&self) -> String {
        "Flatten".to_string()
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Flatten
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_and_restores() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 3], (0..12).map(|i| i as f32).collect());
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 6]);
        let dx = f.backward(&y);
        assert_eq!(dx.shape(), &[2, 2, 3]);
        assert_eq!(dx.data(), x.data());
    }

    #[test]
    fn output_shape() {
        let f = Flatten::new();
        assert_eq!(f.output_shape(&[4, 3, 8, 8]), vec![4, 192]);
    }
}
