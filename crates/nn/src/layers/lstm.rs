//! LSTM over feature sequences.
//!
//! DonkeyCar's RNN model runs a time-distributed conv trunk over the last
//! few camera frames and feeds the per-frame features to an LSTM; the final
//! hidden state drives the steering/throttle heads. This layer consumes
//! `[batch, time, features]` and returns the last hidden state
//! `[batch, hidden]`, with full backpropagation-through-time.

use super::{Layer, Param};
use crate::init::{glorot_uniform, recurrent_init};
use crate::tensor::Tensor;
use rand::Rng;

struct StepCache {
    x: Tensor,      // [B, F]
    h_prev: Tensor, // [B, H]
    c_prev: Tensor, // [B, H]
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Single-layer LSTM, Keras gate order (i, f, g, o), returning the final
/// hidden state.
pub struct Lstm {
    pub w: Param, // input kernel  [F, 4H]
    pub u: Param, // recurrent     [H, 4H]
    pub b: Param, // bias          [4H]
    in_dim: usize,
    hidden: usize,
    cache: Vec<StepCache>,
}

impl Lstm {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Lstm {
        let mut b = Tensor::zeros(&[4 * hidden]);
        // Keras unit_forget_bias: forget gate biased open at init.
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        Lstm {
            w: Param::new(glorot_uniform(
                &[in_dim, 4 * hidden],
                in_dim,
                4 * hidden,
                rng,
            )),
            u: Param::new(recurrent_init(hidden, 4 * hidden, rng)),
            b: Param::new(b),
            in_dim,
            hidden,
            cache: Vec::new(),
        }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 3, "Lstm expects [batch, time, features]");
        let (batch, time, feat) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(feat, self.in_dim, "Lstm feature width");
        let h = self.hidden;

        self.cache.clear();
        let mut h_t = Tensor::zeros(&[batch, h]);
        let mut c_t = Tensor::zeros(&[batch, h]);

        for t in 0..time {
            // Slice x[:, t, :] -> [B, F].
            let mut xt = Tensor::zeros(&[batch, feat]);
            for bi in 0..batch {
                let src = &x.data()[(bi * time + t) * feat..(bi * time + t + 1) * feat];
                xt.data_mut()[bi * feat..(bi + 1) * feat].copy_from_slice(src);
            }

            let z = {
                let mut z = xt.matmul(&self.w.value);
                let zr = h_t.matmul(&self.u.value);
                z.add_scaled(&zr, 1.0);
                let bv = self.b.value.data();
                for row in z.data_mut().chunks_mut(4 * h) {
                    for (v, &bb) in row.iter_mut().zip(bv) {
                        *v += bb;
                    }
                }
                z
            };

            let mut iv = vec![0.0f32; batch * h];
            let mut fv = vec![0.0f32; batch * h];
            let mut gv = vec![0.0f32; batch * h];
            let mut ov = vec![0.0f32; batch * h];
            let mut c_next = Tensor::zeros(&[batch, h]);
            let mut h_next = Tensor::zeros(&[batch, h]);
            let mut tanh_c = vec![0.0f32; batch * h];
            for bi in 0..batch {
                let zr = &z.data()[bi * 4 * h..(bi + 1) * 4 * h];
                for j in 0..h {
                    let i_g = sigmoid(zr[j]);
                    let f_g = sigmoid(zr[h + j]);
                    let g_g = zr[2 * h + j].tanh();
                    let o_g = sigmoid(zr[3 * h + j]);
                    let c_new = f_g * c_t.data()[bi * h + j] + i_g * g_g;
                    let tc = c_new.tanh();
                    iv[bi * h + j] = i_g;
                    fv[bi * h + j] = f_g;
                    gv[bi * h + j] = g_g;
                    ov[bi * h + j] = o_g;
                    tanh_c[bi * h + j] = tc;
                    c_next.data_mut()[bi * h + j] = c_new;
                    h_next.data_mut()[bi * h + j] = o_g * tc;
                }
            }

            self.cache.push(StepCache {
                x: xt,
                h_prev: h_t.clone(),
                c_prev: c_t.clone(),
                i: iv,
                f: fv,
                g: gv,
                o: ov,
                tanh_c,
            });
            h_t = h_next;
            c_t = c_next;
        }
        h_t
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let time = self.cache.len();
        assert!(time > 0, "backward before forward");
        let batch = grad_out.shape()[0];
        let h = self.hidden;
        let f_dim = self.in_dim;

        let mut dh = grad_out.clone(); // [B, H]
        let mut dc = Tensor::zeros(&[batch, h]);
        let mut dx_all = Tensor::zeros(&[batch, time, f_dim]);

        for t in (0..time).rev() {
            let cache = &self.cache[t];
            let mut dz = Tensor::zeros(&[batch, 4 * h]);
            for bi in 0..batch {
                for j in 0..h {
                    let idx = bi * h + j;
                    let i_g = cache.i[idx];
                    let f_g = cache.f[idx];
                    let g_g = cache.g[idx];
                    let o_g = cache.o[idx];
                    let tc = cache.tanh_c[idx];
                    let dh_v = dh.data()[idx];

                    let do_ = dh_v * tc;
                    let dc_total = dc.data()[idx] + dh_v * o_g * (1.0 - tc * tc);
                    let di = dc_total * g_g;
                    let dg = dc_total * i_g;
                    let df = dc_total * cache.c_prev.data()[idx];
                    // Carry cell grad to t-1.
                    dc.data_mut()[idx] = dc_total * f_g;

                    let zr = &mut dz.data_mut()[bi * 4 * h..(bi + 1) * 4 * h];
                    zr[j] = di * i_g * (1.0 - i_g);
                    zr[h + j] = df * f_g * (1.0 - f_g);
                    zr[2 * h + j] = dg * (1.0 - g_g * g_g);
                    zr[3 * h + j] = do_ * o_g * (1.0 - o_g);
                }
            }

            // Parameter gradients.
            let dw = cache.x.transpose2().matmul(&dz);
            self.w.grad.add_scaled(&dw, 1.0);
            let du = cache.h_prev.transpose2().matmul(&dz);
            self.u.grad.add_scaled(&du, 1.0);
            {
                let db = self.b.grad.data_mut();
                for row in dz.data().chunks(4 * h) {
                    for (a, &g) in db.iter_mut().zip(row) {
                        *a += g;
                    }
                }
            }

            // Input gradient for this timestep.
            let dxt = dz.matmul(&self.w.value.transpose2());
            for bi in 0..batch {
                let dst = &mut dx_all.data_mut()
                    [(bi * time + t) * f_dim..(bi * time + t + 1) * f_dim];
                dst.copy_from_slice(&dxt.data()[bi * f_dim..(bi + 1) * f_dim]);
            }

            // Recurrent gradient to t-1's hidden state.
            dh = dz.matmul(&self.u.value.transpose2());
        }
        dx_all
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.u, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.hidden]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let t = input_shape[1] as u64;
        let f = self.in_dim as u64;
        let h = self.hidden as u64;
        // Per step: x·W (2·F·4H) + h·U (2·H·4H) + gate math (~10·H).
        t * (2 * f * 4 * h + 2 * h * 4 * h + 10 * h)
    }

    fn name(&self) -> String {
        format!("Lstm({}→{})", self.in_dim, self.hidden)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Lstm {
            input: self.in_dim,
            hidden: self.hidden,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn forward_shape() {
        let mut rng = rng_from_seed(1);
        let mut lstm = Lstm::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 5, 6], 1.0, &mut rng);
        let y = lstm.forward(&x, true);
        assert_eq!(y.shape(), &[3, 4]);
        // Hidden state bounded by tanh envelope.
        assert!(y.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(2);
        let mut lstm = Lstm::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut lstm, &x, 4e-2);
        gradcheck::check_param_grads(&mut lstm, &x, 4e-2);
    }

    #[test]
    fn longer_history_changes_output() {
        let mut rng = rng_from_seed(3);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x1 = Tensor::full(&[1, 1, 2], 0.5);
        let x3 = Tensor::full(&[1, 3, 2], 0.5);
        let y1 = lstm.forward(&x1, false);
        let y3 = lstm.forward(&x3, false);
        let diff: f32 = y1
            .data()
            .iter()
            .zip(y3.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "state must integrate over time");
    }

    #[test]
    fn forget_bias_initialised_open() {
        let mut rng = rng_from_seed(4);
        let lstm = Lstm::new(2, 3, &mut rng);
        for j in 3..6 {
            assert_eq!(lstm.b.value.data()[j], 1.0);
        }
        assert_eq!(lstm.b.value.data()[0], 0.0);
    }
}
