//! LSTM over feature sequences.
//!
//! DonkeyCar's RNN model runs a time-distributed conv trunk over the last
//! few camera frames and feeds the per-frame features to an LSTM; the final
//! hidden state drives the steering/throttle heads. This layer consumes
//! `[batch, time, features]` and returns the last hidden state
//! `[batch, hidden]`, with full backpropagation-through-time.
//!
//! All gate math runs through the blocked GEMM in [`crate::kernels`]: the
//! pre-activation `z = x·W + h·U + b` is two GEMM calls per step, and the
//! BPTT parameter/input/recurrent gradients are one accumulating GEMM each.
//! Step caches and staging buffers are plain `Vec<f32>`s reused across
//! steps and across calls, so steady-state training allocates nothing here.

use super::{Layer, Param};
use crate::init::{glorot_uniform, recurrent_init};
use crate::kernels::{self, Scratch};
use crate::tensor::Tensor;
use rand::Rng;

/// Per-timestep cache, with buffers reused across forward calls (resize is
/// capacity-preserving, so a steady batch shape never reallocates).
#[derive(Default)]
struct StepCache {
    x: Vec<f32>,      // [B, F]
    h_prev: Vec<f32>, // [B, H]
    c_prev: Vec<f32>, // [B, H]
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    tanh_c: Vec<f32>,
}

impl StepCache {
    fn resize(&mut self, bf: usize, bh: usize) {
        self.x.resize(bf, 0.0);
        self.h_prev.resize(bh, 0.0);
        self.c_prev.resize(bh, 0.0);
        self.i.resize(bh, 0.0);
        self.f.resize(bh, 0.0);
        self.g.resize(bh, 0.0);
        self.o.resize(bh, 0.0);
        self.tanh_c.resize(bh, 0.0);
    }

    fn bytes(&self) -> usize {
        (self.x.len() + self.h_prev.len() + self.c_prev.len() + 5 * self.i.len())
            * std::mem::size_of::<f32>()
    }
}

/// Single-layer LSTM, Keras gate order (i, f, g, o), returning the final
/// hidden state.
pub struct Lstm {
    pub w: Param, // input kernel  [F, 4H]
    pub u: Param, // recurrent     [H, 4H]
    pub b: Param, // bias          [4H]
    in_dim: usize,
    hidden: usize,
    cache: Vec<StepCache>,
    cache_steps: usize,
    scratch: Scratch,
}

impl Lstm {
    pub fn new(in_dim: usize, hidden: usize, rng: &mut impl Rng) -> Lstm {
        let mut b = Tensor::zeros(&[4 * hidden]);
        // Keras unit_forget_bias: forget gate biased open at init.
        for j in hidden..2 * hidden {
            b.data_mut()[j] = 1.0;
        }
        Lstm {
            w: Param::new(glorot_uniform(
                &[in_dim, 4 * hidden],
                in_dim,
                4 * hidden,
                rng,
            )),
            u: Param::new(recurrent_init(hidden, 4 * hidden, rng)),
            b: Param::new(b),
            in_dim,
            hidden,
            cache: Vec::new(),
            cache_steps: 0,
            scratch: Scratch::new(),
        }
    }

    pub fn hidden(&self) -> usize {
        self.hidden
    }
}

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

impl Layer for Lstm {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 3, "Lstm expects [batch, time, features]");
        let (batch, time, feat) = (x.shape()[0], x.shape()[1], x.shape()[2]);
        assert_eq!(feat, self.in_dim, "Lstm feature width");
        let h = self.hidden;

        // Pre-size every reused buffer before the hot loop: the step-cache
        // list grows only on the first call (or a longer sequence).
        while self.cache.len() < time {
            self.cache.push(StepCache::default());
        }
        for sc in self.cache.iter_mut().take(time) {
            sc.resize(batch * feat, batch * h);
        }
        self.cache_steps = time;
        let mut out = Tensor::zeros(&[batch, h]);
        let (z, h_t, c_t) = self.scratch.get3(batch * 4 * h, batch * h, batch * h);
        h_t.fill(0.0);
        c_t.fill(0.0);
        let xin = x.data();
        let wv = self.w.value.data();
        let uv = self.u.value.data();
        let bv = self.b.value.data();

        // hot-kernel: begin (LSTM forward GEMMs + gate math, alloc-free)
        for (t, sc) in self.cache.iter_mut().take(time).enumerate() {
            // Stage x[:, t, :] contiguously for the GEMM.
            for bi in 0..batch {
                let src = &xin[(bi * time + t) * feat..(bi * time + t + 1) * feat];
                sc.x[bi * feat..(bi + 1) * feat].copy_from_slice(src);
            }
            sc.h_prev.copy_from_slice(h_t);
            sc.c_prev.copy_from_slice(c_t);
            // z = x_t · W + h_{t-1} · U + b
            kernels::gemm(z, false, &sc.x, false, wv, false, batch, feat, 4 * h);
            kernels::gemm(z, true, &sc.h_prev, false, uv, false, batch, h, 4 * h);
            for row in z.chunks_mut(4 * h) {
                for (v, &bb) in row.iter_mut().zip(bv) {
                    *v += bb;
                }
            }
            for bi in 0..batch {
                let zr = &z[bi * 4 * h..(bi + 1) * 4 * h];
                for j in 0..h {
                    let idx = bi * h + j;
                    let i_g = sigmoid(zr[j]);
                    let f_g = sigmoid(zr[h + j]);
                    let g_g = zr[2 * h + j].tanh();
                    let o_g = sigmoid(zr[3 * h + j]);
                    let c_new = f_g * c_t[idx] + i_g * g_g;
                    let tc = c_new.tanh();
                    sc.i[idx] = i_g;
                    sc.f[idx] = f_g;
                    sc.g[idx] = g_g;
                    sc.o[idx] = o_g;
                    sc.tanh_c[idx] = tc;
                    c_t[idx] = c_new;
                    h_t[idx] = o_g * tc;
                }
            }
        }
        // hot-kernel: end

        out.data_mut().copy_from_slice(h_t);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let time = self.cache_steps;
        assert!(time > 0, "backward before forward");
        let batch = grad_out.shape()[0];
        let h = self.hidden;
        let f_dim = self.in_dim;

        let mut dx_all = Tensor::zeros(&[batch, time, f_dim]);
        let dxv = dx_all.data_mut();
        let (dz, dh, dc, dxt) = self.scratch.get4(
            batch * 4 * h,
            batch * h,
            batch * h,
            batch * f_dim,
        );
        dh.copy_from_slice(grad_out.data());
        dc.fill(0.0);
        let wv = self.w.value.data();
        let uv = self.u.value.data();
        let dwv = self.w.grad.data_mut();
        let duv = self.u.grad.data_mut();
        let dbv = self.b.grad.data_mut();

        // hot-kernel: begin (BPTT gate math + GEMMs, alloc-free)
        for t in (0..time).rev() {
            let sc = &self.cache[t];
            for bi in 0..batch {
                let zr = &mut dz[bi * 4 * h..(bi + 1) * 4 * h];
                for j in 0..h {
                    let idx = bi * h + j;
                    let i_g = sc.i[idx];
                    let f_g = sc.f[idx];
                    let g_g = sc.g[idx];
                    let o_g = sc.o[idx];
                    let tc = sc.tanh_c[idx];
                    let dh_v = dh[idx];

                    let do_ = dh_v * tc;
                    let dc_total = dc[idx] + dh_v * o_g * (1.0 - tc * tc);
                    let di = dc_total * g_g;
                    let dg = dc_total * i_g;
                    let df = dc_total * sc.c_prev[idx];
                    // Carry cell grad to t-1.
                    dc[idx] = dc_total * f_g;

                    zr[j] = di * i_g * (1.0 - i_g);
                    zr[h + j] = df * f_g * (1.0 - f_g);
                    zr[2 * h + j] = dg * (1.0 - g_g * g_g);
                    zr[3 * h + j] = do_ * o_g * (1.0 - o_g);
                }
            }

            // dW += x_tᵀ · dz, dU += h_{t-1}ᵀ · dz, db += column sums.
            kernels::gemm(dwv, true, &sc.x, true, dz, false, f_dim, batch, 4 * h);
            kernels::gemm(duv, true, &sc.h_prev, true, dz, false, h, batch, 4 * h);
            for row in dz.chunks(4 * h) {
                for (a, &g) in dbv.iter_mut().zip(row) {
                    *a += g;
                }
            }

            // Input gradient for this timestep: dx_t = dz · Wᵀ.
            kernels::gemm(dxt, false, dz, false, wv, true, batch, 4 * h, f_dim);
            for bi in 0..batch {
                let dst = &mut dxv[(bi * time + t) * f_dim..(bi * time + t + 1) * f_dim];
                dst.copy_from_slice(&dxt[bi * f_dim..(bi + 1) * f_dim]);
            }

            // Recurrent gradient to t-1's hidden state: dh = dz · Uᵀ.
            kernels::gemm(dh, false, dz, false, uv, true, batch, 4 * h, h);
        }
        // hot-kernel: end

        dx_all
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.u, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape[0], self.hidden]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let t = input_shape[1] as u64;
        let f = self.in_dim as u64;
        let h = self.hidden as u64;
        // Per step: x·W (2·F·4H) + h·U (2·H·4H) + gate math (~10·H).
        t * (2 * f * 4 * h + 2 * h * 4 * h + 10 * h)
    }

    fn scratch_bytes(&self) -> usize {
        self.scratch.bytes() + self.cache.iter().map(StepCache::bytes).sum::<usize>()
    }

    fn name(&self) -> String {
        format!("Lstm({}→{})", self.in_dim, self.hidden)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Lstm {
            input: self.in_dim,
            hidden: self.hidden,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn forward_shape() {
        let mut rng = rng_from_seed(1);
        let mut lstm = Lstm::new(6, 4, &mut rng);
        let x = Tensor::randn(&[3, 5, 6], 1.0, &mut rng);
        let y = lstm.forward(&x, true);
        assert_eq!(y.shape(), &[3, 4]);
        // Hidden state bounded by tanh envelope.
        assert!(y.data().iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(2);
        let mut lstm = Lstm::new(3, 2, &mut rng);
        let x = Tensor::randn(&[2, 3, 3], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut lstm, &x, 4e-2);
        gradcheck::check_param_grads(&mut lstm, &x, 4e-2);
    }

    #[test]
    fn longer_history_changes_output() {
        let mut rng = rng_from_seed(3);
        let mut lstm = Lstm::new(2, 3, &mut rng);
        let x1 = Tensor::full(&[1, 1, 2], 0.5);
        let x3 = Tensor::full(&[1, 3, 2], 0.5);
        let y1 = lstm.forward(&x1, false);
        let y3 = lstm.forward(&x3, false);
        let diff: f32 = y1
            .data()
            .iter()
            .zip(y3.data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-4, "state must integrate over time");
    }

    #[test]
    fn forget_bias_initialised_open() {
        let mut rng = rng_from_seed(4);
        let lstm = Lstm::new(2, 3, &mut rng);
        for j in 3..6 {
            assert_eq!(lstm.b.value.data()[j], 1.0);
        }
        assert_eq!(lstm.b.value.data()[0], 0.0);
    }

    #[test]
    fn scratch_is_stable_across_steps() {
        let mut rng = rng_from_seed(5);
        let mut lstm = Lstm::new(4, 3, &mut rng);
        let x = Tensor::randn(&[2, 4, 4], 1.0, &mut rng);
        let y = lstm.forward(&x, true);
        let _ = lstm.backward(&y);
        let bytes = lstm.scratch_bytes();
        assert!(bytes > 0);
        for _ in 0..3 {
            let y = lstm.forward(&x, true);
            let _ = lstm.backward(&y);
            assert_eq!(lstm.scratch_bytes(), bytes, "steady-state must not grow");
        }
    }
}
