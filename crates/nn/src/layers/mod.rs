//! Layer trait and the layer zoo.
//!
//! Each layer owns its parameters and their gradient accumulators, caches
//! whatever it needs during `forward`, and implements an explicit `backward`
//! that (a) accumulates parameter gradients and (b) returns the gradient
//! with respect to its input. There is no tape/autograd: the model graphs in
//! this reproduction are small and static, and explicit backward passes keep
//! the hot loops allocation-light and easy to validate with finite
//! differences.

mod batchnorm;
mod conv2d;
mod conv3d;
mod dense;
mod dropout;
mod flatten;
mod lstm;
mod pool;
mod timedistributed;

pub use batchnorm::BatchNorm1d;
pub use conv2d::Conv2D;
pub use conv3d::Conv3D;
pub use dense::Dense;
pub use dropout::Dropout;
pub use flatten::Flatten;
pub use lstm::Lstm;
pub use pool::MaxPool2D;
pub use timedistributed::TimeDistributed;

use crate::tensor::Tensor;
pub use autolearn_analyze::graph::LayerSpec;
use serde::{Deserialize, Serialize};

/// A trainable parameter: value plus gradient accumulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    pub value: Tensor,
    pub grad: Tensor,
}

impl Param {
    pub fn new(value: Tensor) -> Param {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }
}

/// A differentiable layer.
pub trait Layer: Send {
    /// Forward pass. `train` enables stochastic behaviour (dropout) and
    /// batch-statistic updates (batch norm).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Backward pass for the most recent `forward`. Accumulates parameter
    /// gradients and returns dLoss/dInput.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Mutable access to parameters (empty for stateless layers).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Zero all gradient accumulators.
    fn zero_grads(&mut self) {
        for p in self.params_mut() {
            p.grad.fill(0.0);
        }
    }

    /// Output shape for a given input shape (excluding any batch semantics —
    /// shapes here include the batch dimension and the layer must preserve
    /// position 0).
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Floating-point operations per *example* for one forward pass.
    fn flops_per_example(&self, input_shape: &[usize]) -> u64;

    /// Human-readable layer name for summaries.
    fn name(&self) -> String;

    /// Number of trainable scalars.
    fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.value.len()).sum()
    }

    /// Bytes of reusable scratch storage (im2col buffers, activation
    /// caches, gradient staging) this layer currently holds. Scratch is
    /// grow-only and keyed by batch shape, so in steady-state training the
    /// value is constant — the arena-reuse tests pin exactly that.
    fn scratch_bytes(&self) -> usize {
        0
    }

    /// Symbolic description of this layer for the static graph validator
    /// ([`autolearn_analyze::graph::validate_model`]).
    fn spec(&self) -> LayerSpec;
}

/// Element-wise activation functions as a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    Relu,
    Tanh,
    Sigmoid,
    /// Identity; useful as a placeholder head activation.
    Linear,
}

/// Activation layer with cached output (tanh/sigmoid derivatives are
/// functions of the output; relu keeps a mask via the cached input sign).
pub struct ActivationLayer {
    pub kind: Activation,
    cache: Option<Tensor>,
}

impl ActivationLayer {
    pub fn new(kind: Activation) -> Self {
        ActivationLayer { kind, cache: None }
    }
}

impl Activation {
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Linear => x,
        }
    }

    /// Derivative expressed in terms of the *output* y = f(x).
    pub fn derivative_from_output(self, y: f32) -> f32 {
        match self {
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Linear => 1.0,
        }
    }
}

impl Layer for ActivationLayer {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let out = x.map(|v| self.kind.apply(v));
        self.cache = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let y = self.cache.as_ref().expect("backward before forward");
        grad_out.zip(y, |g, yv| g * self.kind.derivative_from_output(yv))
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        // One transcendental ≈ a handful of flops; count 4 per element.
        4 * input_shape[1..].iter().product::<usize>() as u64
    }

    fn name(&self) -> String {
        format!("{:?}", self.kind)
    }

    fn spec(&self) -> LayerSpec {
        LayerSpec::Activation {
            kind: format!("{:?}", self.kind).to_lowercase(),
        }
    }
}

#[cfg(test)]
pub(crate) mod gradcheck {
    //! Finite-difference gradient checking shared by layer tests.

    use super::*;

    /// Check dLoss/dInput of `layer` at input `x` against central
    /// differences of loss = 0.5 * sum(out^2) (whose upstream gradient is
    /// simply `out`).
    pub fn check_input_grad(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        let out = layer.forward(x, true);
        let analytic = layer.backward(&out);

        let eps = 1e-2f32;
        let n = x.len().min(24); // sample the first few elements
        for i in 0..n {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let lp = half_sq(&replay(layer, &xp));
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lm = half_sq(&replay(layer, &xm));
            let numeric = (lp - lm) / (2.0 * eps);
            let a = analytic.data()[i];
            assert!(
                (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                "input grad [{i}]: analytic {a} vs numeric {numeric}"
            );
        }
        // Restore caches for any subsequent use.
        let _ = layer.forward(x, true);
    }

    /// Check parameter gradients the same way.
    pub fn check_param_grads(layer: &mut dyn Layer, x: &Tensor, tol: f32) {
        layer.zero_grads();
        let out = layer.forward(x, true);
        let _ = layer.backward(&out);
        let analytic: Vec<Vec<f32>> = layer
            .params_mut()
            .iter()
            .map(|p| p.grad.data().to_vec())
            .collect();

        let eps = 1e-2f32;
        let n_params = analytic.len();
        for pi in 0..n_params {
            let plen = layer.params_mut()[pi].value.len();
            for i in 0..plen.min(16) {
                let orig = layer.params_mut()[pi].value.data()[i];
                layer.params_mut()[pi].value.data_mut()[i] = orig + eps;
                let lp = half_sq(&replay(layer, x));
                layer.params_mut()[pi].value.data_mut()[i] = orig - eps;
                let lm = half_sq(&replay(layer, x));
                layer.params_mut()[pi].value.data_mut()[i] = orig;
                let numeric = (lp - lm) / (2.0 * eps);
                let a = analytic[pi][i];
                assert!(
                    (a - numeric).abs() < tol * (1.0 + numeric.abs()),
                    "param {pi} grad [{i}]: analytic {a} vs numeric {numeric}"
                );
            }
        }
        let _ = layer.forward(x, true);
    }

    fn replay(layer: &mut dyn Layer, x: &Tensor) -> Tensor {
        layer.forward(x, true)
    }

    fn half_sq(t: &Tensor) -> f32 {
        0.5 * t.data().iter().map(|v| v * v).sum::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn activation_values() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-6);
        assert!((Activation::Tanh.apply(0.0)).abs() < 1e-6);
        assert_eq!(Activation::Linear.apply(3.5), 3.5);
    }

    #[test]
    fn activation_derivatives_match_finite_difference() {
        for kind in [
            Activation::Relu,
            Activation::Tanh,
            Activation::Sigmoid,
            Activation::Linear,
        ] {
            for &x in &[-1.5f32, -0.3, 0.4, 2.0] {
                let eps = 1e-3;
                let numeric = (kind.apply(x + eps) - kind.apply(x - eps)) / (2.0 * eps);
                let y = kind.apply(x);
                let analytic = kind.derivative_from_output(y);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{kind:?} at {x}: {analytic} vs {numeric}"
                );
            }
        }
    }

    #[test]
    fn activation_layer_backward() {
        let mut layer = ActivationLayer::new(Activation::Tanh);
        let x = Tensor::from_vec(&[2, 3], vec![-1.0, -0.5, 0.0, 0.5, 1.0, 2.0]);
        gradcheck::check_input_grad(&mut layer, &x, 2e-2);
    }

    #[test]
    fn activation_layer_shape_passthrough() {
        let layer = ActivationLayer::new(Activation::Relu);
        assert_eq!(layer.output_shape(&[4, 3, 8, 8]), vec![4, 3, 8, 8]);
    }

    #[test]
    fn param_grad_starts_zeroed() {
        let p = Param::new(Tensor::full(&[3], 2.0));
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
    }
}
