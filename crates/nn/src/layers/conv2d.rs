//! 2-D convolution (valid padding, square stride), CHW layout.

use super::{Layer, Param};
use crate::init::glorot_uniform;
use crate::tensor::Tensor;
use rand::Rng;
use rayon::prelude::*;

/// Convolution over `[batch, in_ch, H, W]` with kernel
/// `[filters, in_ch, k, k]` and stride `s` (valid padding), producing
/// `[batch, filters, OH, OW]`.
pub struct Conv2D {
    pub w: Param,
    pub b: Param,
    in_ch: usize,
    filters: usize,
    k: usize,
    stride: usize,
    cache_x: Option<Tensor>,
}

impl Conv2D {
    pub fn new(in_ch: usize, filters: usize, k: usize, stride: usize, rng: &mut impl Rng) -> Conv2D {
        assert!(k >= 1 && stride >= 1);
        let fan_in = in_ch * k * k;
        let fan_out = filters * k * k;
        Conv2D {
            w: Param::new(glorot_uniform(
                &[filters, in_ch, k, k],
                fan_in,
                fan_out,
                rng,
            )),
            b: Param::new(Tensor::zeros(&[filters])),
            in_ch,
            filters,
            k,
            stride,
            cache_x: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.k && w >= self.k,
            "input {h}x{w} smaller than kernel {}",
            self.k
        );
        ((h - self.k) / self.stride + 1, (w - self.k) / self.stride + 1)
    }
}

impl Layer for Conv2D {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 4, "Conv2D expects [batch, ch, h, w]");
        let (batch, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2D channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let (f, k, s) = (self.filters, self.k, self.stride);

        let mut out = vec![0.0f32; batch * f * oh * ow];
        let xin = x.data();
        let wv = self.w.value.data();
        let bv = self.b.value.data();
        debug_assert_eq!(xin.len(), batch * c * h * w, "Conv2D input data/shape mismatch");
        debug_assert_eq!(wv.len(), f * c * k * k, "Conv2D weight data/shape mismatch");
        debug_assert_eq!(bv.len(), f, "Conv2D bias data/shape mismatch");
        crate::tensor::debug_check_finite("Conv2D input", xin);
        crate::tensor::debug_check_finite("Conv2D weights", wv);

        out.par_chunks_mut(f * oh * ow).enumerate().for_each(|(bi, ob)| {
            let xb = &xin[bi * c * h * w..(bi + 1) * c * h * w];
            for fi in 0..f {
                let wf = &wv[fi * c * k * k..(fi + 1) * c * k * k];
                let bias = bv[fi];
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias;
                        for ci in 0..c {
                            let xc = &xb[ci * h * w..(ci + 1) * h * w];
                            let wc = &wf[ci * k * k..(ci + 1) * k * k];
                            for ky in 0..k {
                                let row = (oy * s + ky) * w + ox * s;
                                let xr = &xc[row..row + k];
                                let wr = &wc[ky * k..ky * k + k];
                                for (xv, wvv) in xr.iter().zip(wr) {
                                    acc += xv * wvv;
                                }
                            }
                        }
                        ob[fi * oh * ow + oy * ow + ox] = acc;
                    }
                }
            }
        });

        self.cache_x = Some(x.clone());
        Tensor::from_vec(&[batch, f, oh, ow], out)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        let (batch, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        let (f, k, s) = (self.filters, self.k, self.stride);
        let (oh, ow) = self.out_hw(h, w);
        assert_eq!(grad_out.shape(), &[batch, f, oh, ow]);

        let xin = x.data();
        let gout = grad_out.data();
        let wv = self.w.value.data();
        let wlen = f * c * k * k;

        // Per-batch partials computed in parallel, reduced at the end:
        // (dx for the example, dw partial, db partial).
        let partials: Vec<(Vec<f32>, Vec<f32>, Vec<f32>)> = (0..batch)
            .into_par_iter()
            .map(|bi| {
                let xb = &xin[bi * c * h * w..(bi + 1) * c * h * w];
                let gb = &gout[bi * f * oh * ow..(bi + 1) * f * oh * ow];
                let mut dxb = vec![0.0f32; c * h * w];
                let mut dwb = vec![0.0f32; wlen];
                let mut dbb = vec![0.0f32; f];
                for fi in 0..f {
                    let gf = &gb[fi * oh * ow..(fi + 1) * oh * ow];
                    let wf = &wv[fi * c * k * k..(fi + 1) * c * k * k];
                    let dwf = &mut dwb[fi * c * k * k..(fi + 1) * c * k * k];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let g = gf[oy * ow + ox];
                            if g == 0.0 {
                                continue;
                            }
                            dbb[fi] += g;
                            for ci in 0..c {
                                let xoff = ci * h * w;
                                let woff = ci * k * k;
                                for ky in 0..k {
                                    let irow = (oy * s + ky) * w + ox * s;
                                    for kx in 0..k {
                                        dwf[woff + ky * k + kx] += g * xb[xoff + irow + kx];
                                        dxb[xoff + irow + kx] += g * wf[woff + ky * k + kx];
                                    }
                                }
                            }
                        }
                    }
                }
                (dxb, dwb, dbb)
            })
            .collect();

        let mut dx = vec![0.0f32; batch * c * h * w];
        {
            let dwg = self.w.grad.data_mut();
            let dbg = self.b.grad.data_mut();
            for (bi, (dxb, dwb, dbb)) in partials.into_iter().enumerate() {
                dx[bi * c * h * w..(bi + 1) * c * h * w].copy_from_slice(&dxb);
                for (a, b) in dwg.iter_mut().zip(&dwb) {
                    *a += b;
                }
                for (a, b) in dbg.iter_mut().zip(&dbb) {
                    *a += b;
                }
            }
        }
        Tensor::from_vec(&[batch, c, h, w], dx)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], self.filters, oh, ow]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        // 2 flops per MAC over every output element's receptive field.
        (2 * self.filters * self.in_ch * self.k * self.k * oh * ow) as u64
    }

    fn name(&self) -> String {
        format!(
            "Conv2D({}→{}, {}x{}/{})",
            self.in_ch, self.filters, self.k, self.k, self.stride
        )
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Conv2D {
            in_channels: self.in_ch,
            filters: self.filters,
            kernel: self.k,
            stride: self.stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn identity_kernel_passthrough() {
        let mut rng = rng_from_seed(1);
        let mut conv = Conv2D::new(1, 1, 1, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        conv.b.value.fill(0.0);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv2D::new(1, 1, 2, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        conv.b.value = Tensor::from_vec(&[1], vec![0.5]);
        // 3x3 input, 2x2 kernel picking main diagonal + bias.
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[1. + 5. + 0.5, 2. + 6. + 0.5, 4. + 8. + 0.5, 5. + 9. + 0.5]);
    }

    #[test]
    fn stride_reduces_output() {
        let mut rng = rng_from_seed(3);
        let conv = Conv2D::new(3, 8, 3, 2, &mut rng);
        assert_eq!(conv.output_shape(&[2, 3, 11, 15]), vec![2, 8, 5, 7]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(4);
        let mut conv = Conv2D::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::randn(&[2, 2, 7, 7], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 3e-2);
        gradcheck::check_param_grads(&mut conv, &x, 3e-2);
    }

    #[test]
    fn flops_counts_macs() {
        let mut rng = rng_from_seed(5);
        let conv = Conv2D::new(1, 1, 2, 1, &mut rng);
        // 2x2 output, 2x2 kernel, 1 channel: 2*1*1*4*4 = 32.
        assert_eq!(conv.flops_per_example(&[1, 1, 3, 3]), 32);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn rejects_too_small_input() {
        let mut rng = rng_from_seed(6);
        let mut conv = Conv2D::new(1, 1, 5, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 1, 3, 3]), false);
    }
}
