//! 2-D convolution (valid padding, square stride), CHW layout.
//!
//! Forward and backward are lowered onto the blocked GEMM in
//! [`crate::kernels`] via im2col/col2im: per example, the input is unrolled
//! into a `[c*k*k, oh*ow]` column matrix once, after which
//!
//! * forward is `W[f, c*k*k] · cols` plus a bias broadcast,
//! * `dw` is `g[f, oh*ow] · colsᵀ` accumulated over the batch,
//! * `dx` is `Wᵀ · g` scattered back through col2im.
//!
//! The column matrices live in a per-layer [`Scratch`] arena: they are
//! allocated once per (layer, batch-shape) and reused every step, and they
//! double as the backward cache — the layer no longer clones its input on
//! every forward.

use super::{Layer, Param};
use crate::init::glorot_uniform;
use crate::kernels::{self, Scratch};
use crate::tensor::Tensor;
use rand::Rng;

/// Convolution over `[batch, in_ch, H, W]` with kernel
/// `[filters, in_ch, k, k]` and stride `s` (valid padding), producing
/// `[batch, filters, OH, OW]`.
pub struct Conv2D {
    pub w: Param,
    pub b: Param,
    in_ch: usize,
    filters: usize,
    k: usize,
    stride: usize,
    scratch: Scratch,
    cache_in_shape: Option<[usize; 4]>,
}

impl Conv2D {
    pub fn new(in_ch: usize, filters: usize, k: usize, stride: usize, rng: &mut impl Rng) -> Conv2D {
        assert!(k >= 1 && stride >= 1);
        let fan_in = in_ch * k * k;
        let fan_out = filters * k * k;
        Conv2D {
            w: Param::new(glorot_uniform(
                &[filters, in_ch, k, k],
                fan_in,
                fan_out,
                rng,
            )),
            b: Param::new(Tensor::zeros(&[filters])),
            in_ch,
            filters,
            k,
            stride,
            scratch: Scratch::new(),
            cache_in_shape: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h >= self.k && w >= self.k,
            "input {h}x{w} smaller than kernel {}",
            self.k
        );
        ((h - self.k) / self.stride + 1, (w - self.k) / self.stride + 1)
    }
}

impl Layer for Conv2D {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        assert_eq!(x.rank(), 4, "Conv2D expects [batch, ch, h, w]");
        let (batch, c, h, w) = (x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]);
        assert_eq!(c, self.in_ch, "Conv2D channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let (f, k, s) = (self.filters, self.k, self.stride);
        let (ckk, ohow) = (c * k * k, oh * ow);

        let xin = x.data();
        debug_assert_eq!(xin.len(), batch * c * h * w, "Conv2D input data/shape mismatch");
        debug_assert_eq!(self.w.value.len(), f * ckk, "Conv2D weight data/shape mismatch");
        debug_assert_eq!(self.b.value.len(), f, "Conv2D bias data/shape mismatch");
        crate::tensor::debug_check_finite("Conv2D input", xin);
        crate::tensor::debug_check_finite("Conv2D weights", self.w.value.data());

        let mut out = Tensor::zeros(&[batch, f, oh, ow]);
        let ov = out.data_mut();
        // The whole batch's im2col matrices are kept for backward (dw needs
        // them); the arena reuses the same storage every step.
        let cols = self.scratch.get1(batch * ckk * ohow);
        let wv = self.w.value.data();
        let bv = self.b.value.data();

        // hot-kernel: begin (im2col + GEMM forward, alloc-free)
        for bi in 0..batch {
            let xb = &xin[bi * c * h * w..(bi + 1) * c * h * w];
            let cb = &mut cols[bi * ckk * ohow..(bi + 1) * ckk * ohow];
            kernels::im2col2d(xb, c, h, w, k, s, oh, ow, cb);
            let ob = &mut ov[bi * f * ohow..(bi + 1) * f * ohow];
            kernels::gemm(ob, false, wv, false, cb, false, f, ckk, ohow);
            for fi in 0..f {
                let bias = bv[fi];
                for o in &mut ob[fi * ohow..(fi + 1) * ohow] {
                    *o += bias;
                }
            }
        }
        // hot-kernel: end

        self.cache_in_shape = Some([batch, c, h, w]);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let [batch, c, h, w] = self.cache_in_shape.expect("backward before forward");
        let (f, k, s) = (self.filters, self.k, self.stride);
        let (oh, ow) = self.out_hw(h, w);
        let (ckk, ohow) = (c * k * k, oh * ow);
        assert_eq!(grad_out.shape(), &[batch, f, oh, ow]);

        let gout = grad_out.data();
        let mut dx = Tensor::zeros(&[batch, c, h, w]);
        let dxv = dx.data_mut();
        // Slot 0 still holds the forward's im2col matrices; slot 1 stages
        // one example's input-gradient columns before the col2im scatter.
        let (cols, dcols) = self.scratch.get2(batch * ckk * ohow, ckk * ohow);
        let wv = self.w.value.data();
        let dwv = self.w.grad.data_mut();
        let dbv = self.b.grad.data_mut();

        // hot-kernel: begin (GEMM backward + col2im, alloc-free)
        for bi in 0..batch {
            let gb = &gout[bi * f * ohow..(bi + 1) * f * ohow];
            let cb = &cols[bi * ckk * ohow..(bi + 1) * ckk * ohow];
            // dw += g · colsᵀ
            kernels::gemm(dwv, true, gb, false, cb, true, f, ohow, ckk);
            // db += row sums of g
            for fi in 0..f {
                let mut acc = 0.0;
                for &g in &gb[fi * ohow..(fi + 1) * ohow] {
                    acc += g;
                }
                dbv[fi] += acc;
            }
            // dcols = Wᵀ · g, scattered back into dx
            kernels::gemm(dcols, false, wv, true, gb, false, ckk, f, ohow);
            let dxb = &mut dxv[bi * c * h * w..(bi + 1) * c * h * w];
            kernels::col2im2d(dcols, c, h, w, k, s, oh, ow, dxb);
        }
        // hot-kernel: end

        dx
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        vec![input_shape[0], self.filters, oh, ow]
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        let (oh, ow) = self.out_hw(input_shape[2], input_shape[3]);
        // 2 flops per MAC over every output element's receptive field.
        (2 * self.filters * self.in_ch * self.k * self.k * oh * ow) as u64
    }

    fn scratch_bytes(&self) -> usize {
        self.scratch.bytes()
    }

    fn name(&self) -> String {
        format!(
            "Conv2D({}→{}, {}x{}/{})",
            self.in_ch, self.filters, self.k, self.k, self.stride
        )
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Conv2D {
            in_channels: self.in_ch,
            filters: self.filters,
            kernel: self.k,
            stride: self.stride,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::gradcheck;
    use autolearn_util::rng::rng_from_seed;

    #[test]
    fn identity_kernel_passthrough() {
        let mut rng = rng_from_seed(1);
        let mut conv = Conv2D::new(1, 1, 1, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 1, 1], vec![1.0]);
        conv.b.value.fill(0.0);
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn known_3x3_convolution() {
        let mut rng = rng_from_seed(2);
        let mut conv = Conv2D::new(1, 1, 2, 1, &mut rng);
        conv.w.value = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]);
        conv.b.value = Tensor::from_vec(&[1], vec![0.5]);
        // 3x3 input, 2x2 kernel picking main diagonal + bias.
        let x = Tensor::from_vec(
            &[1, 1, 3, 3],
            vec![1., 2., 3., 4., 5., 6., 7., 8., 9.],
        );
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[1. + 5. + 0.5, 2. + 6. + 0.5, 4. + 8. + 0.5, 5. + 9. + 0.5]);
    }

    #[test]
    fn stride_reduces_output() {
        let mut rng = rng_from_seed(3);
        let conv = Conv2D::new(3, 8, 3, 2, &mut rng);
        assert_eq!(conv.output_shape(&[2, 3, 11, 15]), vec![2, 8, 5, 7]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = rng_from_seed(4);
        let mut conv = Conv2D::new(2, 3, 3, 2, &mut rng);
        let x = Tensor::randn(&[2, 2, 7, 7], 1.0, &mut rng);
        gradcheck::check_input_grad(&mut conv, &x, 3e-2);
        gradcheck::check_param_grads(&mut conv, &x, 3e-2);
    }

    #[test]
    fn flops_counts_macs() {
        let mut rng = rng_from_seed(5);
        let conv = Conv2D::new(1, 1, 2, 1, &mut rng);
        // 2x2 output, 2x2 kernel, 1 channel: 2*1*1*4*4 = 32.
        assert_eq!(conv.flops_per_example(&[1, 1, 3, 3]), 32);
    }

    #[test]
    #[should_panic(expected = "smaller than kernel")]
    fn rejects_too_small_input() {
        let mut rng = rng_from_seed(6);
        let mut conv = Conv2D::new(1, 1, 5, 1, &mut rng);
        let _ = conv.forward(&Tensor::zeros(&[1, 1, 3, 3]), false);
    }

    #[test]
    fn scratch_is_stable_across_steps() {
        let mut rng = rng_from_seed(7);
        let mut conv = Conv2D::new(2, 4, 3, 2, &mut rng);
        let x = Tensor::randn(&[3, 2, 9, 9], 1.0, &mut rng);
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let bytes = conv.scratch_bytes();
        assert!(bytes > 0, "conv scratch should hold im2col buffers");
        for _ in 0..3 {
            let y = conv.forward(&x, true);
            let _ = conv.backward(&y);
            assert_eq!(conv.scratch_bytes(), bytes, "steady-state must not grow");
        }
    }
}
