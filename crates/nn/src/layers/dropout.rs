//! Inverted dropout.

use super::Layer;
use crate::tensor::Tensor;
use autolearn_util::rng::rng_from_seed;
use rand::rngs::StdRng;
use rand::Rng;

/// Inverted dropout: at train time zeroes each element with probability `p`
/// and scales survivors by `1/(1-p)`; identity at inference.
///
/// Owns its RNG (seeded at construction) so training runs are deterministic
/// without threading an RNG through every forward call.
pub struct Dropout {
    p: f32,
    rng: StdRng,
    cache_mask: Option<Tensor>,
}

impl Dropout {
    pub fn new(p: f32, seed: u64) -> Dropout {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0, 1)");
        Dropout {
            p,
            rng: rng_from_seed(seed),
            cache_mask: None,
        }
    }
}

impl Layer for Dropout {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        if !train || self.p == 0.0 {
            self.cache_mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let mask = Tensor::from_vec(
            x.shape(),
            (0..x.len())
                .map(|_| {
                    if self.rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
        );
        let out = x.zip(&mask, |a, m| a * m);
        self.cache_mask = Some(mask);
        out
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        match &self.cache_mask {
            Some(mask) => grad_out.zip(mask, |g, m| g * m),
            None => grad_out.clone(),
        }
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn flops_per_example(&self, input_shape: &[usize]) -> u64 {
        input_shape[1..].iter().product::<usize>() as u64
    }

    fn name(&self) -> String {
        format!("Dropout({})", self.p)
    }

    fn spec(&self) -> crate::layers::LayerSpec {
        crate::layers::LayerSpec::Dropout {
            rate: self.p as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 1);
        let x = Tensor::from_vec(&[2, 2], vec![1., 2., 3., 4.]);
        let y = d.forward(&x, false);
        assert_eq!(y.data(), x.data());
        let dx = d.backward(&y);
        assert_eq!(dx.data(), y.data());
    }

    #[test]
    fn train_preserves_expectation() {
        let mut d = Dropout::new(0.3, 2);
        let x = Tensor::full(&[1, 10_000], 1.0);
        let y = d.forward(&x, true);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors scaled by 1/keep.
        for &v in y.data() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5, 3);
        let x = Tensor::full(&[1, 100], 1.0);
        let y = d.forward(&x, true);
        let dx = d.backward(&Tensor::full(&[1, 100], 1.0));
        // Zeros and survivors line up.
        for (a, b) in y.data().iter().zip(dx.data()) {
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn deterministic_by_seed() {
        let mut d1 = Dropout::new(0.5, 42);
        let mut d2 = Dropout::new(0.5, 42);
        let x = Tensor::full(&[1, 64], 1.0);
        assert_eq!(d1.forward(&x, true).data(), d2.forward(&x, true).data());
    }

    #[test]
    #[should_panic(expected = "dropout p")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0, 1);
    }
}
