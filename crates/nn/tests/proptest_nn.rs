//! Property tests for the neural-network library's core invariants.

use autolearn_nn::layers::{Activation, ActivationLayer, Conv2D, Dense, Flatten, Layer, MaxPool2D};
use autolearn_nn::loss::{bin_value, one_hot, softmax_rows, unbin_value, Loss};
use autolearn_nn::Tensor;
use autolearn_util::rng::rng_from_seed;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Dense layers are affine: f(ax) - f(0) == a (f(x) - f(0)).
    #[test]
    fn dense_is_affine(seed in 0u64..1000, a in -3.0f32..3.0) {
        let mut rng = rng_from_seed(seed);
        let mut d = Dense::new(5, 3, &mut rng);
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let f0 = d.forward(&Tensor::zeros(&[2, 5]), false);
        let fx = d.forward(&x, false);
        let fax = d.forward(&x.scale(a), false);
        for i in 0..fx.len() {
            let lhs = fax.data()[i] - f0.data()[i];
            let rhs = a * (fx.data()[i] - f0.data()[i]);
            prop_assert!((lhs - rhs).abs() < 1e-3 * (1.0 + rhs.abs()), "{lhs} vs {rhs}");
        }
    }

    /// Convolution is linear in its input once bias is removed.
    #[test]
    fn conv_linear_in_input(seed in 0u64..500) {
        let mut rng = rng_from_seed(seed);
        let mut conv = Conv2D::new(1, 2, 3, 1, &mut rng);
        conv.b.value.fill(0.0);
        let x = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let y = Tensor::randn(&[1, 1, 6, 6], 1.0, &mut rng);
        let fx = conv.forward(&x, false);
        let fy = conv.forward(&y, false);
        let fxy = conv.forward(&x.add(&y), false);
        for i in 0..fx.len() {
            let sum = fx.data()[i] + fy.data()[i];
            prop_assert!((fxy.data()[i] - sum).abs() < 1e-3 * (1.0 + sum.abs()));
        }
    }

    /// Softmax rows: positive, sum to one, invariant to per-row shifts.
    #[test]
    fn softmax_shift_invariant(vals in prop::collection::vec(-20.0f32..20.0, 6), shift in -50.0f32..50.0) {
        let t = Tensor::from_vec(&[2, 3], vals.clone());
        let p1 = softmax_rows(&t);
        let shifted = t.map(|v| v + shift);
        let p2 = softmax_rows(&shifted);
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-5);
        }
        for row in p1.data().chunks(3) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            prop_assert!(row.iter().all(|&v| v > 0.0));
        }
    }

    /// Binning is the left inverse of unbinning, and unbinning stays within
    /// half a bin of the original value.
    #[test]
    fn bin_unbin_consistency(v in -1.0f32..=1.0, bins in 2usize..40) {
        let b = bin_value(v, -1.0, 1.0, bins);
        prop_assert!(b < bins);
        let back = unbin_value(b, -1.0, 1.0, bins);
        prop_assert!((back - v).abs() <= 1.0 / bins as f32 + 1e-6);
        prop_assert_eq!(bin_value(back, -1.0, 1.0, bins), b);
    }

    /// MSE is non-negative, zero iff equal, and symmetric.
    #[test]
    fn mse_metric_properties(a in prop::collection::vec(-5.0f32..5.0, 8), b in prop::collection::vec(-5.0f32..5.0, 8)) {
        let ta = Tensor::from_vec(&[2, 4], a);
        let tb = Tensor::from_vec(&[2, 4], b);
        let (lab, _) = Loss::Mse.compute(&ta, &tb);
        let (lba, _) = Loss::Mse.compute(&tb, &ta);
        let (laa, _) = Loss::Mse.compute(&ta, &ta);
        prop_assert!(lab >= 0.0);
        prop_assert!((lab - lba).abs() < 1e-5);
        prop_assert_eq!(laa, 0.0);
    }

    /// Cross-entropy against a one-hot target is minimised by the target
    /// class having the largest logit.
    #[test]
    fn ce_prefers_correct_class(correct in 0usize..4, margin in 0.5f32..10.0) {
        let mut logits = vec![0.0f32; 4];
        logits[correct] = margin;
        let t = Tensor::from_vec(&[1, 4], logits);
        let target = one_hot(&[correct], 4);
        let (l_good, _) = Loss::SoftmaxCrossEntropy.compute(&t, &target);
        let wrong = (correct + 1) % 4;
        let target_wrong = one_hot(&[wrong], 4);
        let (l_bad, _) = Loss::SoftmaxCrossEntropy.compute(&t, &target_wrong);
        prop_assert!(l_good < l_bad);
    }

    /// Pool → flatten shape bookkeeping matches actual outputs for valid
    /// shapes.
    #[test]
    fn shape_contracts_hold(b in 1usize..4, c in 1usize..4, hw in 4usize..12) {
        let mut rng = rng_from_seed(9);
        let x = Tensor::randn(&[b, c, hw, hw], 1.0, &mut rng);
        let mut pool = MaxPool2D::new(2);
        let y = pool.forward(&x, false);
        prop_assert_eq!(y.shape(), &pool.output_shape(x.shape())[..]);
        let mut flat = Flatten::new();
        let z = flat.forward(&y, false);
        prop_assert_eq!(z.shape(), &flat.output_shape(y.shape())[..]);
        let mut act = ActivationLayer::new(Activation::Relu);
        let w = act.forward(&z, false);
        prop_assert_eq!(w.shape(), z.shape());
        prop_assert!(w.data().iter().all(|&v| v >= 0.0));
    }

    /// ReLU output is idempotent: relu(relu(x)) == relu(x).
    #[test]
    fn relu_idempotent(vals in prop::collection::vec(-10.0f32..10.0, 12)) {
        let x = Tensor::from_vec(&[3, 4], vals);
        let mut act = ActivationLayer::new(Activation::Relu);
        let once = act.forward(&x, false);
        let twice = act.forward(&once, false);
        prop_assert_eq!(once.data(), twice.data());
    }
}
