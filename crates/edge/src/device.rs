//! Edge devices and their testbed lifecycle.

use autolearn_cloud::hardware::ComputeDevice;
use serde::{Deserialize, Serialize};

/// Supported device classes (the cars carry Raspberry Pi 4s; Jetsons appear
/// in CHI@Edge's wider catalog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceKind {
    RaspberryPi4,
    JetsonNano,
}

impl DeviceKind {
    pub fn compute(self) -> ComputeDevice {
        match self {
            DeviceKind::RaspberryPi4 => ComputeDevice::raspberry_pi4(),
            DeviceKind::JetsonNano => ComputeDevice {
                name: "JetsonNano".to_string(),
                sustained_gflops: 200.0, // Maxwell GPU, fp32 sustained
                call_overhead_s: 0.0008,
            },
        }
    }
}

/// Where the device is in the BYOD lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceState {
    /// Physical device in hand, nothing done.
    Unregistered,
    /// Registered with the testbed via the CLI utility; SD image issued.
    Registered,
    /// Booted; daemon connected to the testbed.
    Connected,
    /// Held by a reservation and running student containers.
    InUse,
    /// Daemon lost contact.
    Offline,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    WrongState {
        expected: &'static str,
        actual: DeviceState,
    },
    NotAuthorized(String),
}

impl std::fmt::Display for DeviceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceError::WrongState { expected, actual } => {
                write!(f, "device must be {expected}, is {actual:?}")
            }
            DeviceError::NotAuthorized(p) => write!(f, "project {p} not on device whitelist"),
        }
    }
}

impl std::error::Error for DeviceError {}

/// A BYOD edge device (the car's Pi).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EdgeDevice {
    pub name: String,
    pub kind: DeviceKind,
    /// The user who added the device.
    pub owner: String,
    pub state: DeviceState,
    /// Projects allowed to allocate this device ("whitelist-based access
    /// policies for the added device", §3.2 — BYOD is *limited* sharing).
    pub whitelist: Vec<String>,
}

impl EdgeDevice {
    pub fn new(name: &str, kind: DeviceKind, owner: &str) -> EdgeDevice {
        EdgeDevice {
            name: name.to_string(),
            kind,
            owner: owner.to_string(),
            state: DeviceState::Unregistered,
            whitelist: Vec::new(),
        }
    }

    /// CLI registration step.
    pub fn register(&mut self, allowed_projects: &[&str]) -> Result<(), DeviceError> {
        if self.state != DeviceState::Unregistered {
            return Err(DeviceError::WrongState {
                expected: "Unregistered",
                actual: self.state,
            });
        }
        self.whitelist = allowed_projects.iter().map(|s| s.to_string()).collect();
        self.state = DeviceState::Registered;
        Ok(())
    }

    /// Daemon phones home after first boot from the flashed SD image.
    pub fn connect(&mut self) -> Result<(), DeviceError> {
        match self.state {
            DeviceState::Registered | DeviceState::Offline => {
                self.state = DeviceState::Connected;
                Ok(())
            }
            actual => Err(DeviceError::WrongState {
                expected: "Registered or Offline",
                actual,
            }),
        }
    }

    /// A project claims the device (via the standard Chameleon reservation
    /// path — the car becomes "any other Chameleon resource", §3.3).
    pub fn allocate(&mut self, project: &str) -> Result<(), DeviceError> {
        if self.state != DeviceState::Connected {
            return Err(DeviceError::WrongState {
                expected: "Connected",
                actual: self.state,
            });
        }
        if !self.whitelist.iter().any(|p| p == project) {
            return Err(DeviceError::NotAuthorized(project.to_string()));
        }
        self.state = DeviceState::InUse;
        Ok(())
    }

    pub fn release(&mut self) {
        if self.state == DeviceState::InUse {
            self.state = DeviceState::Connected;
        }
    }

    pub fn drop_offline(&mut self) {
        if matches!(self.state, DeviceState::Connected | DeviceState::InUse) {
            self.state = DeviceState::Offline;
        }
    }

    pub fn compute(&self) -> ComputeDevice {
        self.kind.compute()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_pi() -> EdgeDevice {
        EdgeDevice::new("car-07", DeviceKind::RaspberryPi4, "prof")
    }

    #[test]
    fn happy_path_lifecycle() {
        let mut d = car_pi();
        d.register(&["autolearn-class"]).unwrap();
        assert_eq!(d.state, DeviceState::Registered);
        d.connect().unwrap();
        assert_eq!(d.state, DeviceState::Connected);
        d.allocate("autolearn-class").unwrap();
        assert_eq!(d.state, DeviceState::InUse);
        d.release();
        assert_eq!(d.state, DeviceState::Connected);
    }

    #[test]
    fn whitelist_enforced() {
        let mut d = car_pi();
        d.register(&["autolearn-class"]).unwrap();
        d.connect().unwrap();
        let err = d.allocate("random-project").unwrap_err();
        assert!(matches!(err, DeviceError::NotAuthorized(_)));
        assert_eq!(d.state, DeviceState::Connected);
    }

    #[test]
    fn cannot_allocate_before_connect() {
        let mut d = car_pi();
        d.register(&["p"]).unwrap();
        assert!(matches!(
            d.allocate("p"),
            Err(DeviceError::WrongState { .. })
        ));
    }

    #[test]
    fn double_registration_rejected() {
        let mut d = car_pi();
        d.register(&["p"]).unwrap();
        assert!(d.register(&["p"]).is_err());
    }

    #[test]
    fn offline_and_reconnect() {
        let mut d = car_pi();
        d.register(&["p"]).unwrap();
        d.connect().unwrap();
        d.drop_offline();
        assert_eq!(d.state, DeviceState::Offline);
        d.connect().unwrap();
        assert_eq!(d.state, DeviceState::Connected);
    }

    #[test]
    fn pi_compute_profile() {
        let d = car_pi();
        assert_eq!(d.compute().name, "RasPi4");
        assert!(
            DeviceKind::JetsonNano.compute().sustained_gflops
                > DeviceKind::RaspberryPi4.compute().sustained_gflops
        );
    }
}
