//! CHI@Edge: the edge half of the continuum.
//!
//! §3.2/§3.5: devices join the testbed through the Bring-Your-Own-Device
//! (BYOD) pathway — *"users can add devices to the testbed by downloading a
//! CHI@Edge command line utility and SD card image; the utility registers
//! the device with the testbed, and configures the SD card image to be
//! flashed onto the device. Once booted up, the image contains a daemon
//! that connects the device to the testbed and configures whitelist-based
//! access policies"* — after which the device is reconfigured *"by
//! deploying a Docker container rather than bare-metal reconfiguration"*.
//!
//! This crate models that lifecycle: [`device`] (the car's Raspberry Pi and
//! its states), [`byod`] (the registration workflow and its timings,
//! including the manual-setup baseline it replaces), and [`container`] (the
//! Docker-ish runtime the AutoLearn image runs in, with the Jupyter console
//! the students type into).

pub mod byod;
pub mod container;
pub mod device;

pub use byod::{ByodWorkflow, SetupStep, ZeroToReady};
pub use container::{
    Container, ContainerError, ContainerRuntime, ContainerState, EdgeLaunchError, ImageSpec,
};
pub use device::{DeviceError, DeviceKind, DeviceState, EdgeDevice};
