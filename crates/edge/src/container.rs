//! The container runtime on an edge device.
//!
//! CHI@Edge reconfigures BYOD devices "by deploying a Docker container
//! rather than bare-metal reconfiguration" (§3.2), and AutoLearn ships a
//! Docker image "which pre-installs all DonkeyCar dependencies" plus the
//! Basic Jupyter Server Appliance, with "a built-in console in Jupyter for
//! running commands on the Raspberry Pi" (§3.5).

use autolearn_net::{transfer_time, Path, TransferSpec};
use autolearn_obs::{AttrValue, Obs};
use autolearn_util::fault::{FaultKind, FaultPlan, FaultSite};
use autolearn_util::{Bytes, SimDuration};
use serde::{Deserialize, Serialize};

/// A container image.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImageSpec {
    pub name: String,
    pub bytes: Bytes,
}

impl ImageSpec {
    /// The AutoLearn image: DonkeyCar deps + Jupyter server (§3.5), arm64.
    pub fn autolearn() -> ImageSpec {
        ImageSpec {
            name: "autolearn/donkeycar-jupyter:latest".to_string(),
            bytes: Bytes::new(850_000_000),
        }
    }
}

/// Container lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContainerState {
    Pulling,
    Starting,
    Running,
    Exited,
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainerError {
    NotRunning,
    /// §3.5: "text editing is not supported in the console at the present
    /// time" — the workaround the authors mention.
    TextEditingUnsupported,
}

impl std::fmt::Display for ContainerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContainerError::NotRunning => write!(f, "container is not running"),
            ContainerError::TextEditingUnsupported => {
                write!(f, "text editing is not supported in the console")
            }
        }
    }
}

impl std::error::Error for ContainerError {}

/// A launched container.
#[derive(Debug, Clone)]
pub struct Container {
    pub image: ImageSpec,
    pub state: ContainerState,
    /// Console command log (what students typed through Jupyter).
    pub console_log: Vec<String>,
}

impl Container {
    /// Execute a command via the built-in Jupyter console. Interactive
    /// editors are refused, mirroring the limitation the paper reports.
    pub fn console_exec(&mut self, command: &str) -> Result<String, ContainerError> {
        if self.state != ContainerState::Running {
            return Err(ContainerError::NotRunning);
        }
        let binary = command.split_whitespace().next().unwrap_or("");
        if ["vi", "vim", "nano", "emacs"].contains(&binary) {
            return Err(ContainerError::TextEditingUnsupported);
        }
        self.console_log.push(command.to_string());
        Ok(format!("$ {command}\nok"))
    }

    pub fn stop(&mut self) {
        self.state = ContainerState::Exited;
    }
}

/// Why a fault-aware container launch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum EdgeLaunchError {
    /// The device dropped off the testbed mid-launch and stays unreachable
    /// for `outage`.
    DeviceDisconnected {
        outage: SimDuration,
        wasted: SimDuration,
    },
    /// The container crashed during start-up.
    ContainerCrashed { wasted: SimDuration },
}

impl std::fmt::Display for EdgeLaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EdgeLaunchError::DeviceDisconnected { outage, .. } => {
                write!(f, "edge device disconnected ({outage} outage)")
            }
            EdgeLaunchError::ContainerCrashed { wasted } => {
                write!(f, "container crashed during start ({wasted} wasted)")
            }
        }
    }
}

impl std::error::Error for EdgeLaunchError {}

/// Per-device container runtime with an image cache.
pub struct ContainerRuntime {
    cached_images: Vec<String>,
    /// Time to unpack + start a container on the Pi.
    start_time: SimDuration,
}

impl Default for ContainerRuntime {
    fn default() -> Self {
        Self::new()
    }
}

impl ContainerRuntime {
    pub fn new() -> ContainerRuntime {
        ContainerRuntime {
            cached_images: Vec::new(),
            start_time: SimDuration::from_secs(18.0),
        }
    }

    pub fn image_cached(&self, image: &ImageSpec) -> bool {
        self.cached_images.contains(&image.name)
    }

    /// Launch a container, returning it plus the launch latency (pull over
    /// `net_path` if uncached, then start).
    pub fn launch(&mut self, image: &ImageSpec, net_path: &Path) -> (Container, SimDuration) {
        let pull = if self.image_cached(image) {
            SimDuration::ZERO
        } else {
            self.cached_images.push(image.name.clone());
            transfer_time(net_path, &TransferSpec::object_store(image.bytes))
        };
        (
            Container {
                image: image.clone(),
                state: ContainerState::Running,
                console_log: Vec::new(),
            },
            pull + self.start_time,
        )
    }

    /// Pull `image` into the cache without starting a container; returns the
    /// pull time (zero when already cached). Useful for warming a device
    /// before a fault-prone launch window.
    pub fn preload(&mut self, image: &ImageSpec, net_path: &Path) -> SimDuration {
        if self.image_cached(image) {
            SimDuration::ZERO
        } else {
            self.cached_images.push(image.name.clone());
            transfer_time(net_path, &TransferSpec::object_store(image.bytes))
        }
    }

    /// Launch under fault injection. A device disconnect or container crash
    /// aborts the attempt, but the image pull that completed before the
    /// fault stays cached — a retry starts warm, the way Docker behaves on a
    /// real Pi.
    pub fn launch_with_faults(
        &mut self,
        image: &ImageSpec,
        net_path: &Path,
        plan: &mut FaultPlan,
    ) -> Result<(Container, SimDuration), EdgeLaunchError> {
        let pull = self.preload(image, net_path);
        match plan.draw(FaultSite::Edge, &image.name) {
            Some(FaultKind::DeviceDisconnect { outage_s }) => {
                Err(EdgeLaunchError::DeviceDisconnected {
                    outage: SimDuration::from_secs(outage_s),
                    wasted: pull + SimDuration::from_secs(outage_s),
                })
            }
            Some(FaultKind::ContainerCrash { wasted_s }) => Err(EdgeLaunchError::ContainerCrashed {
                wasted: pull + SimDuration::from_secs(wasted_s),
            }),
            _ => Ok((
                Container {
                    image: image.clone(),
                    state: ContainerState::Running,
                    console_log: Vec::new(),
                },
                pull + self.start_time,
            )),
        }
    }

    /// [`ContainerRuntime::launch_with_faults`] with telemetry: bumps
    /// `edge.launch_attempts`, records freshly injected faults as `fault`
    /// events, and emits `container-started` (with whether the image was
    /// already warm) or `edge-launch-failed`. The launch outcome is
    /// identical to the unobserved call.
    pub fn launch_with_faults_observed(
        &mut self,
        image: &ImageSpec,
        net_path: &Path,
        plan: &mut FaultPlan,
        obs: &mut Obs,
    ) -> Result<(Container, SimDuration), EdgeLaunchError> {
        let faults_before = plan.injected().len();
        let warm = self.image_cached(image);
        let result = self.launch_with_faults(image, net_path, plan);
        obs.counter_add("edge.launch_attempts", 1);
        obs.record_injected_faults(&plan.injected()[faults_before..]);
        match &result {
            Ok((_, launch_time)) => {
                obs.event(
                    "container-started",
                    vec![
                        ("image".to_string(), AttrValue::Str(image.name.clone())),
                        ("warm".to_string(), AttrValue::Bool(warm)),
                        (
                            "launch_s".to_string(),
                            AttrValue::F64(launch_time.as_secs()),
                        ),
                    ],
                );
            }
            Err(err) => {
                obs.event(
                    "edge-launch-failed",
                    vec![
                        ("image".to_string(), AttrValue::Str(image.name.clone())),
                        ("error".to_string(), AttrValue::Str(err.to_string())),
                    ],
                );
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wifi() -> Path {
        Path::car_to_cloud()
    }

    #[test]
    fn first_launch_pulls_then_cache_hits() {
        let mut rt = ContainerRuntime::new();
        let img = ImageSpec::autolearn();
        let (_, cold) = rt.launch(&img, &wifi());
        assert!(rt.image_cached(&img));
        let (_, warm) = rt.launch(&img, &wifi());
        assert!(
            cold.as_secs() > warm.as_secs() + 60.0,
            "cold {cold} vs warm {warm}"
        );
        assert_eq!(warm.as_secs(), 18.0);
    }

    #[test]
    fn cold_pull_of_850mb_over_wifi_is_minutes() {
        let mut rt = ContainerRuntime::new();
        let (_, cold) = rt.launch(&ImageSpec::autolearn(), &wifi());
        assert!(
            cold.as_mins() > 2.0 && cold.as_mins() < 15.0,
            "cold launch {cold}"
        );
    }

    #[test]
    fn console_runs_commands_but_not_editors() {
        let mut rt = ContainerRuntime::new();
        let (mut c, _) = rt.launch(&ImageSpec::autolearn(), &wifi());
        let out = c.console_exec("python manage.py drive").unwrap();
        assert!(out.contains("manage.py"));
        assert_eq!(
            c.console_exec("vim config.py").unwrap_err(),
            ContainerError::TextEditingUnsupported
        );
        assert_eq!(c.console_log.len(), 1);
    }

    #[test]
    fn faulty_launch_keeps_image_cached_for_warm_retry() {
        use autolearn_util::fault::FaultConfig;
        // Find a seed whose first edge draw is a fault.
        for seed in 0..64 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut rt = ContainerRuntime::new();
            let img = ImageSpec::autolearn();
            if let Err(err) = rt.launch_with_faults(&img, &wifi(), &mut plan) {
                let wasted = match &err {
                    EdgeLaunchError::DeviceDisconnected { wasted, .. } => *wasted,
                    EdgeLaunchError::ContainerCrashed { wasted } => *wasted,
                };
                assert!(wasted.as_secs() > 0.0, "{err}: nothing charged");
                // The pull survived the fault: the retry is warm.
                assert!(rt.image_cached(&img));
                let (c, warm) = rt
                    .launch_with_faults(&img, &wifi(), &mut FaultPlan::none())
                    .unwrap();
                assert_eq!(c.state, ContainerState::Running);
                assert_eq!(warm.as_secs(), 18.0);
                return;
            }
        }
        panic!("no edge fault found in 64 seeds");
    }

    #[test]
    fn observed_launch_reports_cold_and_warm_starts() {
        let mut rt = ContainerRuntime::new();
        let img = ImageSpec::autolearn();
        let mut obs = Obs::new();
        rt.launch_with_faults_observed(&img, &wifi(), &mut FaultPlan::none(), &mut obs)
            .unwrap();
        rt.launch_with_faults_observed(&img, &wifi(), &mut FaultPlan::none(), &mut obs)
            .unwrap();
        assert_eq!(obs.metrics().counter("edge.launch_attempts"), 2);
        let warm_flags: Vec<bool> = obs
            .trace()
            .events_named("container-started")
            .map(|e| {
                autolearn_obs::attr(&e.attrs, "warm")
                    .and_then(|v| match v {
                        AttrValue::Bool(b) => Some(*b),
                        _ => None,
                    })
                    .unwrap()
            })
            .collect();
        assert_eq!(warm_flags, vec![false, true]);
    }

    #[test]
    fn observed_faulty_launch_emits_fault_and_failure_events() {
        use autolearn_util::fault::FaultConfig;
        for seed in 0..64 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut rt = ContainerRuntime::new();
            let mut obs = Obs::new();
            let img = ImageSpec::autolearn();
            if rt
                .launch_with_faults_observed(&img, &wifi(), &mut plan, &mut obs)
                .is_err()
            {
                assert_eq!(obs.metrics().counter("edge.faults"), 1);
                assert_eq!(obs.trace().events_named("fault").count(), 1);
                assert_eq!(obs.trace().events_named("edge-launch-failed").count(), 1);
                return;
            }
        }
        panic!("no edge fault found in 64 seeds");
    }

    #[test]
    fn preload_then_faultless_launch_is_warm() {
        let mut rt = ContainerRuntime::new();
        let img = ImageSpec::autolearn();
        let pull = rt.preload(&img, &wifi());
        assert!(pull.as_mins() > 1.0);
        assert_eq!(rt.preload(&img, &wifi()), SimDuration::ZERO);
        let (_, launch) = rt
            .launch_with_faults(&img, &wifi(), &mut FaultPlan::none())
            .unwrap();
        assert_eq!(launch.as_secs(), 18.0);
    }

    #[test]
    fn stopped_container_refuses_exec() {
        let mut rt = ContainerRuntime::new();
        let (mut c, _) = rt.launch(&ImageSpec::autolearn(), &wifi());
        c.stop();
        assert_eq!(
            c.console_exec("ls").unwrap_err(),
            ContainerError::NotRunning
        );
    }
}
