//! The BYOD onboarding workflow and its "zero to ready" timing.
//!
//! §3.5: the AutoLearn image + CHI@Edge give *"a 'zero to ready'
//! configuration pathway with minimum time and effort"*. The experiment
//! behind that claim compares the BYOD path against setting the same Pi up
//! by hand.

use crate::device::{DeviceError, EdgeDevice};
use autolearn_util::SimDuration;
use serde::{Deserialize, Serialize};

/// One step of an onboarding pathway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SetupStep {
    pub name: String,
    pub duration: SimDuration,
    /// Whether a human must sit with it (vs unattended).
    pub attended: bool,
}

impl SetupStep {
    fn new(name: &str, mins: f64, attended: bool) -> SetupStep {
        SetupStep {
            name: name.to_string(),
            duration: SimDuration::from_mins(mins),
            attended,
        }
    }
}

/// Aggregate timing of a pathway.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ZeroToReady {
    pub total: SimDuration,
    /// Human-attention time only (unattended waits excluded).
    pub attended: SimDuration,
    pub steps: usize,
}

/// The two onboarding pathways.
pub struct ByodWorkflow;

impl ByodWorkflow {
    /// CHI@Edge BYOD pathway: CLI registration, SD flash (unattended),
    /// boot+daemon connect (unattended), then one Jupyter cell to launch
    /// the pre-built AutoLearn container.
    pub fn chi_at_edge() -> Vec<SetupStep> {
        vec![
            SetupStep::new("download CLI utility + SD image", 6.0, false),
            SetupStep::new("register device (CLI)", 2.0, true),
            SetupStep::new("flash SD card", 8.0, false),
            SetupStep::new("first boot + daemon connect", 3.0, false),
            SetupStep::new("reserve device via Chameleon", 1.0, true),
            SetupStep::new("launch AutoLearn container (1 Jupyter cell)", 4.0, true),
            SetupStep::new("SSH-tunnel Jupyter check", 1.0, true),
        ]
    }

    /// Manual baseline: hand-install Raspberry Pi OS, Python env, DonkeyCar
    /// and its dependency pins, camera config, debug the inevitable
    /// mismatches. The numbers reflect the instructors' guidance that this
    /// is the part that used to consume a lab session.
    pub fn manual_setup() -> Vec<SetupStep> {
        vec![
            SetupStep::new("install Raspberry Pi OS", 25.0, true),
            SetupStep::new("system update + tooling", 20.0, false),
            SetupStep::new("python env + DonkeyCar deps", 35.0, true),
            SetupStep::new("camera/GPIO configuration", 10.0, true),
            SetupStep::new("debug version mismatches", 25.0, true),
        ]
    }

    pub fn timing(steps: &[SetupStep]) -> ZeroToReady {
        let total = steps
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration);
        let attended = steps
            .iter()
            .filter(|s| s.attended)
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration);
        ZeroToReady {
            total,
            attended,
            steps: steps.len(),
        }
    }

    /// Run the BYOD steps against a device's state machine, returning the
    /// zero-to-ready timing on success.
    pub fn onboard(device: &mut EdgeDevice, project: &str) -> Result<ZeroToReady, DeviceError> {
        device.register(&[project])?;
        device.connect()?;
        device.allocate(project)?;
        Ok(Self::timing(&Self::chi_at_edge()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{DeviceKind, DeviceState};

    #[test]
    fn byod_beats_manual_on_both_axes() {
        let byod = ByodWorkflow::timing(&ByodWorkflow::chi_at_edge());
        let manual = ByodWorkflow::timing(&ByodWorkflow::manual_setup());
        assert!(byod.total.as_mins() < manual.total.as_mins());
        // The headline claim is about *effort*: attended time collapses.
        assert!(
            byod.attended.as_mins() < 0.2 * manual.attended.as_mins(),
            "attended {} vs {}",
            byod.attended,
            manual.attended
        );
    }

    #[test]
    fn byod_is_under_half_an_hour() {
        let byod = ByodWorkflow::timing(&ByodWorkflow::chi_at_edge());
        assert!(byod.total.as_mins() < 30.0, "total {}", byod.total);
    }

    #[test]
    fn onboard_drives_state_machine() {
        let mut d = EdgeDevice::new("car-01", DeviceKind::RaspberryPi4, "prof");
        let z = ByodWorkflow::onboard(&mut d, "autolearn-class").unwrap();
        assert_eq!(d.state, DeviceState::InUse);
        assert_eq!(z.steps, 7);
    }

    #[test]
    fn onboard_twice_fails() {
        let mut d = EdgeDevice::new("car-01", DeviceKind::RaspberryPi4, "prof");
        ByodWorkflow::onboard(&mut d, "p").unwrap();
        assert!(ByodWorkflow::onboard(&mut d, "p").is_err());
    }

    #[test]
    fn timing_sums_steps() {
        let steps = vec![
            SetupStep::new("a", 10.0, true),
            SetupStep::new("b", 5.0, false),
        ];
        let z = ByodWorkflow::timing(&steps);
        assert!((z.total.as_mins() - 15.0).abs() < 1e-9);
        assert!((z.attended.as_mins() - 10.0).abs() < 1e-9);
    }
}
