//! Hot numeric kernels: the conv/matmul/LSTM math behind every training
//! stage and the camera render behind every simulated frame.

use autolearn_nn::kernels;
use autolearn_nn::layers::{Conv2D, Conv3D, Dense, Layer, Lstm};
use autolearn_nn::Tensor;
use autolearn_sim::{Camera, CameraConfig, VehicleState};
use autolearn_track::paper_oval;
use autolearn_util::rng::rng_from_seed;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut rng = rng_from_seed(1);
    let a = Tensor::randn(&[64, 192], 1.0, &mut rng);
    let b = Tensor::randn(&[192, 64], 1.0, &mut rng);
    c.bench_function("matmul_64x192x64", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = rng_from_seed(2);
    let mut conv = Conv2D::new(1, 8, 5, 2, &mut rng);
    let x = Tensor::randn(&[32, 1, 30, 40], 1.0, &mut rng);
    c.bench_function("conv2d_forward_b32_30x40", |bench| {
        bench.iter(|| black_box(conv.forward(&x, true)))
    });
    let y = conv.forward(&x, true);
    c.bench_function("conv2d_backward_b32_30x40", |bench| {
        bench.iter(|| {
            conv.zero_grads();
            black_box(conv.backward(&y))
        })
    });
}

/// DonkeyCar-geometry kernels: the exact shapes `Trainer::fit` runs at the
/// paper's 120x160 camera with batch 32 (see also `kernel_bench`, which
/// snapshots these against the naive reference kernels).
fn bench_donkeycar_shapes(c: &mut Criterion) {
    let mut rng = rng_from_seed(7);

    // Flatten -> Dense(64) GEMM: [32, 7488] x [7488, 64].
    let a = Tensor::randn(&[32, 7488], 1.0, &mut rng);
    let b = Tensor::randn(&[7488, 64], 1.0, &mut rng);
    let mut out = Tensor::zeros(&[32, 64]);
    c.bench_function("matmul_b32_7488x64", |bench| {
        bench.iter(|| {
            kernels::matmul_into(out.data_mut(), a.data(), b.data(), 32, 7488, 64);
            black_box(out.data());
        })
    });

    // First zoo conv on the full camera frame.
    let mut conv = Conv2D::new(1, 8, 5, 2, &mut rng);
    let x = Tensor::randn(&[32, 1, 120, 160], 1.0, &mut rng);
    c.bench_function("conv2d_forward_b32_120x160", |bench| {
        bench.iter(|| black_box(conv.forward(&x, true)))
    });
    let y = conv.forward(&x, true);
    c.bench_function("conv2d_backward_b32_120x160", |bench| {
        bench.iter(|| {
            conv.zero_grads();
            black_box(conv.backward(&y))
        })
    });

    // First 3-D conv of the ThreeD model over a 3-frame clip.
    let mut conv3 = Conv3D::new(1, 8, 2, 5, 1, 2, &mut rng);
    let x3 = Tensor::randn(&[32, 1, 3, 120, 160], 1.0, &mut rng);
    c.bench_function("conv3d_forward_b32_t3_120x160", |bench| {
        bench.iter(|| black_box(conv3.forward(&x3, true)))
    });
    let y3 = conv3.forward(&x3, true);
    c.bench_function("conv3d_backward_b32_t3_120x160", |bench| {
        bench.iter(|| {
            conv3.zero_grads();
            black_box(conv3.backward(&y3))
        })
    });
}

fn bench_dense(c: &mut Criterion) {
    let mut rng = rng_from_seed(3);
    let mut dense = Dense::new(192, 64, &mut rng);
    let x = Tensor::randn(&[32, 192], 1.0, &mut rng);
    c.bench_function("dense_forward_b32_192to64", |bench| {
        bench.iter(|| black_box(dense.forward(&x, true)))
    });
}

fn bench_lstm(c: &mut Criterion) {
    let mut rng = rng_from_seed(4);
    let mut lstm = Lstm::new(64, 32, &mut rng);
    let x = Tensor::randn(&[16, 3, 64], 1.0, &mut rng);
    c.bench_function("lstm_forward_b16_t3", |bench| {
        bench.iter(|| black_box(lstm.forward(&x, true)))
    });
}

fn bench_camera(c: &mut Criterion) {
    let track = paper_oval();
    let (pos, heading) = track.start_pose();
    let state = VehicleState::at(pos, heading);
    let mut small = Camera::new(CameraConfig::small());
    c.bench_function("camera_render_40x30", |bench| {
        bench.iter(|| black_box(small.render(&track, &state)))
    });
    let mut full = Camera::new(CameraConfig::default());
    c.bench_function("camera_render_160x120", |bench| {
        bench.iter(|| black_box(full.render(&track, &state)))
    });
}

fn bench_track_project(c: &mut Criterion) {
    let track = paper_oval();
    let points: Vec<_> = (0..64)
        .map(|i| track.offset_point(i as f64 * 0.17, ((i % 7) as f64 - 3.0) * 0.1))
        .collect();
    c.bench_function("track_project_64pts", |bench| {
        bench.iter(|| {
            for p in &points {
                black_box(track.project(*p));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_matmul,
    bench_donkeycar_shapes,
    bench_conv2d,
    bench_dense,
    bench_lstm,
    bench_camera,
    bench_track_project
);
criterion_main!(benches);
