//! Substrate operations: reservation admission, network models, object
//! store, artifact-metrics rollup.

use autolearn_cloud::hardware::Site;
use autolearn_cloud::objectstore::ObjectStore;
use autolearn_cloud::reservation::ReservationSystem;
use autolearn_net::{rpc_round_trip, transfer_time, Path, TransferSpec};
use autolearn_trovi::EventLog;
use autolearn_util::{Bytes, SimTime};
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

fn bench_reservations(c: &mut Criterion) {
    c.bench_function("reservation_admit_200_leases", |bench| {
        bench.iter(|| {
            let mut rs = ReservationSystem::new(Site::chameleon());
            for i in 0..200u64 {
                let start = (i % 50) as f64 * 3600.0;
                let _ = black_box(rs.reserve(
                    "p",
                    "gpu_rtx6000",
                    1,
                    SimTime::from_secs(start),
                    SimTime::from_secs(start + 7200.0),
                ));
            }
            rs.leases().len()
        })
    });
}

fn bench_network_models(c: &mut Criterion) {
    let path = Path::car_to_cloud();
    c.bench_function("transfer_time_model", |bench| {
        bench.iter(|| black_box(transfer_time(&path, &TransferSpec::rsync(Bytes::new(30_000_000)))))
    });
    c.bench_function("rpc_round_trip_model", |bench| {
        bench.iter(|| black_box(rpc_round_trip(&path, Bytes::new(1200), Bytes::new(16))))
    });
    let mut sampler = path.rtt_sampler(1);
    c.bench_function("rtt_sample", |bench| bench.iter(|| black_box(sampler.sample())));
}

fn bench_object_store(c: &mut Criterion) {
    c.bench_function("objectstore_put_get_1kb", |bench| {
        let mut store = ObjectStore::new();
        let data = vec![7u8; 1024];
        let mut i = 0u64;
        bench.iter(|| {
            i += 1;
            let name = format!("obj-{}", i % 512);
            store.put("c", &name, data.clone(), BTreeMap::new());
            black_box(store.get("c", &name).unwrap().etag)
        })
    });
}

fn bench_trovi_rollup(c: &mut Criterion) {
    let log = EventLog::synthetic_funnel("a", 2000, 0.3, 0.3, 1);
    c.bench_function("trovi_metrics_rollup_2000users", |bench| {
        bench.iter(|| black_box(log.metrics_for("a")))
    });
}

criterion_group!(
    benches,
    bench_reservations,
    bench_network_models,
    bench_object_store,
    bench_trovi_rollup
);
criterion_main!(benches);
