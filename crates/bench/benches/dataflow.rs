//! The data pipeline: tub write/read, cleaning, record→tensor conversion,
//! and a full training step of the linear model.

use autolearn::dataset::records_to_dataset;
use autolearn_bench::{model_config, simulator_records};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelKind};
use autolearn_nn::Adam;
use autolearn_track::circle_track;
use autolearn_tub::{CleanConfig, Record, Tub, TubCleaner};
use autolearn_util::Image;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn records(n: usize) -> Vec<Record> {
    (0..n)
        .map(|i| {
            Record::new(
                i as u64,
                0.1,
                0.5,
                i as u64 * 50,
                Image::new(40, 30, 1),
            )
        })
        .collect()
}

fn bench_tub_io(c: &mut Criterion) {
    c.bench_function("tub_write_100_records", |bench| {
        bench.iter_with_setup(
            || {
                let dir = std::env::temp_dir().join(format!(
                    "autolearn-bench-{}-{}",
                    std::process::id(),
                    rand::random::<u64>()
                ));
                (Tub::create(&dir).unwrap(), records(100), dir)
            },
            |(mut tub, recs, dir)| {
                for r in recs {
                    tub.write_record(r).unwrap();
                }
                drop(tub);
                let _ = std::fs::remove_dir_all(dir);
            },
        )
    });
}

fn bench_cleaning(c: &mut Criterion) {
    let mut recs = records(2000);
    for i in (100..2000).step_by(250) {
        recs[i].crashed = true;
    }
    let cleaner = TubCleaner::new(CleanConfig::default());
    c.bench_function("tubclean_analyse_2000", |bench| {
        bench.iter(|| black_box(cleaner.analyse(&recs)))
    });
}

fn bench_dataset_conversion(c: &mut Criterion) {
    let track = circle_track(3.0, 0.8);
    let recs = simulator_records(&track, 20.0, 1);
    let cfg = model_config(1);
    c.bench_function("records_to_dataset_400", |bench| {
        bench.iter(|| black_box(records_to_dataset(&recs, &cfg)))
    });
}

fn bench_train_step(c: &mut Criterion) {
    let track = circle_track(3.0, 0.8);
    let recs = simulator_records(&track, 20.0, 2);
    let cfg = model_config(2);
    let mut model = CarModel::build(ModelKind::Linear, &cfg);
    let data = prepare_dataset(&records_to_dataset(&recs, &cfg), model.input_spec());
    let batch = &data.batches(32, false, 0)[0];
    let mut opt = Adam::new(1e-3);
    c.bench_function("linear_train_batch32", |bench| {
        bench.iter(|| black_box(model.train_batch(batch, &mut opt)))
    });
    c.bench_function("linear_predict_batch32", |bench| {
        bench.iter(|| black_box(model.predict(&batch.inputs)))
    });
}

criterion_group!(
    benches,
    bench_tub_io,
    bench_cleaning,
    bench_dataset_conversion,
    bench_train_step
);
criterion_main!(benches);
