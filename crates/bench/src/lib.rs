//! Shared harness code for the experiment binaries.
//!
//! One binary per paper figure/claim (see DESIGN.md §3 for the index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `exp_f1_pipeline` | Fig. 1 — the three-component module pipeline |
//! | `exp_f2_collection_paths` | Fig. 2 — the three data-collection paths |
//! | `exp_f3_tracks` | Fig. 3 — paper oval vs Waveshare track |
//! | `exp_t1_model_zoo` | §3.3 six models; "inferred was best" |
//! | `exp_t2_gpu_sweep` | §3.3/§3.5 GPU training-time range |
//! | `exp_t3_inference_placement` | §3.3 in-situ vs cloud vs hybrid (Zheng poster) |
//! | `exp_t4_consistency` | Fowler poster: speed feedback vs constant throttle |
//! | `exp_t5_digital_twin` | §3.3/§3.4 digital twin |
//! | `exp_t6_trovi_funnel` | §5 Trovi metrics funnel |
//! | `exp_t7_dataset_sweep` | §3.3 dataset size 10–50k records |
//! | `exp_t8_zero_to_ready` | §3.5 BYOD zero-to-ready |
//! | `exp_t9_cleaning` | §3.3 tubclean impact |
//! | `exp_t10_rl` | §3.3 reinforcement-learning extension |
//! | `exp_t11_reservations` | §3.2 advance reservations vs on-demand |
//! | `exp_t3b_remote_loop` | T3's trade-off with the real dataflow in the loop |
//! | `exp_a1_camera_ablation` | ablation: camera pixels vs oracle features |
//! | `exp_a2_multigpu` | ablation: multi-GPU scaling, NVLink vs PCIe |
//! | `exp_a3_augmentation` | ablation: mirror augmentation |
//!
//! Run all with `scripts` or individually:
//! `cargo run --release -p autolearn-bench --bin exp_t1_model_zoo`.

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::records_to_dataset;
use autolearn::modelpilot::ModelPilot;
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{format_errors, TrainConfig, TrainReport, Trainer};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, SessionResult, Simulation};
use autolearn_track::Track;
use autolearn_tub::Record;

/// Print an aligned table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!("{:>w$}  ", c, w = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// The default model config used across experiments (40x30 grayscale).
pub fn model_config(seed: u64) -> ModelConfig {
    ModelConfig {
        height: 30,
        width: 40,
        channels: 1,
        seed,
        ..Default::default()
    }
}

/// Collect a shared simulator dataset on `track`.
pub fn simulator_records(track: &Track, duration_s: f64, seed: u64) -> Vec<Record> {
    collect_session(
        track,
        &CollectConfig::new(CollectionPath::Simulator, duration_s, seed),
    )
    .records
}

/// Train a model of `kind` on `records`.
pub fn train_model(
    kind: ModelKind,
    records: &[Record],
    epochs: usize,
    seed: u64,
) -> (CarModel, TrainReport) {
    let cfg = model_config(seed);
    let mut model = CarModel::build(kind, &cfg);
    let data = prepare_dataset(&records_to_dataset(records, &cfg), model.input_spec());
    let report = Trainer::new(TrainConfig {
        epochs,
        seed,
        ..Default::default()
    })
    .fit(&mut model, &data)
    // INVARIANT: zoo-built models always publish a valid graph spec; a
    // pre-flight rejection here means the zoo itself regressed.
    .unwrap_or_else(|errs| panic!("model graph rejected:\n{}", format_errors(&errs)));
    (model, report)
}

/// Autonomous evaluation of a trained model.
pub fn evaluate_model(
    model: CarModel,
    track: &Track,
    laps: usize,
    max_duration_s: f64,
    control_latency: f64,
) -> SessionResult {
    let mut sim = Simulation::new(
        track.clone(),
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            control_latency,
            store_images: false,
            ..Default::default()
        },
    );
    let mut pilot = ModelPilot::new(model);
    sim.run_laps(&mut pilot, laps, max_duration_s)
}

/// Format a float to fixed decimals as String (table helper).
pub fn f(v: f64, decimals: usize) -> String {
    format!("{:.*}", decimals, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;

    #[test]
    fn harness_trains_and_evaluates() {
        let track = circle_track(3.0, 0.8);
        let records = simulator_records(&track, 40.0, 1);
        assert_eq!(records.len(), 800);
        let (model, report) = train_model(ModelKind::Linear, &records, 4, 1);
        assert!(report.best_val_loss.is_finite());
        let session = evaluate_model(model, &track, 1, 30.0, 0.0);
        assert!(session.ticks > 0);
    }

    #[test]
    fn table_does_not_panic_on_ragged_rows() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
