//! Kernel benchmark trajectory: optimized GEMM/im2col kernels vs the
//! `autolearn_nn::kernels::reference` oracles at DonkeyCar shapes
//! (batch 32, 120×160 camera, first-layer conv geometry from the zoo).
//!
//! Writes `BENCH_kernels.json` at the repo root — median ns/op per case
//! plus the naive-over-optimized speedup — so the kernel performance
//! story is a committed, reproducible artifact rather than a claim.
//!
//!   cargo run --release -p autolearn-bench --bin kernel_bench
//!   cargo run --release -p autolearn-bench --bin kernel_bench -- --smoke
//!   cargo run --release -p autolearn-bench --bin kernel_bench -- --check BENCH_kernels.json
//!
//! `--smoke` runs one fast iteration at shrunken shapes and writes no
//! file; it exists so `scripts/ci.sh` can prove the harness itself still
//! runs without paying the full measurement cost. `--check <snapshot>`
//! re-measures at the committed shapes and fails (exit 1) if the
//! aggregate optimized time regressed more than 5% against the snapshot —
//! the gate that keeps instrumentation (and everything else) off the
//! kernel hot paths.

use autolearn_nn::kernels::{self, reference};
use autolearn_nn::layers::{Conv2D, Conv3D, Layer};
use autolearn_nn::Tensor;
use autolearn_util::rng::rng_from_seed;
use rand::Rng;
use std::hint::black_box;
use std::time::Instant;

/// One measured case: the production kernel and its naive oracle.
struct CaseResult {
    name: &'static str,
    optimized_ns: u64,
    reference_ns: u64,
}

impl CaseResult {
    fn speedup(&self) -> f64 {
        if self.optimized_ns == 0 {
            return 0.0;
        }
        self.reference_ns as f64 / self.optimized_ns as f64
    }
}

/// Median wall-clock ns of `iters` timed runs (after one untimed warmup).
fn median_ns<F: FnMut()>(iters: usize, mut f: F) -> u64 {
    f(); // warmup: fault in scratch buffers, warm caches
    let mut samples: Vec<u64> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_nanos() as u64
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn rand_vec(n: usize, rng: &mut impl Rng) -> Vec<f32> {
    (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Dense-layer GEMM at the zoo's flatten→Dense(64) geometry.
fn case_matmul(iters: usize, batch: usize, k: usize, n: usize) -> CaseResult {
    let mut rng = rng_from_seed(101);
    let a = rand_vec(batch * k, &mut rng);
    let b = rand_vec(k * n, &mut rng);
    let mut out = vec![0.0f32; batch * n];
    let optimized_ns = median_ns(iters, || {
        kernels::matmul_into(&mut out, &a, &b, batch, k, n);
        black_box(&out);
    });
    let reference_ns = median_ns(iters, || {
        reference::matmul(&a, &b, batch, k, n, &mut out);
        black_box(&out);
    });
    CaseResult {
        name: "matmul_dense",
        optimized_ns,
        reference_ns,
    }
}

/// First zoo conv layer: Conv2D(1→8, k5, s2) on the camera frame.
fn case_conv2d(iters: usize, batch: usize, h: usize, w: usize) -> (CaseResult, CaseResult) {
    let (c, f, k, s) = (1usize, 8usize, 5usize, 2usize);
    let mut rng = rng_from_seed(102);
    let mut conv = Conv2D::new(c, f, k, s, &mut rng);
    let x = Tensor::randn(&[batch, c, h, w], 1.0, &mut rng);
    let y = conv.forward(&x, true);

    let fwd_opt = median_ns(iters, || {
        black_box(conv.forward(&x, true));
    });
    let bwd_opt = median_ns(iters, || {
        conv.zero_grads();
        black_box(conv.backward(&y));
    });

    // Reference path on the identical weights.
    let wv = conv.w.value.data().to_vec();
    let bias = conv.b.value.data().to_vec();
    let mut out = vec![0.0f32; y.len()];
    let fwd_ref = median_ns(iters, || {
        reference::conv2d_forward(x.data(), &wv, &bias, batch, c, h, w, f, k, s, &mut out);
        black_box(&out);
    });
    let mut dx = vec![0.0f32; x.len()];
    let mut dw = vec![0.0f32; wv.len()];
    let mut db = vec![0.0f32; bias.len()];
    let bwd_ref = median_ns(iters, || {
        dx.fill(0.0);
        dw.fill(0.0);
        db.fill(0.0);
        reference::conv2d_backward(
            x.data(),
            &wv,
            y.data(),
            batch,
            c,
            h,
            w,
            f,
            k,
            s,
            &mut dx,
            &mut dw,
            &mut db,
        );
        black_box(&dx);
    });
    (
        CaseResult {
            name: "conv2d_forward",
            optimized_ns: fwd_opt,
            reference_ns: fwd_ref,
        },
        CaseResult {
            name: "conv2d_backward",
            optimized_ns: bwd_opt,
            reference_ns: bwd_ref,
        },
    )
}

/// First 3-D zoo conv: Conv3D(1→8, kt2, k5, st1, s2) over a short clip.
fn case_conv3d(
    iters: usize,
    batch: usize,
    t: usize,
    h: usize,
    w: usize,
) -> (CaseResult, CaseResult) {
    let (c, f, kt, k, st, s) = (1usize, 8usize, 2usize, 5usize, 1usize, 2usize);
    let mut rng = rng_from_seed(103);
    let mut conv = Conv3D::new(c, f, kt, k, st, s, &mut rng);
    let x = Tensor::randn(&[batch, c, t, h, w], 1.0, &mut rng);
    let y = conv.forward(&x, true);

    let fwd_opt = median_ns(iters, || {
        black_box(conv.forward(&x, true));
    });
    let bwd_opt = median_ns(iters, || {
        conv.zero_grads();
        black_box(conv.backward(&y));
    });

    let wv = conv.w.value.data().to_vec();
    let bias = conv.b.value.data().to_vec();
    let mut out = vec![0.0f32; y.len()];
    let fwd_ref = median_ns(iters, || {
        reference::conv3d_forward(
            x.data(),
            &wv,
            &bias,
            batch,
            c,
            t,
            h,
            w,
            f,
            kt,
            k,
            st,
            s,
            &mut out,
        );
        black_box(&out);
    });
    let mut dx = vec![0.0f32; x.len()];
    let mut dw = vec![0.0f32; wv.len()];
    let mut db = vec![0.0f32; bias.len()];
    let bwd_ref = median_ns(iters, || {
        dx.fill(0.0);
        dw.fill(0.0);
        db.fill(0.0);
        reference::conv3d_backward(
            x.data(),
            &wv,
            y.data(),
            batch,
            c,
            t,
            h,
            w,
            f,
            kt,
            k,
            st,
            s,
            &mut dx,
            &mut dw,
            &mut db,
        );
        black_box(&dx);
    });
    (
        CaseResult {
            name: "conv3d_forward",
            optimized_ns: fwd_opt,
            reference_ns: fwd_ref,
        },
        CaseResult {
            name: "conv3d_backward",
            optimized_ns: bwd_opt,
            reference_ns: bwd_ref,
        },
    )
}

fn render_json(results: &[CaseResult], batch: usize, h: usize, w: usize, iters: usize) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"bench\": \"kernels\",\n");
    s.push_str(&format!(
        "  \"shapes\": \"batch {batch}, camera {h}x{w}, conv2d f8 k5 s2, conv3d f8 kt2 k5, dense 7488->64\",\n"
    ));
    s.push_str(&format!("  \"iters_per_case\": {iters},\n"));
    s.push_str("  \"unit\": \"median ns per call\",\n");
    s.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            "    {{ \"name\": \"{}\", \"optimized_ns\": {}, \"reference_ns\": {}, \"speedup\": {:.2} }}{}\n",
            r.name,
            r.optimized_ns,
            r.reference_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Sum of the `"optimized_ns": N` fields in a snapshot JSON. Hand-parsed
/// (the snapshot is our own fixed format) so the bench binary stays free
/// of JSON dependencies.
fn snapshot_optimized_total(json: &str) -> Option<u64> {
    let mut total = 0u64;
    let mut seen = false;
    for chunk in json.split("\"optimized_ns\":").skip(1) {
        let digits: String = chunk
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect();
        total += digits.parse::<u64>().ok()?;
        seen = true;
    }
    seen.then_some(total)
}

/// Regression tolerance for `--check`: aggregate optimized ns may not
/// exceed the snapshot by more than this factor.
const CHECK_TOLERANCE: f64 = 1.05;

fn run_check(results: &[CaseResult], snapshot_path: &str) -> i32 {
    let json = match std::fs::read_to_string(snapshot_path) {
        Ok(s) => s,
        Err(e) => {
            println!("kernel_bench: cannot read snapshot {snapshot_path}: {e}");
            return 1;
        }
    };
    let Some(baseline) = snapshot_optimized_total(&json) else {
        println!("kernel_bench: snapshot {snapshot_path} has no optimized_ns fields");
        return 1;
    };
    let measured: u64 = results.iter().map(|r| r.optimized_ns).sum();
    let ratio = measured as f64 / baseline as f64;
    println!(
        "kernel_bench: check vs {snapshot_path}: measured {measured} ns, \
         snapshot {baseline} ns, ratio {ratio:.3} (limit {CHECK_TOLERANCE:.2})"
    );
    if ratio > CHECK_TOLERANCE {
        println!("kernel_bench: REGRESSION — optimized kernels are >5% slower than the snapshot");
        1
    } else {
        println!("kernel_bench: within tolerance");
        0
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .map(|i| args.get(i + 1).cloned().unwrap_or_else(|| "BENCH_kernels.json".into()));
    // Full run: DonkeyCar camera at batch 32. Smoke: one iteration at a
    // shrunken frame so CI proves the harness without the measurement cost.
    let (iters, batch, h, w, t) = if smoke {
        (1usize, 4usize, 24usize, 32usize, 3usize)
    } else {
        (11usize, 32usize, 120usize, 160usize, 3usize)
    };

    // Dense geometry downstream of the conv trunk: flatten of the third
    // conv's [32, 13, 18] output at 120x160, projected to 64 features.
    let (mk, mn) = if smoke { (64, 16) } else { (7488, 64) };

    let measure = || {
        let mut results = Vec::new();
        results.push(case_matmul(iters, batch, mk, mn));
        let (c2f, c2b) = case_conv2d(iters, batch, h, w);
        results.push(c2f);
        results.push(c2b);
        let (c3f, c3b) = case_conv3d(iters, batch, t, h, w);
        results.push(c3f);
        results.push(c3b);
        results
    };
    let mut results = measure();
    if check_path.is_some() {
        // The gate compares wall time, so one scheduler burst could fail a
        // healthy build: measure twice, keep each case's minimum.
        for (r, second) in results.iter_mut().zip(measure()) {
            r.optimized_ns = r.optimized_ns.min(second.optimized_ns);
            r.reference_ns = r.reference_ns.min(second.reference_ns);
        }
    }

    println!(
        "{:<18} {:>14} {:>14} {:>9}",
        "case", "optimized_ns", "reference_ns", "speedup"
    );
    for r in &results {
        println!(
            "{:<18} {:>14} {:>14} {:>8.2}x",
            r.name,
            r.optimized_ns,
            r.reference_ns,
            r.speedup()
        );
    }

    if smoke {
        println!("kernel_bench: smoke run complete (no snapshot written)");
        return;
    }

    if let Some(path) = check_path {
        std::process::exit(run_check(&results, &path));
    }

    let json = render_json(&results, batch, h, w, iters);
    let path = "BENCH_kernels.json";
    std::fs::write(path, json).expect("write BENCH_kernels.json");
    println!("kernel_bench: wrote {path}");
}
