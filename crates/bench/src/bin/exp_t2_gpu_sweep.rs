//! T2 — §3.3/§3.5: training time across the GPU nodes the paper tested
//! ("A100, V100, v100NVLINK, RTX6000, and P100"; "a v100 GPU ... allowed us
//! to train a model in reasonable amount of time").
//!
//! Shape target: A100 fastest, P100 slowest among the tested five, the Pi
//! hopeless in comparison; all GPUs land in "reasonable" single-digit
//! minutes for a 20k-record tub.

use autolearn_bench::print_table;
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_cloud::perf::{training_time, TrainingCostModel};
use autolearn_nn::models::{CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_util::SimDuration;

fn main() {
    println!("== T2: GPU training-time sweep (analytic device model) ==\n");
    // A paper-scale job: 20k records x 20 epochs, batch 32, at DonkeyCar's
    // full 160x120 RGB camera resolution (the resolution the paper's
    // students train at; the rest of the reproduction uses 40x30 for
    // speed, which only rescales this table).
    let examples = 20_000u64 * 20;
    let cfg = ModelConfig {
        height: 120,
        width: 160,
        channels: 3,
        ..Default::default()
    };

    let kinds = [ModelKind::Linear, ModelKind::Categorical, ModelKind::Rnn, ModelKind::ThreeD];
    let mut devices: Vec<ComputeDevice> = GpuKind::paper_tested()
        .iter()
        .map(|&g| ComputeDevice::of_gpu(g))
        .collect();
    devices.push(ComputeDevice::raspberry_pi4());
    devices.push(ComputeDevice::laptop());

    // Pure-compute time (what distinguishes the GPUs) and end-to-end time
    // (compute + per-batch launch/data overheads, the student experience).
    let mut rows = Vec::new();
    for device in &devices {
        let mut row = vec![device.name.clone()];
        for kind in kinds {
            let model = CarModel::build(kind, &cfg);
            let cost = TrainingCostModel::new(model.flops_per_inference(), examples, 32);
            let compute = SimDuration::from_secs(
                cost.total_train_flops() / (device.sustained_gflops * 1e9),
            );
            let total = training_time(&cost, device);
            row.push(format!("{compute} / {total}"));
        }
        rows.push(row);
    }
    print_table(
        &[
            "device",
            "linear (compute/total)",
            "categorical",
            "rnn",
            "3d",
        ],
        &rows,
    );

    println!("\nshape checks (20k records x 20 epochs, 160x120x3 frames):");
    println!("  - compute ordering A100 < V100-NVLink < V100 < RTX6000 < P100, strict");
    println!("  - end-to-end time on every tested GPU is 'reasonable' (< 30 min), and");
    println!("    largely launch/data-bound for models this small — the honest reason");
    println!("    the paper's GPU choice 'would work as well' across the whole range");
    println!("  - the Pi needs ~an hour of pure compute for the sequence models,");
    println!("    which is why training happens in the cloud");
}
