//! T3b — the closed-loop companion to T3: instead of modelling placement
//! latency analytically, run the *actual* remote-inference dataflow inside
//! the 20 Hz drive loop (in-flight requests, reply arrival, stale-reply
//! fallback) via `RemoteInferencePilot`.
//!
//! Shape targets: on a fast managed link the cloud drives nearly every
//! tick; as the link slows the hybrid's edge fallback takes over (cloud
//! fraction → 0) with no loss of driving quality, while pure cloud decays
//! into stale-command driving.

use autolearn::remotepilot::RemoteInferencePilot;
use autolearn_bench::{f, print_table, simulator_records, train_model};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_net::{Link, Path};
use autolearn_nn::models::{ModelKind, SavedModel};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
use autolearn_track::paper_oval;

fn main() {
    println!("== T3b: closed-loop remote inference ==\n");
    let track = paper_oval();
    let records = simulator_records(&track, 150.0, 7);
    let (mut model, _) = train_model(ModelKind::Linear, &records, 10, 7);
    let snapshot = SavedModel::capture(&mut model);

    let gpu = ComputeDevice::of_gpu(GpuKind::V100);
    let pi = ComputeDevice::raspberry_pi4();

    let mut rows = Vec::new();
    for rtt_ms in [4.0, 20.0, 60.0, 150.0, 400.0] {
        let path = Path::new(vec![Link::fabric_with_latency(rtt_ms / 2.0 / 1e3)]);
        for mode in ["hybrid", "cloud"] {
            let mut pilot = match mode {
                "hybrid" => RemoteInferencePilot::hybrid(
                    snapshot.restore(),
                    snapshot.restore(),
                    &path,
                    &gpu,
                    &pi,
                    9,
                ),
                _ => RemoteInferencePilot::cloud_only(snapshot.restore(), &path, &gpu, 9),
            };
            let mut sim = Simulation::new(
                track.clone(),
                CarConfig::default(),
                CameraConfig::small(),
                DriveConfig {
                    store_images: false,
                    ..Default::default()
                },
            );
            let session = sim.run(&mut pilot, 45.0);
            let stats = pilot.stats;
            rows.push(vec![
                f(rtt_ms, 0),
                mode.to_string(),
                f(stats.cloud_fraction(), 2),
                stats.stale_ticks.to_string(),
                format!("{:.1}%", session.autonomy() * 100.0),
                f(session.mean_speed(), 2),
                session.crashes.to_string(),
            ]);
        }
    }
    print_table(
        &["rtt (ms)", "mode", "cloud frac", "stale ticks", "autonomy", "v (m/s)", "crashes"],
        &rows,
    );

    println!("\nshape checks:");
    println!("  - hybrid: cloud fraction ~1.0 on fast links, → 0.0 on slow ones, with");
    println!("    driving quality held flat by the on-board fallback");
    println!("  - pure cloud: stale ticks appear as the link slows; quality decays");
}
