//! T9 — §3.3: tubclean's impact. "Learners will likely generate some bad
//! data consisting of mistakes (i.e., crashes or images that are off-side)
//! while driving; this data need to be deleted for the training set to
//! represent a valid scenario."
//!
//! Shape target: training on the cleaned tub beats training on the dirty
//! tub (lower validation loss and/or better autonomous driving), on data
//! from a sloppy driver.

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn_bench::{evaluate_model, f, print_table, train_model};
use autolearn_nn::models::ModelKind;
use autolearn_track::paper_oval;
use autolearn_tub::{CleanConfig, TubCleaner};

fn main() {
    println!("== T9: tubclean impact ==\n");
    let track = paper_oval();

    // A sloppy student's session: mistakes and excursions included.
    let collected = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::PhysicalCar, 240.0, 13),
    );
    let dirty = collected.records;
    let cleaner = TubCleaner::new(CleanConfig::default());
    let report = cleaner.analyse(&dirty);
    let flagged = report.flagged_ids();
    let cleaned: Vec<_> = dirty
        .iter()
        .filter(|r| !flagged.contains(&r.id))
        .cloned()
        .collect();

    println!(
        "session: {} records, {} flagged by tubclean ({} crash, {} off-track, {} near-incident, {} bad-image)\n",
        dirty.len(),
        report.count(),
        report.count_reason(autolearn_tub::clean::CleanReason::Crash),
        report.count_reason(autolearn_tub::clean::CleanReason::OffTrack),
        report.count_reason(autolearn_tub::clean::CleanReason::NearIncident),
        report.count_reason(autolearn_tub::clean::CleanReason::BadImage),
    );

    let mut rows = Vec::new();
    let mut results = Vec::new();
    for (name, records) in [("dirty", &dirty), ("cleaned", &cleaned)] {
        let (model, train) = train_model(ModelKind::Linear, records, 10, 13);
        let session = evaluate_model(model, &track, 3, 150.0, 0.0);
        results.push((name, train.best_val_loss, session.autonomy()));
        rows.push(vec![
            name.to_string(),
            records.len().to_string(),
            f(train.best_val_loss as f64, 4),
            format!("{:.1}%", session.autonomy() * 100.0),
            f(session.mean_speed(), 2),
            session.crashes.to_string(),
        ]);
    }
    print_table(
        &["training set", "records", "val loss", "autonomy", "v (m/s)", "crashes"],
        &rows,
    );

    let better = results[1].2 >= results[0].2 || results[1].1 <= results[0].1;
    println!(
        "\nshape check: cleaned training set {} the dirty one",
        if better { "matches or beats" } else { "UNEXPECTEDLY trails" }
    );
}
