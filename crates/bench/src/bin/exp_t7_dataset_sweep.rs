//! T7 — §3.3: dataset size. The paper's sample datasets hold "10-50K
//! records"; this sweep shows why that range: validation loss and driving
//! quality improve steeply at first and saturate.
//!
//! Shape target: monotone-ish improvement with diminishing returns; the
//! knee sits well below the top of the range. (Sizes here are scaled to the
//! reproduction's faster-converging synthetic camera; the *shape* is the
//! claim, as everywhere in this harness.)

use autolearn_bench::{evaluate_model, f, print_table, train_model};
use autolearn::collect::sample_dataset;
use autolearn_nn::models::ModelKind;
use autolearn_track::paper_oval;

fn main() {
    println!("== T7: dataset-size sweep ==\n");
    let track = paper_oval();
    // One big deterministic session, prefixes taken per size.
    let sizes = [250usize, 500, 1000, 2000, 4000, 8000];
    let largest = sizes.iter().copied().max().unwrap_or(0);
    let all = sample_dataset(&track, largest, 9);

    let mut rows = Vec::new();
    let mut last_loss = f32::INFINITY;
    let mut knee = None;
    for &n in &sizes {
        let records = &all[..n];
        let (model, report) = train_model(ModelKind::Linear, records, 10, 9);
        let session = evaluate_model(model, &track, 3, 120.0, 0.0);
        rows.push(vec![
            n.to_string(),
            f(report.best_val_loss as f64, 4),
            format!("{:.1}%", session.autonomy() * 100.0),
            f(session.mean_speed(), 2),
            session.crashes.to_string(),
        ]);
        // Knee: first size where loss improvement over the previous step
        // drops under 20%.
        if knee.is_none() && last_loss.is_finite() {
            let improvement = (last_loss - report.best_val_loss) / last_loss;
            if improvement < 0.2 && improvement > -0.5 {
                knee = Some(n);
            }
        }
        last_loss = report.best_val_loss;
    }
    print_table(
        &["records", "val loss", "autonomy", "v (m/s)", "crashes"],
        &rows,
    );

    match knee {
        Some(n) => println!(
            "\nshape check: diminishing returns from ~{n} records on — the paper's\n\
             10-50k guidance is the same knee at DonkeyCar's 160x120 resolution."
        ),
        None => println!("\nshape check: loss still improving at the largest size tested."),
    }
}
