//! F3 — Fig. 3: the paper's orange-tape oval vs the commercial Waveshare
//! track.
//!
//! Shape target: the oval's measured line lengths match the paper's
//! published dimensions (inner 330 in, outer 509 in, width 27.59 in); a
//! model trained per-track completes laps on both, slower on the twistier
//! Waveshare circuit.

use autolearn_bench::{evaluate_model, f, print_table, simulator_records, train_model};
use autolearn_nn::models::ModelKind;
use autolearn_track::{paper_oval, waveshare_track, Track, INCH};

fn main() {
    println!("== F3: Fig. 3 — track comparison ==\n");

    let tracks: Vec<Track> = vec![paper_oval(), waveshare_track()];

    let rows: Vec<Vec<String>> = tracks
        .iter()
        .map(|t| {
            vec![
                t.name().to_string(),
                f(t.length(), 1),
                f(t.inner_line_length() / INCH, 0),
                f(t.outer_line_length() / INCH, 0),
                f(t.mean_width() / INCH, 1),
                f(t.max_abs_curvature(), 2),
            ]
        })
        .collect();
    print_table(
        &["track", "centerline (m)", "inner (in)", "outer (in)", "width (in)", "max |k| (1/m)"],
        &rows,
    );
    println!("  paper's oval: inner 330 in, outer 509 in, average width 27.59 in\n");

    println!("training a linear model per track and racing it:\n");
    let mut rows = Vec::new();
    for track in &tracks {
        let records = simulator_records(track, 150.0, 7);
        let (model, report) = train_model(ModelKind::Linear, &records, 10, 7);
        let session = evaluate_model(model, track, 3, 150.0, 0.0);
        rows.push(vec![
            track.name().to_string(),
            f(report.best_val_loss as f64, 4),
            session.completed_laps().to_string(),
            f(session.mean_lap_time(), 1),
            format!("{:.1}%", session.autonomy() * 100.0),
            f(session.mean_speed(), 2),
            session.crashes.to_string(),
        ]);
    }
    print_table(
        &["track", "val loss", "laps", "lap time (s)", "autonomy", "v (m/s)", "crashes"],
        &rows,
    );
    println!("\nshape check: the oval's measured tape lengths reproduce the paper's");
    println!("dimensions; the Waveshare chicane costs speed relative to the oval.");
}
