//! T3 — §3.3 evaluation extensions / Zheng SC'23 poster: in-situ (edge) vs
//! in-the-cloud vs hybrid inference, swept over network RTT.
//!
//! Shape targets:
//! * edge latency is flat in RTT; cloud latency grows with RTT;
//! * a crossover RTT exists below which cloud inference is competitive;
//! * hybrid tracks the better of the two at every RTT;
//! * measured driving quality (autonomy/speed) degrades as the placement's
//!   latency grows — the closed-loop cost of remote inference.

use autolearn::placement::{max_safe_speed, InferencePlacement};
use autolearn_bench::{evaluate_model, f, print_table, simulator_records, train_model};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_net::{Link, Path};
use autolearn_nn::models::{DonkeyModel, ModelKind, SavedModel};
use autolearn_track::paper_oval;

fn main() {
    println!("== T3: inference placement (edge / cloud / hybrid) ==\n");
    let track = paper_oval();
    let records = simulator_records(&track, 150.0, 7);
    // The *inferred* model: it drives near 2 m/s, where perceive→act
    // latency genuinely costs lane-keeping (a slow model hides latency).
    let (mut model, _) = train_model(ModelKind::Inferred, &records, 12, 7);
    let snapshot = SavedModel::capture(&mut model);
    let flops = model.flops_per_inference();

    let pi = ComputeDevice::raspberry_pi4();
    let v100 = ComputeDevice::of_gpu(GpuKind::V100);
    let frame_bytes = 40 * 30 + 200u64;
    let k_max = track.max_abs_curvature();

    let mut rows = Vec::new();
    let mut edge_baseline: Option<(f64, usize)> = None;
    let mut quality_crossover: Option<f64> = None;
    for rtt_ms in [2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0] {
        let path = Path::new(vec![Link::fabric_with_latency(rtt_ms / 2.0 / 1e3)]);
        let placements = [
            InferencePlacement::Edge { device: pi.clone() },
            InferencePlacement::Cloud {
                gpu: v100.clone(),
                path: path.clone(),
                frame_bytes,
            },
            InferencePlacement::Hybrid {
                edge_device: pi.clone(),
                gpu: v100.clone(),
                path,
                frame_bytes,
                deadline_s: 0.045,
            },
        ];
        for p in placements {
            let lat = p.latency(flops, flops, 500, 3);
            let safe_v = max_safe_speed(lat.mean_s, 0.05, k_max, 0.2, 3.5);
            let session = evaluate_model(snapshot.restore(), &track, 100, 45.0, lat.mean_s);
            if p.name() == "edge" && edge_baseline.is_none() {
                edge_baseline = Some((session.autonomy(), session.crashes));
            }
            if p.name() == "cloud" && quality_crossover.is_none() {
                if let Some((edge_auto, edge_crashes)) = edge_baseline {
                    if session.autonomy() < edge_auto - 0.02
                        || session.crashes > edge_crashes + 2
                    {
                        quality_crossover = Some(rtt_ms);
                    }
                }
            }
            rows.push(vec![
                f(rtt_ms, 0),
                p.name().to_string(),
                f(lat.mean_s * 1e3, 1),
                f(lat.p95_s * 1e3, 1),
                f(lat.cloud_hit_rate, 2),
                f(safe_v, 2),
                format!("{:.1}%", session.autonomy() * 100.0),
                f(session.mean_speed(), 2),
                session.crashes.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "rtt (ms)", "placement", "lat mean", "lat p95", "cloud hit", "safe v", "autonomy",
            "v (m/s)", "crashes",
        ],
        &rows,
    );

    println!(
        "\nshape checks (model forward pass: {:.0} kFLOP — the Pi runs it in ~0.2 ms,\n\
         so pure latency always favours edge at this size):",
        flops as f64 / 1e3
    );
    match quality_crossover {
        Some(rtt) => println!(
            "  - cloud driving quality visibly degrades from RTT ≈ {rtt} ms \
             (more crashes / lower autonomy than edge)"
        ),
        None => println!("  - cloud quality never dropped below edge in the sweep (UNEXPECTED)"),
    }
    println!("  - hybrid's hit-rate column: ~1.0 while the deadline holds, 0.0 beyond,");
    println!("    where its latency (and driving) falls back to the edge numbers —");
    println!("    the Zheng poster's trade-off: cloud when close, edge insurance always.");
}
