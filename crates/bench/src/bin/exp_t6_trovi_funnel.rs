//! T6 — §5: Trovi's automatically collected artifact metrics.
//!
//! Shape target: reproduce the reported funnel exactly from an event log —
//! "35 total number of launch button clicks, 9 users who clicked the launch
//! button, 2 users who executed at least one cell, and it has been
//! published 8 versions of the artifact" — then show how the funnel narrows
//! under different engagement assumptions (the paper's "outcome rather than
//! impact" caveat).

use autolearn_bench::{f, print_table};
use autolearn_trovi::{Artifact, EventLog};

fn main() {
    println!("== T6: Trovi artifact-metrics funnel ==\n");

    let artifact = Artifact::autolearn_example();
    let log = EventLog::autolearn_observed(&artifact.slug);
    let m = log.metrics_for(&artifact.slug);

    print_table(
        &["metric", "paper (§5)", "reproduced"],
        &[
            vec!["launch clicks".into(), "35".into(), m.launch_clicks.to_string()],
            vec!["users who clicked".into(), "9".into(), m.unique_launch_users.to_string()],
            vec!["users executing ≥1 cell".into(), "2".into(), m.users_executed.to_string()],
            vec!["published versions".into(), "8".into(), artifact.version_count().to_string()],
        ],
    );

    println!("\nengagement-model sensitivity (synthetic funnels, 500 viewers):\n");
    let mut rows = Vec::new();
    for (p_click, p_exec) in [(0.05, 0.2), (0.1, 0.2), (0.2, 0.2), (0.2, 0.5), (0.4, 0.5)] {
        let log = EventLog::synthetic_funnel("syn", 500, p_click, p_exec, 42);
        let m = log.metrics_for("syn");
        rows.push(vec![
            f(p_click, 2),
            f(p_exec, 2),
            m.views.to_string(),
            m.unique_launch_users.to_string(),
            m.users_executed.to_string(),
            f(m.users_executed as f64 / m.views as f64 * 100.0, 1),
        ]);
    }
    print_table(
        &["p(click)", "p(execute)", "views", "clickers", "executors", "view→execute (%)"],
        &rows,
    );
    println!("\nthe funnel narrows at every stage under all assumptions; at the");
    println!("engagement levels real artifact hubs see (first rows), view→execute");
    println!("conversion sits in the low single digits — the AutoLearn funnel the");
    println!("paper reports (9 clickers → 2 executors) is typical, and why §5 calls");
    println!("these numbers an *outcome* measure rather than an impact measure.");
}
