//! Trace smoke: run one digital lesson under a seeded fault plan with the
//! telemetry layer on, prove the exported trace is deterministic and
//! well-shaped, and write it where a human can load it.
//!
//!   cargo run --release -p autolearn-bench --bin trace_smoke
//!
//! What it checks (exit 1 on any failure):
//! * two runs with the same seed and the same fault plan export
//!   byte-identical chrome://tracing JSON — the golden-trace property;
//! * the trace carries nested spans for all seven pipeline stages under
//!   one root `pipeline` span;
//! * the injected faults and retried attempts show up as child events;
//! * the JSON has the chrome-trace shape Perfetto expects
//!   (`displayTimeUnit`, a `traceEvents` array of `X`/`i` records).
//!
//! Writes `results/trace_smoke.json` (load it at chrome://tracing or
//! https://ui.perfetto.dev) and prints the compact summary to stdout.

use autolearn::lesson::run_digital_lesson_traced;
use autolearn::pipeline::PipelineConfig;
use autolearn_obs::Obs;
use autolearn_track::circle_track;
use autolearn_trovi::TroviHub;
use autolearn_util::fault::{FaultConfig, FaultPlan};
use autolearn_util::{RetryPolicy, SimTime};

/// Fault-plan seed chosen so the smoke trace actually shows recovery:
/// scanned at chaos(0.35), this seed injects three faults and the default
/// policy still finishes the lesson.
const PLAN_SEED: u64 = 7;
const CHAOS_RATE: f64 = 0.35;

fn tiny_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::lesson_default(77);
    cfg.collection.duration_s = 20.0;
    cfg.train.epochs = 2;
    cfg.eval_laps = 1;
    cfg.eval_max_duration_s = 10.0;
    cfg
}

/// One full traced lesson; returns the exported chrome trace, the compact
/// summary, and how many faults were injected.
fn traced_run(plan_seed: u64) -> (String, String, usize) {
    let mut hub = TroviHub::new();
    let track = circle_track(3.0, 0.8);
    let mut plan = FaultPlan::from_seed(plan_seed, FaultConfig::chaos(CHAOS_RATE));
    let mut obs = Obs::new();
    run_digital_lesson_traced(
        &mut hub,
        "trace-smoke",
        &track,
        tiny_config(),
        SimTime::ZERO,
        &mut plan,
        &RetryPolicy::default(),
        &mut obs,
    )
    .expect("traced lesson must recover under the default policy");
    let faults = plan.injected().len();
    (obs.export_chrome_trace(), obs.export_summary(), faults)
}

const STAGES: &[&str] = &[
    "collect",
    "clean",
    "reserve",
    "provision+upload",
    "train",
    "deploy-model",
    "evaluate",
];

fn check(ok: bool, what: &str, status: &mut i32) {
    if ok {
        println!("trace_smoke: ok   - {what}");
    } else {
        println!("trace_smoke: FAIL - {what}");
        *status = 1;
    }
}

fn main() {
    let mut status = 0;
    // An override seed (first CLI arg) exists for exploring other plans;
    // CI always runs the pinned PLAN_SEED.
    let plan_seed = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(PLAN_SEED);

    let (trace_a, summary, faults) = traced_run(plan_seed);
    let (trace_b, _, _) = traced_run(plan_seed);

    check(
        trace_a == trace_b,
        "same seed + same fault plan => byte-identical exported trace",
        &mut status,
    );

    // Chrome-trace shape: Perfetto needs displayTimeUnit + traceEvents,
    // and every record here is a complete span ("X") or an instant ("i").
    check(
        trace_a.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
        "chrome-trace envelope (displayTimeUnit + traceEvents)",
        &mut status,
    );
    check(
        trace_a.contains("\"ph\":\"X\"") && trace_a.contains("\"ph\":\"i\""),
        "complete-span and instant records present",
        &mut status,
    );

    // The full seven-stage loop under one root span.
    check(
        trace_a.contains("\"name\":\"pipeline\""),
        "root pipeline span",
        &mut status,
    );
    for stage in STAGES {
        check(
            trace_a.contains(&format!("\"name\":\"{stage}\"")),
            &format!("stage span `{stage}`"),
            &mut status,
        );
    }

    // Chaos made it into the trace: injected faults and retried attempts
    // appear as events/spans, not just as a final error code.
    check(faults > 0, "fault plan injected at least one fault", &mut status);
    check(
        trace_a.contains("\"name\":\"fault\""),
        "fault injections recorded as events",
        &mut status,
    );
    check(
        trace_a.contains("\"name\":\"attempt\""),
        "retry attempts recorded as spans",
        &mut status,
    );

    std::fs::create_dir_all("results").expect("create results/");
    let path = "results/trace_smoke.json";
    std::fs::write(path, &trace_a).expect("write trace_smoke.json");
    println!(
        "trace_smoke: wrote {path} ({} bytes, {faults} injected faults) — \
         load it at https://ui.perfetto.dev",
        trace_a.len()
    );
    println!("{summary}");

    std::process::exit(status);
}
