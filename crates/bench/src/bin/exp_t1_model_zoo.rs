//! T1 — §3.3: the six-model zoo, trained on one shared dataset and raced.
//!
//! Shape target: every model trains and drives; the *inferred* model wins
//! the combined speed-with-accuracy score ("we found that the inferred
//! model was best because it gave the car the ability to speed fast, while
//! still being accurate").

use autolearn::pathway::competition_score;
use autolearn_bench::{evaluate_model, f, print_table, simulator_records, train_model};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_cloud::perf::{training_time, TrainingCostModel};
use autolearn_nn::models::{DonkeyModel, ModelKind};
use autolearn_track::paper_oval;

fn main() {
    println!("== T1: §3.3 — the six-model zoo ==\n");
    let track = paper_oval();
    let records = simulator_records(&track, 180.0, 5);
    println!("shared dataset: {} records\n", records.len());

    let v100 = ComputeDevice::of_gpu(GpuKind::V100);
    let mut rows = Vec::new();
    let mut scores: Vec<(ModelKind, f64)> = Vec::new();

    for kind in ModelKind::all() {
        let (mut model, report) = train_model(kind, &records, 10, 5);
        let params = model.param_count();
        let flops = model.flops_per_inference();
        let cost = TrainingCostModel::new(flops, report.examples_seen, 32);
        let gpu_time = training_time(&cost, &v100);

        let session = evaluate_model(model, &track, 4, 150.0, 0.0);
        let score = competition_score(
            session.mean_speed(),
            session.autonomy(),
            session.errors_per_lap(),
        );
        scores.push((kind, score));
        rows.push(vec![
            kind.name().to_string(),
            params.to_string(),
            (flops / 1000).to_string(),
            format!("{gpu_time}"),
            f(report.best_val_loss as f64, 4),
            format!("{:.1}%", session.autonomy() * 100.0),
            f(session.mean_speed(), 2),
            f(session.errors_per_lap(), 2),
            f(score, 3),
        ]);
    }
    print_table(
        &[
            "model", "params", "kflops", "V100 train", "val loss", "autonomy", "v (m/s)",
            "err/lap", "score",
        ],
        &rows,
    );

    scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nranking by competition score:");
    for (i, (kind, score)) in scores.iter().enumerate() {
        println!("  {}. {:<12} {:.3}", i + 1, kind.name(), score);
    }
    println!(
        "\nshape check: paper's students found *inferred* best — reproduction winner: {} {}",
        scores[0].0.name(),
        if scores[0].0 == ModelKind::Inferred {
            "(MATCH)"
        } else {
            "(differs — see EXPERIMENTS.md discussion)"
        }
    );
}
