//! F1 — Fig. 1: the AutoLearn module pipeline (artifacts, computation,
//! extensions) executed end to end, with per-stage accounting.
//!
//! Shape target: all three component groups exercised; a complete lesson is
//! dominated by provisioning, not training, and produces a driving model.

use autolearn::pathway::{Component, LearningPathway};
use autolearn::pipeline::{Pipeline, PipelineConfig};
use autolearn_bench::{f, print_table};
use autolearn_track::paper_oval;

fn main() {
    println!("== F1: Fig. 1 — module pipeline walkthrough ==\n");

    // The three component groups of Fig. 1 across pathways.
    let mut rows = Vec::new();
    for p in LearningPathway::all() {
        let stages = p.stages();
        let count = |c: Component| stages.iter().filter(|s| s.component == c).count();
        rows.push(vec![
            p.name().to_string(),
            count(Component::Artifacts).to_string(),
            count(Component::Computation).to_string(),
            count(Component::Extensions).to_string(),
            p.requires_car().to_string(),
        ]);
    }
    print_table(
        &["pathway", "artifacts", "computation", "extensions", "needs car"],
        &rows,
    );

    // Execute the computation pipeline.
    println!("\nrunning the full computation pipeline (simulator path, linear model):\n");
    let mut config = PipelineConfig::lesson_default(42);
    config.collection.duration_s = 120.0;
    config.train.epochs = 10;
    let report = Pipeline::new(paper_oval(), config)
        .run()
        .expect("fault-free lesson pipeline runs");

    let rows: Vec<Vec<String>> = report
        .stages
        .iter()
        .map(|s| vec![s.stage.clone(), format!("{}", s.duration)])
        .collect();
    print_table(&["stage", "sim wall-clock"], &rows);
    println!("  total: {}", report.total_time());

    print_table(
        &["metric", "value"],
        &[
            vec!["records collected".into(), report.records_collected.to_string()],
            vec!["records after clean".into(), report.records_cleaned.to_string()],
            vec!["epochs".into(), report.train_report.epochs_ran.to_string()],
            vec!["best val loss".into(), f(report.train_report.best_val_loss as f64, 4)],
            vec!["eval laps".into(), report.eval_laps.to_string()],
            vec!["eval autonomy".into(), format!("{:.1}%", report.eval_autonomy * 100.0)],
            vec!["eval mean speed".into(), format!("{:.2} m/s", report.eval_mean_speed)],
        ],
    );

    let (Some(provision), Some(train)) =
        (report.stage("provision+upload"), report.stage("train"))
    else {
        eprintln!("report is missing the provision/train stages; skipping shape check");
        return;
    };
    println!(
        "\nshape check: provisioning ({provision}) {} training ({train}) — {}",
        if provision.as_secs() > train.as_secs() { ">" } else { "<=" },
        if provision.as_secs() > train.as_secs() {
            "matches the student experience the paper designs around"
        } else {
            "UNEXPECTED"
        }
    );
}
