//! A3 (ablation) — mirror augmentation. Students drive the oval in one
//! direction, so the dataset's steering is heavily one-sided; the standard
//! DonkeyCar fix is to mirror every frame and negate its steering.
//!
//! Shape target: the un-augmented model only drives the direction it saw;
//! the augmented model handles both directions.

use autolearn::collect::{collect_session, CollectConfig, CollectionPath};
use autolearn::dataset::{mirror_augment, records_to_dataset};
use autolearn::modelpilot::ModelPilot;
use autolearn_bench::{f, model_config, print_table};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelKind, SavedModel};
use autolearn_nn::{TrainConfig, Trainer};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
use autolearn_track::paper_oval;
use autolearn_tub::TubStats;

fn main() {
    println!("== A3: mirror augmentation ==\n");
    let track = paper_oval();
    let cfg = model_config(23);

    // One-direction (CCW) training data.
    let records = collect_session(
        &track,
        &CollectConfig::new(CollectionPath::Simulator, 150.0, 23),
    )
    .records;
    let plain_stats = TubStats::compute(&records, 15);
    let augmented = mirror_augment(&records);
    let aug_stats = TubStats::compute(&augmented, 15);
    println!(
        "steering mean: raw {:.3} (one-sided) → augmented {:.3} (symmetric)\n",
        plain_stats.steering_mean, aug_stats.steering_mean
    );

    let train = |recs: &[autolearn_tub::Record]| {
        let mut model = CarModel::build(ModelKind::Linear, &cfg);
        let data = prepare_dataset(&records_to_dataset(recs, &cfg), model.input_spec());
        Trainer::new(TrainConfig {
            epochs: 10,
            seed: 23,
            ..Default::default()
        })
        .fit(&mut model, &data)
        .expect("zoo graph validates");
        SavedModel::capture(&mut model)
    };

    let evaluate = |snapshot: &SavedModel, reverse: bool| {
        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        if reverse {
            let (pos, heading) = sim.track.start_pose();
            sim.vehicle
                .reset_to(pos, heading + std::f64::consts::PI);
        }
        let mut pilot = ModelPilot::new(snapshot.restore());
        let s = sim.run(&mut pilot, 45.0);
        (s.autonomy(), s.crashes, s.mean_speed())
    };

    let mut rows = Vec::new();
    for (name, recs) in [("raw (one direction)", &records), ("mirror-augmented", &augmented)] {
        let snapshot = train(recs);
        for reverse in [false, true] {
            let (auto, crashes, v) = evaluate(&snapshot, reverse);
            rows.push(vec![
                name.to_string(),
                if reverse { "CW (unseen)" } else { "CCW (trained)" }.to_string(),
                format!("{:.1}%", auto * 100.0),
                crashes.to_string(),
                f(v, 2),
            ]);
        }
    }
    print_table(
        &["training set", "direction", "autonomy", "crashes", "v (m/s)"],
        &rows,
    );

    println!("\nshape check: augmentation buys the unseen direction at no cost to");
    println!("the trained one — why the lesson's training notebook enables it.");
}
