//! T4 — Fowler SC'23 poster: "Optimizing Self-Driving Consistency With
//! Real-Time Speed Data".
//!
//! Compares constant-throttle driving against a PI speed controller closed
//! over the (noisy) wheel-speed measurement, on the noisy "real" car.
//!
//! Shape target: speed feedback cuts lap-time variance (CV) relative to
//! constant throttle at a comparable mean speed, and reduces errors.

use autolearn_bench::{f, print_table};
use autolearn_sim::{
    CameraConfig, CarConfig, DriveConfig, LinePilot, LinePilotConfig, Pilot, SessionResult,
    Simulation, SpeedController,
};
use autolearn_track::paper_oval;

fn run(pilot: &mut dyn Pilot, seed: u64) -> SessionResult {
    let mut sim = Simulation::new(
        paper_oval(),
        CarConfig::real_car(seed),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    sim.run_laps(pilot, 8, 400.0)
}

fn main() {
    println!("== T4: speed consistency (constant throttle vs speed feedback) ==\n");

    let mut rows = Vec::new();
    let mut cv_const_acc = 0.0;
    let mut cv_fb_acc = 0.0;
    let trials = 3;
    for seed in 0..trials {
        // Constant throttle (the paper's race mode).
        let mut constant = LinePilot::new(LinePilotConfig {
            constant_throttle: Some(0.42),
            seed,
            ..Default::default()
        });
        let s1 = run(&mut constant, seed);

        // Speed feedback holding the equivalent mean speed.
        let inner = LinePilot::new(LinePilotConfig {
            seed,
            ..Default::default()
        });
        let mut feedback = SpeedController::new(inner, 1.35);
        let s2 = run(&mut feedback, seed);

        cv_const_acc += s1.lap_time_cv();
        cv_fb_acc += s2.lap_time_cv();
        for (name, s) in [("constant", &s1), ("speed-pid", &s2)] {
            rows.push(vec![
                seed.to_string(),
                name.to_string(),
                s.completed_laps().to_string(),
                f(s.mean_lap_time(), 2),
                f(s.lap_time_cv() * 100.0, 1),
                f(s.mean_speed(), 2),
                f(s.errors_per_lap(), 2),
            ]);
        }
    }
    print_table(
        &["trial", "controller", "laps", "lap time (s)", "lap CV (%)", "v (m/s)", "err/lap"],
        &rows,
    );

    let cv_const = cv_const_acc / trials as f64;
    let cv_fb = cv_fb_acc / trials as f64;
    println!(
        "\nmean lap-time CV: constant {:.1}% vs speed-feedback {:.1}% — {}",
        cv_const * 100.0,
        cv_fb * 100.0,
        if cv_fb < cv_const {
            "feedback is more consistent (poster's claim reproduced)"
        } else {
            "UNEXPECTED"
        }
    );
}
