//! T11 — §3.2: "All hardware is available either on-demand or via advance
//! reservations ... to manage resource scarcity or to guarantee resource
//! availability at a specific time slot for a class."
//!
//! Monte-Carlo: a class of N students needs GPU nodes during a 2-hour slot
//! while background research jobs arrive all week. Compare the class's
//! blocking probability with and without an advance reservation.
//!
//! Shape target: with the advance reservation the class never blocks; on
//! demand it blocks increasingly often as background load grows.

use autolearn_bench::{f, print_table};
use autolearn_cloud::hardware::{GpuKind, NodeType, Site};
use autolearn_cloud::reservation::ReservationSystem;
use autolearn_util::rng::derive_rng;
use autolearn_util::{SimDuration, SimTime};
use rand::Rng;

fn small_site() -> Site {
    // A contended resource: the paper's 4-node V100 pool.
    Site {
        name: "CHI@UC-v100".to_string(),
        inventory: vec![(NodeType::gpu_node(GpuKind::V100, 4), 4)],
    }
}

/// One simulated week; returns whether the class got its 3 nodes.
fn trial(bg_jobs: usize, advance: bool, seed: u64) -> bool {
    let mut rng = derive_rng(seed, "resv-trial");
    let mut rs = ReservationSystem::new(small_site());
    let class_start = 3.5 * 86_400.0; // mid-week slot
    let class_len = 2.0 * 3600.0;

    if advance {
        // The instructor reserves at the start of the week.
        rs.reserve(
            "class",
            "gpu_v100",
            3,
            SimTime::from_secs(class_start),
            SimTime::from_secs(class_start + class_len),
        )
        .expect("empty calendar at booking time");
    }

    // Background research jobs trickle in over the week, each takes 1-3
    // nodes for 2-24 h, requested on demand at a random time.
    for _ in 0..bg_jobs {
        let t = rng.gen_range(0.0..7.0 * 86_400.0);
        let nodes = rng.gen_range(1..=3);
        let dur = rng.gen_range(2.0..24.0) * 3600.0;
        let _ = rs.on_demand("research", "gpu_v100", nodes, SimTime::from_secs(t), SimDuration::from_secs(dur));
    }

    if advance {
        true // the lease was already granted and cannot be displaced
    } else {
        rs.on_demand(
            "class",
            "gpu_v100",
            3,
            SimTime::from_secs(class_start),
            SimDuration::from_secs(class_len),
        )
        .is_ok()
    }
}

fn main() {
    println!("== T11: advance reservations vs on-demand for a class slot ==\n");
    let trials = 200;
    let mut rows = Vec::new();
    for bg_jobs in [5, 10, 20, 40, 80] {
        let ok_adv = (0..trials).filter(|&s| trial(bg_jobs, true, s)).count();
        let ok_dem = (0..trials).filter(|&s| trial(bg_jobs, false, s)).count();
        rows.push(vec![
            bg_jobs.to_string(),
            f(100.0 * (1.0 - ok_adv as f64 / trials as f64), 1),
            f(100.0 * (1.0 - ok_dem as f64 / trials as f64), 1),
        ]);
    }
    print_table(
        &["background jobs/week", "advance blocked (%)", "on-demand blocked (%)"],
        &rows,
    );
    println!("\nshape check: the advance column stays at 0% — the guarantee the");
    println!("paper's classroom deployment relies on; on-demand degrades with load.");
}
