//! T5 — §3.3/§3.4: digital-twin modeling — the same trained model in the
//! clean simulator and on the noisy "real" car.
//!
//! Shape targets: a non-zero twin gap (lateral divergence, autonomy drop on
//! the real car); and the *ranking* of models in the simulator carries over
//! to the real car (what makes the twin useful for iteration).

use autolearn::twin::twin_compare;
use autolearn_bench::{f, print_table, simulator_records, train_model};
use autolearn_nn::models::ModelKind;
use autolearn_track::paper_oval;

fn main() {
    println!("== T5: digital twin (simulator vs real car) ==\n");
    let track = paper_oval();
    let records = simulator_records(&track, 150.0, 21);

    let kinds = [ModelKind::Linear, ModelKind::Inferred, ModelKind::Categorical];
    let mut rows = Vec::new();
    let mut sim_rank = Vec::new();
    let mut real_rank = Vec::new();
    for kind in kinds {
        let (mut model, _) = train_model(kind, &records, 10, 21);
        let twin = twin_compare(&mut model, &track, 60.0, 21);
        sim_rank.push((kind, twin.sim_autonomy * twin.sim_mean_speed));
        real_rank.push((kind, twin.real_autonomy * twin.real_mean_speed));
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.1}%", twin.sim_autonomy * 100.0),
            format!("{:.1}%", twin.real_autonomy * 100.0),
            f(twin.sim_mean_speed, 2),
            f(twin.real_mean_speed, 2),
            format!("{:.1}%", twin.speed_gap() * 100.0),
            f(twin.lateral_divergence_m, 3),
            format!("{}/{}", twin.sim_laps, twin.real_laps),
        ]);
    }
    print_table(
        &[
            "model", "sim auto", "real auto", "sim v", "real v", "speed gap", "divergence (m)",
            "laps s/r",
        ],
        &rows,
    );

    let order = |mut v: Vec<(ModelKind, f64)>| {
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.into_iter().map(|(k, _)| k).collect::<Vec<_>>()
    };
    let so = order(sim_rank);
    let ro = order(real_rank);
    println!(
        "\nsim ranking : {:?}\nreal ranking: {:?}",
        so.iter().map(|k| k.name()).collect::<Vec<_>>(),
        ro.iter().map(|k| k.name()).collect::<Vec<_>>()
    );
    println!(
        "shape check: top model transfers sim→real: {}",
        if so[0] == ro[0] { "YES" } else { "NO (twin gap dominates)" }
    );
}
