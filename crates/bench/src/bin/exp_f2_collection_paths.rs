//! F2 — Fig. 2: the three data-collection paths (sample dataset, simulator,
//! physical car) feeding the same training pipeline.
//!
//! Shape target: all three produce interoperable tubs; the physical-car
//! path is noisier (higher steering variance, off-track incidents) and the
//! sample path is deterministic.

use autolearn::collect::{collect_session, sample_dataset, CollectConfig, CollectionPath};
use autolearn_bench::{f, print_table};
use autolearn_track::paper_oval;
use autolearn_tub::TubStats;

fn main() {
    println!("== F2: Fig. 2 — three data-collection paths ==\n");
    let track = paper_oval();
    let duration = 120.0;

    let mut rows = Vec::new();
    for path in CollectionPath::all() {
        let records = match path {
            CollectionPath::SampleDataset => sample_dataset(&track, 2400, 42),
            _ => {
                collect_session(&track, &CollectConfig::new(path, duration, 42)).records
            }
        };
        let stats = TubStats::compute(&records, 15);
        let mean_intensity: f64 = records
            .iter()
            .filter_map(|r| r.image.as_ref())
            .map(|i| i.mean_intensity())
            .sum::<f64>()
            / records.len() as f64;
        rows.push(vec![
            path.name().to_string(),
            stats.records.to_string(),
            f(stats.mean_hz, 1),
            f(stats.steering_std, 3),
            f(stats.straight_fraction(), 2),
            stats.off_track_count.to_string(),
            stats.crash_count.to_string(),
            f(mean_intensity, 1),
        ]);
    }
    print_table(
        &[
            "path", "records", "hz", "steer std", "straight frac", "off-track", "crashes",
            "mean px",
        ],
        &rows,
    );

    println!("\nshape checks:");
    println!("  - all paths record at the drive loop's 20 Hz into the same tub format");
    println!("  - physical-car steering variance exceeds the simulator's (driver+actuator noise)");
    println!("  - sample dataset == a deterministic simulator session (same generator)");
}
