//! A1 (ablation, DESIGN.md §4.2) — does the reproduction need the pixel
//! camera at all? Train the standard conv model on camera frames vs a tiny
//! dense policy on oracle track features (lateral, heading error,
//! curvature, speed), both supervised on the same driving session.
//!
//! Shape target: both drive, the oracle policy is orders of magnitude
//! cheaper — but it needs ground truth a real car doesn't have, which is
//! exactly why the module (and the paper) trains on camera pixels.

use autolearn_bench::{evaluate_model, f, print_table, simulator_records, train_model};
use autolearn_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use autolearn_nn::models::ModelKind;
use autolearn_nn::{Adam, Optimizer, Sequential, Tensor};
use autolearn_sim::{
    CameraConfig, CarConfig, Controls, DriveConfig, LinePilot, LinePilotConfig, Observation,
    Pilot, Simulation,
};
use autolearn_track::paper_oval;
use autolearn_util::rng::derive_rng;

/// A dense steering policy over oracle features.
struct OraclePilot {
    net: Sequential,
}

impl OraclePilot {
    fn features(obs: &Observation<'_>) -> Tensor {
        let p = obs.ground_truth.expect("oracle needs ground truth");
        Tensor::from_vec(
            &[1, 4],
            vec![
                p.lateral as f32,
                p.heading as f32,
                p.curvature as f32,
                obs.measured_speed as f32 / 3.5,
            ],
        )
    }
}

impl Pilot for OraclePilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let out = self.net.forward(&Self::features(obs), false);
        Controls::new(f64::from(out.data()[0]), f64::from(out.data()[1]).max(0.0))
    }

    fn name(&self) -> String {
        "oracle-dense".to_string()
    }
}

fn main() {
    println!("== A1: camera pixels vs oracle features (ablation) ==\n");
    let track = paper_oval();

    // --- Camera model: the standard pipeline. ------------------------------
    let records = simulator_records(&track, 150.0, 17);
    let (camera_model, camera_report) = train_model(ModelKind::Linear, &records, 10, 17);
    let camera_params = {
        let mut m = train_model(ModelKind::Linear, &records[..50], 1, 17).0;
        use autolearn_nn::models::DonkeyModel;
        m.param_count()
    };
    let camera_flops = {
        use autolearn_nn::models::DonkeyModel;
        camera_model.flops_per_inference()
    };
    let camera_session = evaluate_model(camera_model, &track, 3, 120.0, 0.0);

    // --- Oracle model: supervised on (features → controls) pairs. ----------
    let mut rng = derive_rng(17, "oracle");
    let mut net = Sequential::new()
        .push(Dense::new(4, 16, &mut rng))
        .push(ActivationLayer::new(Activation::Tanh))
        .push(Dense::new(16, 2, &mut rng));

    // Gather supervision by replaying the teacher with feature logging.
    let mut sim = Simulation::new(
        track.clone(),
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    let mut teacher = LinePilot::new(LinePilotConfig {
        seed: 17,
        ..Default::default()
    });
    let session = sim.run(&mut teacher, 150.0);
    let feats: Vec<f32> = session
        .frames
        .iter()
        .flat_map(|fr| {
            // Reconstruct the heading error the teacher saw: track tangent
            // minus car heading.
            let heading_err =
                autolearn_track::geometry::wrap_angle(fr.proj.heading - fr.state.heading);
            [
                fr.proj.lateral as f32,
                heading_err as f32,
                fr.proj.curvature as f32,
                (fr.state.speed / 3.5) as f32,
            ]
        })
        .collect();
    let targets: Vec<f32> = session
        .frames
        .iter()
        .flat_map(|fr| [fr.controls.steering as f32, fr.controls.throttle as f32])
        .collect();
    let n = session.frames.len();
    let x = Tensor::from_vec(&[n, 4], feats);
    let y = Tensor::from_vec(&[n, 2], targets);
    let mut opt = Adam::new(3e-3);
    for _ in 0..200 {
        let out = net.forward(&x, true);
        let (_, grad) = autolearn_nn::Loss::Mse.compute(&out, &y);
        let _ = net.backward(&grad);
        let mut params = net.params_mut();
        opt.step(&mut params);
    }
    let oracle_params: usize = {
        let mut tmp = net.params_mut();
        tmp.iter_mut().map(|p| p.value.len()).sum()
    };
    let oracle_flops = net.flops_per_example(&[1, 4]);

    let mut sim = Simulation::new(
        track.clone(),
        CarConfig::default(),
        CameraConfig::small(),
        DriveConfig {
            store_images: false,
            ..Default::default()
        },
    );
    let mut oracle = OraclePilot { net };
    let oracle_session = sim.run_laps(&mut oracle, 3, 120.0);

    print_table(
        &["policy", "params", "flops", "autonomy", "v (m/s)", "laps"],
        &[
            vec![
                "camera conv (linear)".into(),
                camera_params.to_string(),
                camera_flops.to_string(),
                format!("{:.1}%", camera_session.autonomy() * 100.0),
                f(camera_session.mean_speed(), 2),
                camera_session.completed_laps().to_string(),
            ],
            vec![
                "oracle dense".into(),
                oracle_params.to_string(),
                oracle_flops.to_string(),
                format!("{:.1}%", oracle_session.autonomy() * 100.0),
                f(oracle_session.mean_speed(), 2),
                oracle_session.completed_laps().to_string(),
            ],
        ],
    );
    println!(
        "\ncamera model val loss: {:.4}; flops ratio camera/oracle: {:.0}x",
        camera_report.best_val_loss,
        camera_flops as f64 / oracle_flops as f64
    );
    println!("both drive; the oracle is ~1000x cheaper but needs ground truth no");
    println!("real car has — the reproduction keeps the pixel path for fidelity.");
}
