//! T8 — §3.5: the BYOD "zero to ready" pathway vs manual setup.
//!
//! Shape targets: CHI@Edge onboarding is both faster end-to-end and,
//! decisively, cheaper in *attended* human time than hand-building the Pi;
//! the container relaunch (the per-session cost once onboarded) is seconds,
//! with the image pull paid once.

use autolearn_bench::print_table;
use autolearn_edge::{ByodWorkflow, ContainerRuntime, ImageSpec};
use autolearn_net::Path;

fn main() {
    println!("== T8: zero-to-ready (BYOD vs manual) ==\n");

    for (name, steps) in [
        ("CHI@Edge BYOD", ByodWorkflow::chi_at_edge()),
        ("manual setup", ByodWorkflow::manual_setup()),
    ] {
        println!("{name}:");
        let rows: Vec<Vec<String>> = steps
            .iter()
            .map(|s| {
                vec![
                    s.name.clone(),
                    format!("{}", s.duration),
                    if s.attended { "yes" } else { "" }.to_string(),
                ]
            })
            .collect();
        print_table(&["step", "duration", "attended"], &rows);
        let z = ByodWorkflow::timing(&steps);
        println!(
            "  total {} ({} attended)\n",
            z.total, z.attended
        );
    }

    let byod = ByodWorkflow::timing(&ByodWorkflow::chi_at_edge());
    let manual = ByodWorkflow::timing(&ByodWorkflow::manual_setup());
    println!(
        "speedup: {:.1}x total, {:.1}x attended time",
        manual.total.as_secs() / byod.total.as_secs(),
        manual.attended.as_secs() / byod.attended.as_secs()
    );

    println!("\nper-session container launch (after onboarding):");
    let mut rt = ContainerRuntime::new();
    let img = ImageSpec::autolearn();
    let (_, cold) = rt.launch(&img, &Path::car_to_cloud());
    let (_, warm) = rt.launch(&img, &Path::car_to_cloud());
    print_table(
        &["launch", "latency"],
        &[
            vec!["first (pulls 850 MB image)".into(), format!("{cold}")],
            vec!["subsequent (cached)".into(), format!("{warm}")],
        ],
    );
    println!("\nshape check: one Jupyter cell and ~{warm} gets a student a ready car.");
}
