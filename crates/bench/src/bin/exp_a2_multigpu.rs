//! A2 (ablation) — multi-GPU scaling on the paper's 4-GPU nodes, and why
//! the inventory distinguishes "v100" from "v100NVLINK".
//!
//! Shape targets: data-parallel speedup is sub-linear; NVLink beats PCIe
//! once gradients are big enough; AutoLearn's small models don't benefit
//! at all (the honest reason the notebooks use a single GPU).

use autolearn_bench::{f, print_table};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind};
use autolearn_cloud::perf::{multi_gpu_training_time, MultiGpuConfig, TrainingCostModel};

fn main() {
    println!("== A2: multi-GPU scaling (V100 vs V100-NVLink nodes) ==\n");
    let dev = ComputeDevice::of_gpu(GpuKind::V100);

    // Two workloads: AutoLearn's small model, and a research-scale one.
    let workloads = [
        ("autolearn-linear (300 kFLOP, 18k params)", TrainingCostModel::new(300_000, 400_000, 32), 18_500u64),
        ("research CNN (500 MFLOP, 25M params)", TrainingCostModel::new(500_000_000, 400_000, 64), 25_000_000u64),
    ];

    for (name, model, params) in &workloads {
        println!("{name}:");
        let mut rows = Vec::new();
        let base = multi_gpu_training_time(
            model,
            &dev,
            *params,
            &MultiGpuConfig { gpus: 1, nvlink: true },
        );
        for gpus in [1u32, 2, 4] {
            for nvlink in [false, true] {
                let t = multi_gpu_training_time(
                    model,
                    &dev,
                    *params,
                    &MultiGpuConfig { gpus, nvlink },
                );
                rows.push(vec![
                    gpus.to_string(),
                    if nvlink { "NVLink" } else { "PCIe" }.to_string(),
                    format!("{t}"),
                    f(base.as_secs() / t.as_secs(), 2),
                ]);
            }
        }
        print_table(&["gpus", "fabric", "time", "speedup"], &rows);
        println!();
    }

    println!("shape checks:");
    println!("  - the research CNN scales (sub-linearly), and NVLink pulls ahead of");
    println!("    PCIe at 4 GPUs — the reason Chameleon stocks both node types");
    println!("  - AutoLearn's small models gain nothing from 4 GPUs: allreduce +");
    println!("    launch overhead eat the divided compute, so the notebooks");
    println!("    rightly reserve a single GPU");
}
