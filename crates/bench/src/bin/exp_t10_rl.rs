//! T10 — §3.3/§3.4: the reinforcement-learning extension ("experiment with
//! reinforcement learning providing the opportunity for more advanced
//! assignments").
//!
//! Shape target: REINFORCE on the simulator improves episode return over a
//! random-initialised policy, and the learned policy steers corrective
//! (left-of-line → steer right).

use autolearn::rl::{train_reinforce, Policy, RlConfig};
use autolearn_bench::{f, print_table};
use autolearn_nn::Tensor;
use autolearn_track::circle_track;

fn main() {
    println!("== T10: reinforcement learning (REINFORCE) ==\n");
    let track = circle_track(2.5, 0.8);
    let cfg = RlConfig {
        episodes: 40,
        episode_s: 15.0,
        seed: 5,
        ..Default::default()
    };
    let mut policy = Policy::new(5);
    let report = train_reinforce(&track, &cfg, &mut policy);

    // Learning curve, bucketed by 5 episodes.
    let rows: Vec<Vec<String>> = report
        .returns
        .chunks(5)
        .enumerate()
        .map(|(i, chunk)| {
            let mean = chunk.iter().sum::<f64>() / chunk.len() as f64;
            let crashes: usize = report.crashes_per_episode
                [i * 5..(i * 5 + chunk.len()).min(report.crashes_per_episode.len())]
                .iter()
                .sum();
            vec![
                format!("{}-{}", i * 5, i * 5 + chunk.len() - 1),
                f(mean, 2),
                crashes.to_string(),
            ]
        })
        .collect();
    print_table(&["episodes", "mean return", "crashes"], &rows);

    let first = report.mean_return_first(8);
    let last = report.mean_return_last(8);
    println!(
        "\nmean return: first 8 episodes {:.2} → last 8 episodes {:.2} ({})",
        first,
        last,
        if last > first { "IMPROVED" } else { "no improvement" }
    );

    let ml = policy.mean(&Tensor::from_vec(&[1, 4], vec![0.3, 0.0, 0.4, 0.3]));
    let mr = policy.mean(&Tensor::from_vec(&[1, 4], vec![-0.3, 0.0, 0.4, 0.3]));
    println!(
        "policy steering: left-of-line → {:.2}, right-of-line → {:.2} ({})",
        ml,
        mr,
        if ml < mr { "corrective" } else // steer right when left of line
        { "not yet corrective" }
    );
}
