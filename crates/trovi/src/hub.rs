//! The hub itself: the catalog users search to "find experimental
//! artifacts, but interact with them easily" (§3.2).

use crate::artifact::Artifact;
use crate::metrics::{EventKind, EventLog};
use autolearn_util::SimTime;

/// A Trovi instance: artifacts plus the shared event log.
#[derive(Default)]
pub struct TroviHub {
    artifacts: Vec<Artifact>,
    pub events: EventLog,
}

impl TroviHub {
    pub fn new() -> TroviHub {
        TroviHub::default()
    }

    /// Publish (or replace) an artifact under its slug.
    pub fn publish(&mut self, artifact: Artifact) {
        if let Some(existing) = self.artifacts.iter_mut().find(|a| a.slug == artifact.slug) {
            *existing = artifact;
        } else {
            self.artifacts.push(artifact);
        }
    }

    pub fn len(&self) -> usize {
        self.artifacts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.artifacts.is_empty()
    }

    pub fn get(&self, slug: &str) -> Option<&Artifact> {
        self.artifacts.iter().find(|a| a.slug == slug)
    }

    pub fn get_mut(&mut self, slug: &str) -> Option<&mut Artifact> {
        self.artifacts.iter_mut().find(|a| a.slug == slug)
    }

    /// Free-text search over title/description (case-insensitive).
    pub fn search(&self, query: &str) -> Vec<&Artifact> {
        let q = query.to_lowercase();
        self.artifacts
            .iter()
            .filter(|a| {
                a.title.to_lowercase().contains(&q) || a.description.to_lowercase().contains(&q)
            })
            .collect()
    }

    /// All artifacts carrying `tag`.
    pub fn by_tag(&self, tag: &str) -> Vec<&Artifact> {
        self.artifacts
            .iter()
            .filter(|a| a.tags.iter().any(|t| t == tag))
            .collect()
    }

    /// A user views an artifact page (recorded automatically).
    pub fn view(&mut self, user: &str, slug: &str, at: SimTime) -> Option<&Artifact> {
        if self.get(slug).is_some() {
            self.events.record(user, slug, EventKind::View, at);
        }
        self.get(slug)
    }

    /// A user clicks "launch" — spawns the Jupyter environment and counts.
    pub fn launch(&mut self, user: &str, slug: &str, at: SimTime) -> bool {
        if self.get(slug).is_some() {
            self.events.record(user, slug, EventKind::LaunchClick, at);
            true
        } else {
            false
        }
    }

    /// A user executes a cell in a launched artifact.
    pub fn execute_cell(
        &mut self,
        user: &str,
        slug: &str,
        notebook: usize,
        cell: usize,
        at: SimTime,
    ) -> bool {
        let Some(artifact) = self.get_mut(slug) else {
            return false;
        };
        let Some(version) = artifact.versions.last_mut() else {
            return false;
        };
        let Some(nb) = version.notebooks.get_mut(notebook) else {
            return false;
        };
        if nb.execute_cell(cell) {
            self.events.record(user, slug, EventKind::CellExecution, at);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hub_with_autolearn() -> TroviHub {
        let mut hub = TroviHub::new();
        hub.publish(Artifact::autolearn_example());
        let mut other = Artifact::new("netperf", "Network performance labs", &["x"]);
        other.tags = vec!["networking".into(), "education".into()];
        other.description = "teaching-on-testbeds style networking exercises".into();
        other.publish_version(SimTime::ZERO, vec![], "v1");
        hub.publish(other);
        hub
    }

    #[test]
    fn search_finds_by_title_and_description() {
        let hub = hub_with_autolearn();
        assert_eq!(hub.search("edge to cloud").len(), 1);
        assert_eq!(hub.search("NETWORKING").len(), 1);
        assert_eq!(hub.search("zzz-nothing").len(), 0);
    }

    #[test]
    fn tag_queries() {
        let hub = hub_with_autolearn();
        assert_eq!(hub.by_tag("education").len(), 2);
        assert_eq!(hub.by_tag("chi-at-edge").len(), 1);
        assert!(hub.by_tag("quantum").is_empty());
    }

    #[test]
    fn interactions_feed_the_metrics() {
        let mut hub = hub_with_autolearn();
        let slug = "autolearn-edge-to-cloud";
        hub.view("alice", slug, SimTime::ZERO);
        assert!(hub.launch("alice", slug, SimTime::ZERO));
        // Cell 1 of notebook 0 is code → executes.
        assert!(hub.execute_cell("alice", slug, 0, 1, SimTime::ZERO));
        // Cell 0 is markdown → not an execution.
        assert!(!hub.execute_cell("alice", slug, 0, 0, SimTime::ZERO));
        let m = hub.events.metrics_for(slug);
        assert_eq!(m.views, 1);
        assert_eq!(m.launch_clicks, 1);
        assert_eq!(m.users_executed, 1);
        assert_eq!(m.cell_executions, 1);
    }

    #[test]
    fn unknown_slug_interactions_are_noops() {
        let mut hub = hub_with_autolearn();
        assert!(hub.view("a", "missing", SimTime::ZERO).is_none());
        assert!(!hub.launch("a", "missing", SimTime::ZERO));
        assert!(!hub.execute_cell("a", "missing", 0, 0, SimTime::ZERO));
        assert!(hub.events.is_empty());
    }

    #[test]
    fn republish_replaces() {
        let mut hub = hub_with_autolearn();
        let mut updated = Artifact::autolearn_example();
        updated.description = "updated".into();
        hub.publish(updated);
        assert_eq!(hub.len(), 2);
        assert_eq!(
            hub.get("autolearn-edge-to-cloud").unwrap().description,
            "updated"
        );
    }
}
