//! The artifact event log and the §5 metrics rollup.
//!
//! *"those can be obtained from Trovi, which for each artifact lists the
//! number of views as well as executions (benefit of platform integration),
//! defined as the execution of at least one cell in the artifact
//! packaging"*. The advantage the paper stresses is that these are
//! collected automatically, as a side effect of platform use — which is
//! exactly how this module works: the hub appends events, the rollup is
//! derived.

use autolearn_util::rng::derive_rng;
use autolearn_util::SimTime;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One interaction with an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub user: String,
    pub artifact: String,
    pub kind: EventKind,
    pub at: SimTime,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Artifact page view.
    View,
    /// "Launch" button click (spawns the Jupyter environment).
    LaunchClick,
    /// Execution of one notebook cell inside a launched artifact.
    CellExecution,
}

/// Append-only event log.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<Event>,
}

/// The §5 rollup for one artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArtifactMetrics {
    pub views: usize,
    pub launch_clicks: usize,
    pub unique_launch_users: usize,
    /// Users who executed at least one cell — Trovi's "execution" metric.
    pub users_executed: usize,
    pub cell_executions: usize,
}

impl EventLog {
    pub fn new() -> EventLog {
        EventLog::default()
    }

    pub fn record(&mut self, user: &str, artifact: &str, kind: EventKind, at: SimTime) {
        self.events.push(Event {
            user: user.to_string(),
            artifact: artifact.to_string(),
            kind,
            at,
        });
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Roll up the funnel for `artifact`.
    pub fn metrics_for(&self, artifact: &str) -> ArtifactMetrics {
        let mut views = 0;
        let mut clicks = 0;
        let mut cells = 0;
        let mut clickers: BTreeSet<&str> = BTreeSet::new();
        let mut executors: BTreeSet<&str> = BTreeSet::new();
        for e in self.events.iter().filter(|e| e.artifact == artifact) {
            match e.kind {
                EventKind::View => views += 1,
                EventKind::LaunchClick => {
                    clicks += 1;
                    clickers.insert(&e.user);
                }
                EventKind::CellExecution => {
                    cells += 1;
                    executors.insert(&e.user);
                }
            }
        }
        ArtifactMetrics {
            views,
            launch_clicks: clicks,
            unique_launch_users: clickers.len(),
            users_executed: executors.len(),
            cell_executions: cells,
        }
    }

    /// Replay the engagement the paper reports for AutoLearn (§5): 35
    /// launch-button clicks from 9 users, 2 of whom executed at least one
    /// cell. Views are not reported numerically in the paper; the synthetic
    /// log gives each clicking user a page view first.
    pub fn autolearn_observed(artifact: &str) -> EventLog {
        let mut log = EventLog::new();
        // 9 users; clicks distributed to total 35 (9 users, heavy-tailed).
        let clicks_per_user = [10, 7, 5, 4, 3, 2, 2, 1, 1];
        debug_assert_eq!(clicks_per_user.iter().sum::<i32>(), 35);
        let mut t = 0.0;
        for (i, &n) in clicks_per_user.iter().enumerate() {
            let user = format!("user{}", i + 1);
            log.record(&user, artifact, EventKind::View, SimTime::from_secs(t));
            t += 60.0;
            for _ in 0..n {
                log.record(&user, artifact, EventKind::LaunchClick, SimTime::from_secs(t));
                t += 300.0;
            }
        }
        // The two users who actually executed cells.
        for user in ["user1", "user3"] {
            for _ in 0..4 {
                log.record(user, artifact, EventKind::CellExecution, SimTime::from_secs(t));
                t += 30.0;
            }
        }
        log
    }

    /// A configurable engagement funnel: `population` viewers, each
    /// clicking launch with `p_click`, each clicker executing cells with
    /// `p_execute`. Used for the §5 sensitivity experiment ("outcome rather
    /// than impact" — how the funnel narrows).
    pub fn synthetic_funnel(
        artifact: &str,
        population: usize,
        p_click: f64,
        p_execute: f64,
        seed: u64,
    ) -> EventLog {
        let mut rng = derive_rng(seed, "trovi-funnel");
        let mut log = EventLog::new();
        let mut t = 0.0;
        for i in 0..population {
            let user = format!("u{i}");
            log.record(&user, artifact, EventKind::View, SimTime::from_secs(t));
            t += 10.0;
            if rng.gen::<f64>() < p_click {
                let clicks = 1 + rng.gen_range(0..4);
                for _ in 0..clicks {
                    log.record(&user, artifact, EventKind::LaunchClick, SimTime::from_secs(t));
                    t += 10.0;
                }
                if rng.gen::<f64>() < p_execute {
                    for _ in 0..rng.gen_range(1..6) {
                        log.record(
                            &user,
                            artifact,
                            EventKind::CellExecution,
                            SimTime::from_secs(t),
                        );
                        t += 10.0;
                    }
                }
            }
        }
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_funnel_reproduced_exactly() {
        let log = EventLog::autolearn_observed("autolearn");
        let m = log.metrics_for("autolearn");
        // §5: "35 total number of launch button clicks, 9 users who clicked
        // the launch button, 2 users who executed at least one cell".
        assert_eq!(m.launch_clicks, 35);
        assert_eq!(m.unique_launch_users, 9);
        assert_eq!(m.users_executed, 2);
    }

    #[test]
    fn rollup_isolates_artifacts() {
        let mut log = EventLog::new();
        log.record("a", "art1", EventKind::LaunchClick, SimTime::ZERO);
        log.record("a", "art2", EventKind::LaunchClick, SimTime::ZERO);
        assert_eq!(log.metrics_for("art1").launch_clicks, 1);
        assert_eq!(log.metrics_for("art2").launch_clicks, 1);
        assert_eq!(log.metrics_for("art3").launch_clicks, 0);
    }

    #[test]
    fn unique_users_deduplicated() {
        let mut log = EventLog::new();
        for _ in 0..5 {
            log.record("same", "a", EventKind::LaunchClick, SimTime::ZERO);
        }
        let m = log.metrics_for("a");
        assert_eq!(m.launch_clicks, 5);
        assert_eq!(m.unique_launch_users, 1);
    }

    #[test]
    fn synthetic_funnel_narrows() {
        let log = EventLog::synthetic_funnel("a", 500, 0.3, 0.2, 1);
        let m = log.metrics_for("a");
        assert_eq!(m.views, 500);
        assert!(m.unique_launch_users < m.views);
        assert!(m.users_executed < m.unique_launch_users);
        assert!(m.users_executed > 0);
        // Click-through in the right ballpark.
        let ctr = m.unique_launch_users as f64 / 500.0;
        assert!((ctr - 0.3).abs() < 0.08, "ctr {ctr}");
    }

    #[test]
    fn funnel_deterministic_by_seed() {
        let a = EventLog::synthetic_funnel("a", 100, 0.4, 0.5, 7);
        let b = EventLog::synthetic_funnel("a", 100, 0.4, 0.5, 7);
        assert_eq!(a.metrics_for("a"), b.metrics_for("a"));
    }
}
