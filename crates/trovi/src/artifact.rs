//! Artifacts, versions, notebooks.

use autolearn_util::SimTime;
use serde::{Deserialize, Serialize};

/// A notebook cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cell {
    pub kind: CellKind,
    pub source: String,
    pub executed: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellKind {
    Markdown,
    Code,
}

impl Cell {
    pub fn code(source: &str) -> Cell {
        Cell {
            kind: CellKind::Code,
            source: source.to_string(),
            executed: false,
        }
    }

    pub fn markdown(source: &str) -> Cell {
        Cell {
            kind: CellKind::Markdown,
            source: source.to_string(),
            executed: false,
        }
    }
}

/// A Jupyter notebook: the unit AutoLearn's instructional material ships
/// in ("a series of Jupyter notebooks that can be imported/exported to the
/// GitBook", §3.5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Notebook {
    pub name: String,
    pub cells: Vec<Cell>,
}

impl Notebook {
    pub fn new(name: &str, cells: Vec<Cell>) -> Notebook {
        Notebook {
            name: name.to_string(),
            cells,
        }
    }

    /// Execute a code cell (markdown cells are not executable).
    pub fn execute_cell(&mut self, index: usize) -> bool {
        match self.cells.get_mut(index) {
            Some(cell) if cell.kind == CellKind::Code => {
                cell.executed = true;
                true
            }
            _ => false,
        }
    }

    pub fn executed_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.executed).count()
    }

    pub fn code_cells(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.kind == CellKind::Code)
            .count()
    }
}

/// One published version of an artifact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Version {
    pub number: u32,
    pub published_at: SimTime,
    pub notebooks: Vec<Notebook>,
    pub changelog: String,
}

/// A Trovi artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Artifact {
    pub slug: String,
    pub title: String,
    pub authors: Vec<String>,
    pub tags: Vec<String>,
    pub description: String,
    pub versions: Vec<Version>,
}

impl Artifact {
    pub fn new(slug: &str, title: &str, authors: &[&str]) -> Artifact {
        Artifact {
            slug: slug.to_string(),
            title: title.to_string(),
            authors: authors.iter().map(|s| s.to_string()).collect(),
            tags: Vec::new(),
            description: String::new(),
            versions: Vec::new(),
        }
    }

    /// The AutoLearn artifact as published (September 2023, 8 versions by
    /// the time of writing — §5).
    pub fn autolearn_example() -> Artifact {
        let mut a = Artifact::new(
            "autolearn-edge-to-cloud",
            "AutoLearn: Learning in the Edge to Cloud Continuum",
            &["Esquivel Morel", "Fowler", "Keahey", "Zheng", "Sherman", "Anderson"],
        );
        a.tags = vec![
            "education".to_string(),
            "edge".to_string(),
            "machine-learning".to_string(),
            "chi-at-edge".to_string(),
        ];
        a.description = "Educational module teaching cloud, edge and ML with \
                         a small-scale self-driving car on Chameleon"
            .to_string();
        for v in 0..8 {
            a.publish_version(
                SimTime::from_secs(v as f64 * 7.0 * 86_400.0),
                vec![
                    Notebook::new(
                        "01-collect-data.ipynb",
                        vec![
                            Cell::markdown("# Collect driving data"),
                            Cell::code("!donkey createcar --path /car"),
                            Cell::code("!python manage.py drive"),
                        ],
                    ),
                    Notebook::new(
                        "02-train-model.ipynb",
                        vec![
                            Cell::markdown("# Reserve a GPU node and train"),
                            Cell::code("lease = chi.lease.create_lease(...)"),
                            Cell::code("!donkey train --tub /car/data --model linear"),
                        ],
                    ),
                    Notebook::new(
                        "03-evaluate.ipynb",
                        vec![
                            Cell::markdown("# Deploy to the car and evaluate"),
                            Cell::code("container = chi.container.create_container(...)"),
                        ],
                    ),
                ],
                &format!("release {}", v + 1),
            );
        }
        a
    }

    pub fn publish_version(
        &mut self,
        at: SimTime,
        notebooks: Vec<Notebook>,
        changelog: &str,
    ) -> u32 {
        let number = self.versions.len() as u32 + 1;
        self.versions.push(Version {
            number,
            published_at: at,
            notebooks,
            changelog: changelog.to_string(),
        });
        number
    }

    pub fn latest(&self) -> Option<&Version> {
        self.versions.last()
    }

    pub fn version_count(&self) -> usize {
        self.versions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_increments_versions() {
        let mut a = Artifact::new("x", "X", &["me"]);
        assert_eq!(a.publish_version(SimTime::ZERO, vec![], "v1"), 1);
        assert_eq!(a.publish_version(SimTime::ZERO, vec![], "v2"), 2);
        assert_eq!(a.version_count(), 2);
        assert_eq!(a.latest().unwrap().number, 2);
    }

    #[test]
    fn autolearn_example_matches_paper() {
        let a = Artifact::autolearn_example();
        assert_eq!(a.version_count(), 8);
        assert_eq!(a.latest().unwrap().notebooks.len(), 3);
        assert!(a.tags.contains(&"education".to_string()));
    }

    #[test]
    fn only_code_cells_execute() {
        let mut nb = Notebook::new(
            "t",
            vec![Cell::markdown("# hi"), Cell::code("print(1)")],
        );
        assert!(!nb.execute_cell(0)); // markdown
        assert!(nb.execute_cell(1));
        assert!(!nb.execute_cell(5)); // out of range
        assert_eq!(nb.executed_cells(), 1);
        assert_eq!(nb.code_cells(), 1);
    }
}
