//! The contribution / community flow.
//!
//! §4: learners "can start their own educational module ... synced ...
//! make additional changes ... make a merge request to the original
//! repository so then the learning community can have access to different
//! versions and updates of the project". This module models that
//! fork → edit → merge-request → accept loop on top of [`crate::Artifact`].

use crate::artifact::{Artifact, Notebook};
use autolearn_util::SimTime;
use serde::{Deserialize, Serialize};

/// A learner's fork of an artifact version.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fork {
    pub id: u64,
    pub owner: String,
    pub base_artifact: String,
    pub base_version: u32,
    /// The forked (editable) notebooks.
    pub notebooks: Vec<Notebook>,
}

/// Merge-request lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergeStatus {
    Open,
    Accepted,
    Rejected,
}

/// A proposed contribution back to the original artifact.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MergeRequest {
    pub id: u64,
    pub fork_id: u64,
    pub summary: String,
    pub status: MergeStatus,
}

/// The hub-side contribution machinery.
#[derive(Debug, Default)]
pub struct ContributionHub {
    forks: Vec<Fork>,
    merge_requests: Vec<MergeRequest>,
    next_id: u64,
}

impl ContributionHub {
    pub fn new() -> ContributionHub {
        ContributionHub::default()
    }

    /// Fork the latest version of `artifact` for `owner`.
    pub fn fork(&mut self, artifact: &Artifact, owner: &str) -> Option<u64> {
        let latest = artifact.latest()?;
        self.next_id += 1;
        self.forks.push(Fork {
            id: self.next_id,
            owner: owner.to_string(),
            base_artifact: artifact.slug.clone(),
            base_version: latest.number,
            notebooks: latest.notebooks.clone(),
        });
        Some(self.next_id)
    }

    pub fn fork_mut(&mut self, id: u64) -> Option<&mut Fork> {
        self.forks.iter_mut().find(|f| f.id == id)
    }

    /// Open a merge request from a fork.
    pub fn open_merge_request(&mut self, fork_id: u64, summary: &str) -> Option<u64> {
        self.forks.iter().find(|f| f.id == fork_id)?;
        self.next_id += 1;
        self.merge_requests.push(MergeRequest {
            id: self.next_id,
            fork_id,
            summary: summary.to_string(),
            status: MergeStatus::Open,
        });
        Some(self.next_id)
    }

    /// Maintainer accepts: the fork's notebooks become a new published
    /// version of the artifact.
    pub fn accept(
        &mut self,
        mr_id: u64,
        artifact: &mut Artifact,
        at: SimTime,
    ) -> Option<u32> {
        let mr = self
            .merge_requests
            .iter_mut()
            .find(|m| m.id == mr_id && m.status == MergeStatus::Open)?;
        let fork = self.forks.iter().find(|f| f.id == mr.fork_id)?;
        if fork.base_artifact != artifact.slug {
            return None;
        }
        mr.status = MergeStatus::Accepted;
        Some(artifact.publish_version(at, fork.notebooks.clone(), &mr.summary))
    }

    pub fn reject(&mut self, mr_id: u64) {
        if let Some(mr) = self
            .merge_requests
            .iter_mut()
            .find(|m| m.id == mr_id && m.status == MergeStatus::Open)
        {
            mr.status = MergeStatus::Rejected;
        }
    }

    pub fn open_requests(&self) -> Vec<&MergeRequest> {
        self.merge_requests
            .iter()
            .filter(|m| m.status == MergeStatus::Open)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::Cell;

    fn artifact() -> Artifact {
        let mut a = Artifact::new("mod", "Module", &["prof"]);
        a.publish_version(
            SimTime::ZERO,
            vec![Notebook::new("nb", vec![Cell::code("x = 1")])],
            "v1",
        );
        a
    }

    #[test]
    fn fork_edit_merge_cycle() {
        let mut a = artifact();
        let mut hub = ContributionHub::new();
        let fork_id = hub.fork(&a, "student").unwrap();

        // Student edits their fork.
        hub.fork_mut(fork_id).unwrap().notebooks[0]
            .cells
            .push(Cell::code("extension: rl training"));

        let mr = hub.open_merge_request(fork_id, "add RL extension").unwrap();
        assert_eq!(hub.open_requests().len(), 1);

        let v = hub.accept(mr, &mut a, SimTime::from_secs(100.0)).unwrap();
        assert_eq!(v, 2);
        assert_eq!(a.version_count(), 2);
        assert_eq!(a.latest().unwrap().notebooks[0].cells.len(), 2);
        assert!(hub.open_requests().is_empty());
    }

    #[test]
    fn accept_twice_is_noop() {
        let mut a = artifact();
        let mut hub = ContributionHub::new();
        let f = hub.fork(&a, "s").unwrap();
        let mr = hub.open_merge_request(f, "x").unwrap();
        assert!(hub.accept(mr, &mut a, SimTime::ZERO).is_some());
        assert!(hub.accept(mr, &mut a, SimTime::ZERO).is_none());
        assert_eq!(a.version_count(), 2);
    }

    #[test]
    fn reject_closes_request() {
        let mut a = artifact();
        let mut hub = ContributionHub::new();
        let f = hub.fork(&a, "s").unwrap();
        let mr = hub.open_merge_request(f, "bad idea").unwrap();
        hub.reject(mr);
        assert!(hub.open_requests().is_empty());
        assert!(hub.accept(mr, &mut a, SimTime::ZERO).is_none());
    }

    #[test]
    fn fork_tracks_base_version() {
        let mut a = artifact();
        a.publish_version(SimTime::ZERO, vec![], "v2");
        let mut hub = ContributionHub::new();
        let f = hub.fork(&a, "s").unwrap();
        assert_eq!(hub.fork_mut(f).unwrap().base_version, 2);
    }

    #[test]
    fn cannot_merge_into_wrong_artifact() {
        let mut a = artifact();
        let mut other = Artifact::new("other", "Other", &["x"]);
        other.publish_version(SimTime::ZERO, vec![], "v1");
        let mut hub = ContributionHub::new();
        let f = hub.fork(&a, "s").unwrap();
        let mr = hub.open_merge_request(f, "x").unwrap();
        assert!(hub.accept(mr, &mut other, SimTime::ZERO).is_none());
        assert!(hub.accept(mr, &mut a, SimTime::ZERO).is_some());
    }
}
