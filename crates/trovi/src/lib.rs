//! Trovi: the digital-artifact hub.
//!
//! §2/§3.5/§5: AutoLearn is packaged as Jupyter notebooks published on
//! Trovi, "an experiment hub integrated with the testbed ... so that users
//! can not only find experimental artifacts, but interact with them
//! easily". Trovi tracks, per artifact, "the number of views as well as
//! executions ... defined as the execution of at least one cell in the
//! artifact packaging", plus version lifecycle and metadata — the exact
//! metrics §5 reports for AutoLearn (35 launch clicks, 9 distinct clicking
//! users, 2 users executing ≥1 cell, 8 published versions).
//!
//! Modules: [`artifact`] (artifacts, versions, notebooks/cells),
//! [`metrics`] (the event log and the funnel rollup §5 reports), and
//! [`contrib`] (the fork → merge-request community flow §4 describes).

pub mod artifact;
pub mod contrib;
pub mod hub;
pub mod metrics;

pub use artifact::{Artifact, Cell, CellKind, Notebook, Version};
pub use contrib::{ContributionHub, Fork, MergeRequest, MergeStatus};
pub use hub::TroviHub;
pub use metrics::{ArtifactMetrics, Event, EventKind, EventLog};
