//! Closed-polyline utilities: resampling, arc length, heading, curvature.

use crate::geometry::Vec2;

/// Perimeter of the closed polygon through `pts`.
pub fn closed_length(pts: &[Vec2]) -> f64 {
    if pts.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..pts.len() {
        let j = (i + 1) % pts.len();
        total += pts[i].dist(pts[j]);
    }
    total
}

/// Resample a closed polyline to points spaced (approximately) `ds` apart
/// along the perimeter. The output has at least 8 points and starts at
/// `pts[0]`.
pub fn resample_closed(pts: &[Vec2], ds: f64) -> Vec<Vec2> {
    assert!(pts.len() >= 3, "closed polyline needs at least 3 points");
    assert!(ds > 0.0, "sample spacing must be positive");
    let total = closed_length(pts);
    let n = ((total / ds).round() as usize).max(8);
    let step = total / n as f64;

    let mut out = Vec::with_capacity(n);
    let mut seg = 0usize; // current segment start index
    let mut seg_start = pts[0];
    let mut seg_end = pts[1 % pts.len()];
    let mut seg_len = seg_start.dist(seg_end);
    let mut into_seg = 0.0; // distance already consumed within current segment

    out.push(pts[0]);
    let mut remaining = step;
    while out.len() < n {
        // Walk forward `remaining` meters along the polyline.
        while into_seg + remaining >= seg_len {
            remaining -= seg_len - into_seg;
            seg += 1;
            into_seg = 0.0;
            seg_start = pts[seg % pts.len()];
            seg_end = pts[(seg + 1) % pts.len()];
            seg_len = seg_start.dist(seg_end);
            // Skip degenerate segments (repeated points).
            if seg_len < 1e-12 {
                seg_len = 0.0;
                continue;
            }
        }
        into_seg += remaining;
        let t = if seg_len > 0.0 { into_seg / seg_len } else { 0.0 };
        out.push(seg_start.lerp(seg_end, t));
        remaining = step;
    }
    out
}

/// Cumulative arc length at each point of a closed polyline; `out[0] == 0`,
/// and the implicit wrap-around segment closes the loop. Returns
/// (per-point station, total length).
pub fn cumulative_arclength(pts: &[Vec2]) -> (Vec<f64>, f64) {
    let mut s = Vec::with_capacity(pts.len());
    let mut acc = 0.0;
    for i in 0..pts.len() {
        s.push(acc);
        let j = (i + 1) % pts.len();
        acc += pts[i].dist(pts[j]);
    }
    (s, acc)
}

/// Per-point unit tangents of a closed polyline (central difference).
pub fn tangents(pts: &[Vec2]) -> Vec<Vec2> {
    let n = pts.len();
    (0..n)
        .map(|i| {
            let prev = pts[(i + n - 1) % n];
            let next = pts[(i + 1) % n];
            (next - prev).normalized()
        })
        .collect()
}

/// Per-point signed curvature (1/m) of a closed polyline, positive for
/// counter-clockwise turning. Uses the discrete Menger curvature of each
/// point with its neighbours.
pub fn curvatures(pts: &[Vec2]) -> Vec<f64> {
    let n = pts.len();
    (0..n)
        .map(|i| {
            let a = pts[(i + n - 1) % n];
            let b = pts[i];
            let c = pts[(i + 1) % n];
            menger_curvature(a, b, c)
        })
        .collect()
}

/// Signed Menger curvature of three points: 2·cross / (|ab|·|bc|·|ca|).
pub fn menger_curvature(a: Vec2, b: Vec2, c: Vec2) -> f64 {
    let ab = b - a;
    let bc = c - b;
    let denom = ab.norm() * bc.norm() * (c - a).norm();
    if denom < 1e-12 {
        0.0
    } else {
        2.0 * ab.cross(bc) / denom
    }
}

/// One round of Chaikin corner-cutting on a closed polyline: each segment
/// contributes its 1/4 and 3/4 points. Repeated rounds converge to a smooth
/// quadratic B-spline — used to round the sharp corners of hand-specified
/// waypoint loops before building a `Track`.
pub fn chaikin_smooth(pts: &[Vec2], rounds: usize) -> Vec<Vec2> {
    let mut cur = pts.to_vec();
    for _ in 0..rounds {
        let n = cur.len();
        let mut next = Vec::with_capacity(2 * n);
        for i in 0..n {
            let a = cur[i];
            let b = cur[(i + 1) % n];
            next.push(a.lerp(b, 0.25));
            next.push(a.lerp(b, 0.75));
        }
        cur = next;
    }
    cur
}

/// Signed area of a closed polygon (positive = counter-clockwise winding).
pub fn signed_area(pts: &[Vec2]) -> f64 {
    let n = pts.len();
    let mut acc = 0.0;
    for i in 0..n {
        let j = (i + 1) % n;
        acc += pts[i].cross(pts[j]);
    }
    acc / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn unit_square() -> Vec<Vec2> {
        vec![
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(1.0, 1.0),
            Vec2::new(0.0, 1.0),
        ]
    }

    fn circle(r: f64, n: usize) -> Vec<Vec2> {
        (0..n)
            .map(|i| {
                let a = 2.0 * PI * i as f64 / n as f64;
                Vec2::new(r * a.cos(), r * a.sin())
            })
            .collect()
    }

    #[test]
    fn square_perimeter() {
        assert!((closed_length(&unit_square()) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn resample_spacing_uniform() {
        let pts = resample_closed(&unit_square(), 0.1);
        let total = closed_length(&pts);
        assert!((total - 4.0).abs() < 0.05);
        // All gaps equal to total/n within tolerance.
        let step = total / pts.len() as f64;
        for i in 0..pts.len() {
            let d = pts[i].dist(pts[(i + 1) % pts.len()]);
            assert!(
                (d - step).abs() < 0.02,
                "gap {i} was {d}, expected ~{step}"
            );
        }
    }

    #[test]
    fn resample_starts_at_first_point() {
        let pts = resample_closed(&unit_square(), 0.25);
        assert_eq!(pts[0], Vec2::new(0.0, 0.0));
    }

    #[test]
    fn cumulative_arclength_monotone() {
        let pts = resample_closed(&circle(2.0, 64), 0.1);
        let (s, total) = cumulative_arclength(&pts);
        assert_eq!(s[0], 0.0);
        for w in s.windows(2) {
            assert!(w[1] > w[0]);
        }
        assert!((total - 2.0 * PI * 2.0).abs() < 0.05);
    }

    #[test]
    fn circle_curvature_is_one_over_r() {
        for r in [0.5, 1.0, 3.0] {
            let pts = circle(r, 256);
            let ks = curvatures(&pts);
            for &k in &ks {
                assert!(
                    (k - 1.0 / r).abs() < 0.01 / r,
                    "curvature {k} vs expected {}",
                    1.0 / r
                );
            }
        }
    }

    #[test]
    fn clockwise_circle_has_negative_curvature() {
        let mut pts = circle(1.0, 128);
        pts.reverse();
        let ks = curvatures(&pts);
        assert!(ks.iter().all(|&k| k < 0.0));
        assert!(signed_area(&pts) < 0.0);
    }

    #[test]
    fn tangents_are_unit_and_tangential() {
        let pts = circle(3.0, 256);
        let ts = tangents(&pts);
        for (p, t) in pts.iter().zip(&ts) {
            assert!((t.norm() - 1.0).abs() < 1e-9);
            // Tangent ⟂ radius on a circle.
            assert!(p.normalized().dot(*t).abs() < 0.03);
        }
    }

    #[test]
    fn straight_line_zero_curvature() {
        let k = menger_curvature(
            Vec2::new(0.0, 0.0),
            Vec2::new(1.0, 0.0),
            Vec2::new(2.0, 0.0),
        );
        assert_eq!(k, 0.0);
    }

    #[test]
    fn signed_area_of_square() {
        assert!((signed_area(&unit_square()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chaikin_doubles_points_and_shrinks_corners() {
        let sq = unit_square();
        let smooth = chaikin_smooth(&sq, 1);
        assert_eq!(smooth.len(), 8);
        // Corner-cutting keeps the perimeter close but strictly inside hull.
        for p in &smooth {
            assert!(p.x >= -1e-9 && p.x <= 1.0 + 1e-9);
            assert!(p.y >= -1e-9 && p.y <= 1.0 + 1e-9);
        }
        // Perimeter shrinks monotonically toward the limit B-spline.
        let p0 = closed_length(&sq);
        let p1 = closed_length(&chaikin_smooth(&sq, 1));
        let p2 = closed_length(&chaikin_smooth(&sq, 3));
        assert!(p1 < p0);
        assert!(p2 < p1);
    }
}
