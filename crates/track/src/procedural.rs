//! Procedural track generation.
//!
//! §3.3 suggests "modifying the shape of the track" as a beginner extension
//! exercise, and the DonkeyCar simulator ships multiple tracks. This module
//! generates smooth random closed circuits by perturbing a circle with a few
//! random low-frequency harmonics, then Chaikin-smoothing the result.

use crate::geometry::Vec2;
use crate::polyline::chaikin_smooth;
use crate::track::Track;
use autolearn_util::rng::rng_from_seed;
use rand::Rng;
use std::f64::consts::PI;

/// Parameters for [`random_track`].
#[derive(Debug, Clone)]
pub struct RandomTrackConfig {
    /// Mean centerline radius, meters.
    pub base_radius: f64,
    /// Relative amplitude of the radial perturbation (0 = circle). Values
    /// above ~0.35 risk self-intersection and are clamped.
    pub roughness: f64,
    /// Number of random harmonics (2..=6 is sensible).
    pub harmonics: usize,
    /// Track width, meters.
    pub width: f64,
}

impl Default for RandomTrackConfig {
    fn default() -> Self {
        RandomTrackConfig {
            base_radius: 4.0,
            roughness: 0.2,
            harmonics: 3,
            width: 0.7,
        }
    }
}

/// Generate a random smooth closed track. Deterministic in `seed`.
pub fn random_track(seed: u64, cfg: &RandomTrackConfig) -> Track {
    assert!(cfg.base_radius > 0.0 && cfg.width > 0.0);
    let mut rng = rng_from_seed(seed);
    let roughness = cfg.roughness.clamp(0.0, 0.35);
    let harmonics = cfg.harmonics.clamp(1, 8);

    // Random harmonic amplitudes and phases; higher harmonics damped so the
    // loop stays simple (no self-intersection).
    let comps: Vec<(f64, f64, f64)> = (0..harmonics)
        .map(|h| {
            let k = (h + 2) as f64; // start at 2 lobes: k=1 just offsets the circle
            let amp = roughness * rng.gen_range(0.3..1.0) / k;
            let phase = rng.gen_range(0.0..2.0 * PI);
            (k, amp, phase)
        })
        .collect();

    let n = 160;
    let pts: Vec<Vec2> = (0..n)
        .map(|i| {
            let theta = 2.0 * PI * i as f64 / n as f64;
            let mut r = 1.0;
            for &(k, amp, phase) in &comps {
                r += amp * (k * theta + phase).sin();
            }
            let r = cfg.base_radius * r.max(0.3);
            Vec2::new(r * theta.cos(), r * theta.sin())
        })
        .collect();
    let smooth = chaikin_smooth(&pts, 2);
    Track::from_centerline(&format!("random-{seed}"), &smooth, cfg.width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomTrackConfig::default();
        let a = random_track(11, &cfg);
        let b = random_track(11, &cfg);
        assert_eq!(a.length(), b.length());
        assert_eq!(a.sample_count(), b.sample_count());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomTrackConfig::default();
        let a = random_track(1, &cfg);
        let b = random_track(2, &cfg);
        assert!((a.length() - b.length()).abs() > 1e-6);
    }

    #[test]
    fn zero_roughness_is_a_circle() {
        let cfg = RandomTrackConfig {
            roughness: 0.0,
            ..Default::default()
        };
        let t = random_track(5, &cfg);
        let expected = 2.0 * PI * cfg.base_radius;
        assert!((t.length() - expected).abs() < 0.05 * expected);
    }

    #[test]
    fn generated_tracks_are_self_consistent() {
        let cfg = RandomTrackConfig {
            roughness: 0.3,
            harmonics: 4,
            ..Default::default()
        };
        for seed in 0..5 {
            let t = random_track(seed, &cfg);
            // Projection of centerline points stays on track everywhere.
            let mut s = 0.0;
            while s < t.length() {
                let proj = t.project(t.point_at(s));
                assert!(proj.on_track, "seed {seed} off-track at s={s}");
                assert!(proj.lateral.abs() < 0.05);
                s += 0.5;
            }
        }
    }
}
