//! The paper's tracks.
//!
//! §3.3: *"We used a default track that was made with an orange tape oval
//! shape with the following dimensions; inner line length: 330 in, outer
//! line length: 509 in and average width: 27.59 in"* plus the commercial
//! Waveshare track (Fig. 3b).

use crate::geometry::Vec2;
use crate::polyline::chaikin_smooth;
use crate::track::Track;
use crate::INCH;
use std::f64::consts::PI;

/// The paper's orange-tape oval, modelled as a stadium (two straights joined
/// by semicircles).
///
/// Solving the stadium equations against the paper's numbers: with a uniform
/// width `w`, outer − inner = 2πw. The paper's measured difference
/// (179 in) and measured average width (27.59 in) disagree slightly — real
/// tape wobbles — so we take w = 28.2 in, splitting the residual, and fix the
/// inner line at 330 in. Centerline = 330 + πw ≈ 418.6 in; choosing a bend
/// radius of 40 in leaves 83.65 in straights.
pub fn paper_oval() -> Track {
    let w = 28.2 * INCH;
    let r_c = 40.0 * INCH; // centerline bend radius
    let straight = {
        let center_perim = (330.0 + PI * 28.2) * INCH;
        (center_perim - 2.0 * PI * r_c) / 2.0
    };
    let mut pts = Vec::new();
    let arc_steps = 48;
    // Bottom straight, left → right.
    pts.push(Vec2::new(-straight / 2.0, -r_c));
    pts.push(Vec2::new(straight / 2.0, -r_c));
    // Right semicircle (CCW from -90° to +90°).
    for i in 1..arc_steps {
        let a = -PI / 2.0 + PI * i as f64 / arc_steps as f64;
        pts.push(Vec2::new(straight / 2.0 + r_c * a.cos(), r_c * a.sin()));
    }
    // Top straight, right → left.
    pts.push(Vec2::new(straight / 2.0, r_c));
    pts.push(Vec2::new(-straight / 2.0, r_c));
    // Left semicircle (CCW from +90° to +270°).
    for i in 1..arc_steps {
        let a = PI / 2.0 + PI * i as f64 / arc_steps as f64;
        pts.push(Vec2::new(-straight / 2.0 + r_c * a.cos(), r_c * a.sin()));
    }
    Track::from_centerline("paper-oval", &pts, w)
}

/// The Waveshare commercial track (PiRacer Pro AI kit): a compact closed
/// circuit roughly 3.8 m x 2.5 m with an S-chicane, lane width ~45 cm.
/// Dimensions follow the published kit mat; the exact decal layout is
/// approximated by the centerline below.
pub fn waveshare_track() -> Track {
    let raw = [
        (0.0, 0.0),
        (1.2, -0.1),
        (2.4, 0.0),
        (3.0, 0.5),
        (3.2, 1.2),
        (2.9, 1.8),
        // S-chicane across the middle.
        (2.2, 1.9),
        (1.8, 1.5),
        (1.3, 1.3),
        (0.9, 1.6),
        (0.5, 2.0),
        (-0.1, 1.9),
        (-0.5, 1.3),
        (-0.5, 0.6),
    ];
    let pts: Vec<Vec2> = raw.iter().map(|&(x, y)| Vec2::new(x, y)).collect();
    let smooth = chaikin_smooth(&pts, 3);
    Track::from_centerline("waveshare", &smooth, 0.45)
}

/// A plain circular track, handy for tests and the simplest simulator lesson.
pub fn circle_track(radius: f64, width: f64) -> Track {
    let n = 128;
    let pts: Vec<Vec2> = (0..n)
        .map(|i| {
            let a = 2.0 * PI * i as f64 / n as f64;
            Vec2::new(radius * a.cos(), radius * a.sin())
        })
        .collect();
    Track::from_centerline("circle", &pts, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oval_dimensions() {
        let t = paper_oval();
        // Centerline between inner and outer perimeters.
        let inner = t.inner_line_length();
        let outer = t.outer_line_length();
        assert!(inner < t.length() && t.length() < outer);
        // The tightest bend is the 40 in-radius semicircle.
        let r_bend = 40.0 * INCH;
        let k = t.max_abs_curvature();
        assert!(
            (k - 1.0 / r_bend).abs() < 0.15 / r_bend,
            "max curvature {k:.3}, expected ~{:.3}",
            1.0 / r_bend
        );
    }

    #[test]
    fn waveshare_is_a_valid_loop() {
        let t = waveshare_track();
        assert!(t.length() > 6.0 && t.length() < 14.0, "length {}", t.length());
        assert!((t.mean_width() - 0.45).abs() < 1e-6);
        // The chicane makes it turn both ways.
        let mut pos = false;
        let mut neg = false;
        let mut s = 0.0;
        while s < t.length() {
            let k = t.curvature_at(s);
            if k > 0.05 {
                pos = true;
            }
            if k < -0.05 {
                neg = true;
            }
            s += 0.1;
        }
        assert!(pos && neg, "waveshare must curve both directions");
    }

    #[test]
    fn circle_track_radius() {
        let t = circle_track(3.0, 0.6);
        let p = t.point_at(0.0);
        assert!((p.norm() - 3.0).abs() < 0.01);
    }

    #[test]
    fn presets_have_distinct_names() {
        assert_eq!(paper_oval().name(), "paper-oval");
        assert_eq!(waveshare_track().name(), "waveshare");
        assert_eq!(circle_track(1.0, 0.5).name(), "circle");
    }
}
