//! Surface classification used by the synthetic camera.

use serde::{Deserialize, Serialize};

/// What the ground looks like at a world point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Surface {
    /// On a boundary tape line (the orange tape of the paper's oval, or the
    /// painted lines of the Waveshare track).
    Line,
    /// Drivable surface between the lines.
    Asphalt,
    /// Off the track entirely.
    Off,
}

impl Surface {
    /// Rendered RGB colour. Orange tape per the paper; the floor and the
    /// off-track area get distinct greys so models can learn the boundary.
    pub fn color(self) -> [u8; 3] {
        match self {
            Surface::Line => [230, 130, 30],  // orange tape
            Surface::Asphalt => [70, 70, 70], // dark floor
            Surface::Off => [150, 150, 150],  // lighter surrounding floor
        }
    }

    /// Whether a car on this surface is still on the track.
    pub fn is_drivable(self) -> bool {
        !matches!(self, Surface::Off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_are_distinct() {
        assert_ne!(Surface::Line.color(), Surface::Asphalt.color());
        assert_ne!(Surface::Asphalt.color(), Surface::Off.color());
        assert_ne!(Surface::Line.color(), Surface::Off.color());
    }

    #[test]
    fn drivability() {
        assert!(Surface::Line.is_drivable());
        assert!(Surface::Asphalt.is_drivable());
        assert!(!Surface::Off.is_drivable());
    }
}
