//! Plane geometry primitives.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A 2-D vector / point in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    pub x: f64,
    pub y: f64,
}

impl Vec2 {
    /// The origin.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// A vector from its components.
    pub fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector at `angle` radians from +x.
    pub fn from_angle(angle: f64) -> Self {
        Vec2 {
            x: angle.cos(),
            y: angle.sin(),
        }
    }

    /// Dot product.
    pub fn dot(self, o: Vec2) -> f64 {
        self.x * o.x + self.y * o.y
    }

    /// Z-component of the 3-D cross product; positive when `o` is
    /// counter-clockwise from `self`.
    pub fn cross(self, o: Vec2) -> f64 {
        self.x * o.y - self.y * o.x
    }

    /// Squared Euclidean length (no sqrt).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Euclidean length.
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Euclidean distance to `o`.
    pub fn dist(self, o: Vec2) -> f64 {
        (self - o).norm()
    }

    /// Squared distance to `o` (no sqrt).
    pub fn dist_sq(self, o: Vec2) -> f64 {
        (self - o).norm_sq()
    }

    /// Normalised copy; `Vec2::ZERO` stays zero.
    pub fn normalized(self) -> Vec2 {
        let n = self.norm();
        if n < 1e-12 {
            Vec2::ZERO
        } else {
            self * (1.0 / n)
        }
    }

    /// Rotate 90° counter-clockwise (the left normal of a heading vector).
    pub fn perp(self) -> Vec2 {
        Vec2 {
            x: -self.y,
            y: self.x,
        }
    }

    /// Angle from +x axis in radians, in (-pi, pi].
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Rotate by `angle` radians counter-clockwise.
    pub fn rotated(self, angle: f64) -> Vec2 {
        let (s, c) = angle.sin_cos();
        Vec2 {
            x: c * self.x - s * self.y,
            y: s * self.x + c * self.y,
        }
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    pub fn lerp(self, o: Vec2, t: f64) -> Vec2 {
        self + (o - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x + o.x, self.y + o.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, o: Vec2) {
        self.x += o.x;
        self.y += o.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, o: Vec2) -> Vec2 {
        Vec2::new(self.x - o.x, self.y - o.y)
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, k: f64) -> Vec2 {
        Vec2::new(self.x * k, self.y * k)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

/// Squared distance from point `p` to segment `ab`, and the parameter
/// `t` in `0..=1` of the closest point.
pub fn point_segment_dist_sq(p: Vec2, a: Vec2, b: Vec2) -> (f64, f64) {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq < 1e-18 {
        return (p.dist_sq(a), 0.0);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    let proj = a + ab * t;
    (p.dist_sq(proj), t)
}

/// Normalise an angle to (-pi, pi].
pub fn wrap_angle(a: f64) -> f64 {
    let mut a = a % (2.0 * std::f64::consts::PI);
    if a <= -std::f64::consts::PI {
        a += 2.0 * std::f64::consts::PI;
    } else if a > std::f64::consts::PI {
        a -= 2.0 * std::f64::consts::PI;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn dot_cross_basics() {
        let ex = Vec2::new(1.0, 0.0);
        let ey = Vec2::new(0.0, 1.0);
        assert_eq!(ex.dot(ey), 0.0);
        assert_eq!(ex.cross(ey), 1.0);
        assert_eq!(ey.cross(ex), -1.0);
    }

    #[test]
    fn perp_is_left_normal() {
        let v = Vec2::new(1.0, 0.0);
        assert_eq!(v.perp(), Vec2::new(0.0, 1.0));
        assert!((v.perp().angle() - FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - 5.0).abs() < 1e-12);
        assert!((v.rotated(PI).x + 3.0).abs() < 1e-12);
    }

    #[test]
    fn normalized_handles_zero() {
        assert_eq!(Vec2::ZERO.normalized(), Vec2::ZERO);
        let v = Vec2::new(0.0, 2.0).normalized();
        assert!((v.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_angle_roundtrips() {
        for a in [-2.0, -0.5, 0.0, 0.7, 3.0] {
            let v = Vec2::from_angle(a);
            assert!((wrap_angle(v.angle() - a)).abs() < 1e-12);
        }
    }

    #[test]
    fn segment_distance_interior_and_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 0.0);
        let (d2, t) = point_segment_dist_sq(Vec2::new(5.0, 3.0), a, b);
        assert!((d2 - 9.0).abs() < 1e-12);
        assert!((t - 0.5).abs() < 1e-12);
        let (d2, t) = point_segment_dist_sq(Vec2::new(-4.0, 3.0), a, b);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
        let (d2, t) = point_segment_dist_sq(Vec2::new(14.0, 3.0), a, b);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 1.0);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let a = Vec2::new(1.0, 1.0);
        let (d2, t) = point_segment_dist_sq(Vec2::new(4.0, 5.0), a, a);
        assert!((d2 - 25.0).abs() < 1e-12);
        assert_eq!(t, 0.0);
    }

    #[test]
    fn wrap_angle_range() {
        assert!((wrap_angle(3.0 * PI) - PI).abs() < 1e-12);
        assert!((wrap_angle(-3.0 * PI) - PI).abs() < 1e-12);
        assert_eq!(wrap_angle(0.0), 0.0);
        for a in [-10.0, -1.0, 0.0, 1.0, 10.0, 100.0] {
            let w = wrap_angle(a);
            assert!(w > -PI - 1e-12 && w <= PI + 1e-12);
        }
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec2::new(1.0, 2.0));
    }
}
