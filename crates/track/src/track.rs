//! The `Track` type: a closed centerline with width, arc-length sampling,
//! fast point projection and surface classification.

use crate::geometry::{point_segment_dist_sq, Vec2};
use crate::polyline::{cumulative_arclength, curvatures, resample_closed, signed_area, tangents};
use crate::surface::Surface;
use serde::{Deserialize, Serialize};

/// Spacing of the internal resampled centerline, meters. Fine enough that
/// linear interpolation between samples is below millimetre error on the
/// paper's ~1 m-radius bends.
const SAMPLE_DS: f64 = 0.05;

/// Width of a boundary tape line, meters (2-inch gaffer tape ≈ 5 cm).
pub const TAPE_WIDTH: f64 = 0.05;

/// Circular moving average with half-window `h`.
fn smooth_circular(xs: &[f64], h: usize) -> Vec<f64> {
    let n = xs.len();
    if n == 0 || h == 0 {
        return xs.to_vec();
    }
    let w = 2 * h + 1;
    (0..n)
        .map(|i| {
            let mut acc = 0.0;
            for k in 0..w {
                let j = (i + n + k - h) % n;
                acc += xs[j];
            }
            acc / w as f64
        })
        .collect()
}

/// Result of projecting a world point onto a track.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackProjection {
    /// Station: arc length along the centerline of the closest point, in
    /// `[0, length)`.
    pub s: f64,
    /// Signed lateral offset, positive to the *left* of the direction of
    /// travel, meters.
    pub lateral: f64,
    /// Centerline heading at the projection, radians.
    pub heading: f64,
    /// Signed centerline curvature at the projection, 1/m.
    pub curvature: f64,
    /// Whether the point is within the track edges.
    pub on_track: bool,
}

/// A closed driving track.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Track {
    name: String,
    /// Densely resampled centerline, counter-clockwise.
    center: Vec<Vec2>,
    /// Station of each centerline sample.
    station: Vec<f64>,
    /// Unit tangent at each sample.
    tangent: Vec<Vec2>,
    /// Signed curvature at each sample.
    curvature: Vec<f64>,
    /// Half-width at each sample (edge-to-centerline), meters.
    half_width: Vec<f64>,
    length: f64,
    // Uniform spatial grid over the bounding box mapping cells to candidate
    // centerline sample indices; accelerates `project` from O(n) to O(1).
    grid_origin: Vec2,
    grid_cell: f64,
    grid_cols: usize,
    grid_rows: usize,
    grid: Vec<Vec<u32>>,
}

impl Track {
    /// Build a track from a closed centerline waypoint loop and a uniform
    /// width. Waypoints are resampled at 5 cm; winding is normalised to
    /// counter-clockwise so "left" is consistent.
    pub fn from_centerline(name: &str, waypoints: &[Vec2], width: f64) -> Track {
        Self::from_centerline_var_width(name, waypoints, &vec![width; waypoints.len()])
    }

    /// Build a track with per-waypoint width (the paper's hand-taped oval
    /// has an *average* width of 27.59 in — real tape wobbles).
    pub fn from_centerline_var_width(name: &str, waypoints: &[Vec2], widths: &[f64]) -> Track {
        assert!(waypoints.len() >= 3, "need at least 3 waypoints");
        assert_eq!(waypoints.len(), widths.len(), "one width per waypoint");
        assert!(widths.iter().all(|&w| w > 0.0), "widths must be positive");

        let mut pts = waypoints.to_vec();
        let mut wds = widths.to_vec();
        if signed_area(&pts) < 0.0 {
            pts.reverse();
            wds.reverse();
        }

        let center = resample_closed(&pts, SAMPLE_DS);
        // Carry widths across the resample by nearest original waypoint.
        let half_width: Vec<f64> = center
            .iter()
            .map(|c| {
                let i = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (i, p.dist_sq(*c)))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    .map_or(0, |(i, _)| i);
                wds[i] / 2.0
            })
            .collect();

        let (station, length) = cumulative_arclength(&center);
        let tangent = tangents(&center);
        // Raw Menger curvature concentrates all turning at waypoint-polygon
        // vertices (spikes) and reads ~zero between them; a circular moving
        // average over ~0.5 m recovers the underlying arc curvature.
        let curvature = smooth_circular(&curvatures(&center), (0.25 / SAMPLE_DS) as usize);

        let mut track = Track {
            name: name.to_string(),
            center,
            station,
            tangent,
            curvature,
            half_width,
            length,
            grid_origin: Vec2::ZERO,
            grid_cell: 0.0,
            grid_cols: 0,
            grid_rows: 0,
            grid: Vec::new(),
        };
        track.build_grid();
        track
    }

    fn build_grid(&mut self) {
        let max_hw = self
            .half_width
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(0.1);
        // Margin: track width + a border so off-track queries nearby still hit.
        let margin = max_hw + 1.0;
        let (mut min_x, mut min_y) = (f64::INFINITY, f64::INFINITY);
        let (mut max_x, mut max_y) = (f64::NEG_INFINITY, f64::NEG_INFINITY);
        for p in &self.center {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        let cell = 0.5_f64;
        let origin = Vec2::new(min_x - margin, min_y - margin);
        let cols = (((max_x - min_x) + 2.0 * margin) / cell).ceil() as usize + 1;
        let rows = (((max_y - min_y) + 2.0 * margin) / cell).ceil() as usize + 1;
        let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cols * rows];

        // Each sample registers itself in every cell within reach: reach =
        // its own cell plus cells whose nearest corner could be closer to
        // this sample than to any other. A conservative radius of
        // (max half-width + margin) per sample would bloat cells, so instead
        // register in the 3x3 neighbourhood and fall back to a widening
        // search on miss.
        for (i, p) in self.center.iter().enumerate() {
            let cx = ((p.x - origin.x) / cell) as isize;
            let cy = ((p.y - origin.y) / cell) as isize;
            for dy in -1..=1isize {
                for dx in -1..=1isize {
                    let gx = cx + dx;
                    let gy = cy + dy;
                    if gx >= 0 && gy >= 0 && (gx as usize) < cols && (gy as usize) < rows {
                        grid[gy as usize * cols + gx as usize].push(i as u32);
                    }
                }
            }
        }

        self.grid_origin = origin;
        self.grid_cell = cell;
        self.grid_cols = cols;
        self.grid_rows = rows;
        self.grid = grid;
    }

    /// The track's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total centerline length, meters.
    pub fn length(&self) -> f64 {
        self.length
    }

    /// Number of internal centerline samples.
    pub fn sample_count(&self) -> usize {
        self.center.len()
    }

    /// Track width (edge to edge) at station `s`.
    pub fn width_at(&self, s: f64) -> f64 {
        let i = self.index_at(s);
        2.0 * self.half_width[i]
    }

    /// Mean width over the whole track.
    pub fn mean_width(&self) -> f64 {
        2.0 * self.half_width.iter().sum::<f64>() / self.half_width.len() as f64
    }

    /// Wrap a station into `[0, length)`.
    pub fn wrap_station(&self, s: f64) -> f64 {
        let mut s = s % self.length;
        if s < 0.0 {
            s += self.length;
        }
        s
    }

    fn index_at(&self, s: f64) -> usize {
        let s = self.wrap_station(s);
        // Uniform spacing makes this a direct lookup.
        let approx = (s / self.length * self.center.len() as f64) as usize;
        approx.min(self.center.len() - 1)
    }

    /// Centerline position at station `s`.
    pub fn point_at(&self, s: f64) -> Vec2 {
        self.center[self.index_at(s)]
    }

    /// Centerline heading (radians) at station `s`.
    pub fn heading_at(&self, s: f64) -> f64 {
        self.tangent[self.index_at(s)].angle()
    }

    /// Signed curvature at station `s`.
    pub fn curvature_at(&self, s: f64) -> f64 {
        self.curvature[self.index_at(s)]
    }

    /// Maximum |curvature| over the track — the tightest bend, which caps
    /// safe speed in the closed-loop latency model.
    pub fn max_abs_curvature(&self) -> f64 {
        self.curvature.iter().map(|k| k.abs()).fold(0.0, f64::max)
    }

    /// A point offset `lateral` meters to the left of the centerline at `s`.
    pub fn offset_point(&self, s: f64, lateral: f64) -> Vec2 {
        let i = self.index_at(s);
        self.center[i] + self.tangent[i].perp() * lateral
    }

    /// Left (inner-curve) edge point at station `s`.
    pub fn left_edge(&self, s: f64) -> Vec2 {
        let i = self.index_at(s);
        self.offset_point(s, self.half_width[i])
    }

    /// Right edge point at station `s`.
    pub fn right_edge(&self, s: f64) -> Vec2 {
        let i = self.index_at(s);
        self.offset_point(s, -self.half_width[i])
    }

    /// Visit candidate sample indices near `p` from the spatial grid,
    /// widening the search ring until non-empty, then scanning one extra
    /// ring so the true nearest isn't missed just across a cell edge.
    /// Allocation-free: `project` is called per camera pixel.
    fn for_candidates(&self, p: Vec2, mut f: impl FnMut(u32)) {
        let cx = ((p.x - self.grid_origin.x) / self.grid_cell).floor() as isize;
        let cy = ((p.y - self.grid_origin.y) / self.grid_cell).floor() as isize;
        let max_ring = (self.grid_cols.max(self.grid_rows)) as isize;

        let scan_ring = |ring: isize, f: &mut dyn FnMut(u32)| -> bool {
            let mut any = false;
            for dy in -ring..=ring {
                for dx in -ring..=ring {
                    // Only the ring boundary (interior already scanned).
                    if dx.abs() != ring && dy.abs() != ring {
                        continue;
                    }
                    let gx = cx + dx;
                    let gy = cy + dy;
                    if gx >= 0
                        && gy >= 0
                        && (gx as usize) < self.grid_cols
                        && (gy as usize) < self.grid_rows
                    {
                        let cell = &self.grid[gy as usize * self.grid_cols + gx as usize];
                        for &ci in cell {
                            any = true;
                            f(ci);
                        }
                    }
                }
            }
            any
        };

        for ring in 0..=max_ring {
            if scan_ring(ring, &mut f) {
                scan_ring(ring + 1, &mut f);
                return;
            }
        }
        // Point far outside the gridded area: brute force.
        for ci in 0..self.center.len() as u32 {
            f(ci);
        }
    }

    /// Project `p` onto the track.
    pub fn project(&self, p: Vec2) -> TrackProjection {
        let n = self.center.len();
        let mut best = (f64::INFINITY, 0usize, 0.0f64); // (dist_sq, seg index, t)
        self.for_candidates(p, |ci| {
            let i = ci as usize;
            let a = self.center[i];
            let b = self.center[(i + 1) % n];
            let (d2, t) = point_segment_dist_sq(p, a, b);
            if d2 < best.0 {
                best = (d2, i, t);
            }
        });
        let (_, i, t) = best;
        let j = (i + 1) % n;
        let a = self.center[i];
        let b = self.center[j];
        let closest = a.lerp(b, t);
        let tangent = (self.tangent[i] * (1.0 - t) + self.tangent[j] * t).normalized();
        let lateral = tangent.cross(p - closest).signum() * p.dist(closest);
        // Interpolated, wrap-aware station.
        let seg_len = a.dist(b);
        let s = self.wrap_station(self.station[i] + t * seg_len);
        let hw = self.half_width[i] * (1.0 - t) + self.half_width[j] * t;
        let curvature = self.curvature[i] * (1.0 - t) + self.curvature[j] * t;
        TrackProjection {
            s,
            lateral,
            heading: tangent.angle(),
            curvature,
            on_track: lateral.abs() <= hw,
        }
    }

    /// Classify the ground at world point `p`: boundary tape line, drivable
    /// surface, or off-track. The tape is centred on each edge.
    pub fn surface_at(&self, p: Vec2) -> Surface {
        let proj = self.project(p);
        let i = self.index_at(proj.s);
        let hw = self.half_width[i];
        let d_edge = (proj.lateral.abs() - hw).abs();
        if d_edge <= TAPE_WIDTH / 2.0 {
            Surface::Line
        } else if proj.lateral.abs() < hw {
            Surface::Asphalt
        } else {
            Surface::Off
        }
    }

    /// Signed distance from `p` to the nearest track edge: negative inside
    /// the track, positive outside.
    pub fn edge_distance(&self, p: Vec2) -> f64 {
        let proj = self.project(p);
        let i = self.index_at(proj.s);
        proj.lateral.abs() - self.half_width[i]
    }

    /// Inner (tape) line length — perimeter of the left-edge loop. For the
    /// paper's oval this should reproduce ~330 in.
    pub fn inner_line_length(&self) -> f64 {
        self.edge_length(true)
    }

    /// Outer line length — perimeter of the right-edge loop (~509 in for the
    /// paper's oval).
    pub fn outer_line_length(&self) -> f64 {
        self.edge_length(false)
    }

    fn edge_length(&self, left: bool) -> f64 {
        let pts: Vec<Vec2> = (0..self.center.len())
            .map(|i| {
                let hw = self.half_width[i];
                let off = if left { hw } else { -hw };
                self.center[i] + self.tangent[i].perp() * off
            })
            .collect();
        crate::polyline::closed_length(&pts)
    }

    /// The start/finish pose: centerline point at s=0 with its heading.
    pub fn start_pose(&self) -> (Vec2, f64) {
        (self.center[0], self.tangent[0].angle())
    }

    /// Forward arc distance from station `from` to station `to` (wraps).
    pub fn forward_distance(&self, from: f64, to: f64) -> f64 {
        let d = self.wrap_station(to) - self.wrap_station(from);
        if d < 0.0 {
            d + self.length
        } else {
            d
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{circle_track, paper_oval};

    #[test]
    fn circle_track_basic_queries() {
        let t = circle_track(5.0, 0.8);
        assert!((t.length() - 2.0 * std::f64::consts::PI * 5.0).abs() < 0.1);
        assert!((t.mean_width() - 0.8).abs() < 1e-9);

        // A point on the centerline projects with ~zero lateral.
        let p = t.point_at(3.0);
        let proj = t.project(p);
        assert!(proj.lateral.abs() < 1e-6);
        assert!(proj.on_track);
        assert!((proj.s - 3.0).abs() < 0.1);
    }

    #[test]
    fn lateral_sign_is_left_positive() {
        let t = circle_track(5.0, 0.8);
        let s = 1.0;
        let left = t.offset_point(s, 0.2);
        let right = t.offset_point(s, -0.2);
        assert!(t.project(left).lateral > 0.1);
        assert!(t.project(right).lateral < -0.1);
    }

    #[test]
    fn off_track_detection() {
        let t = circle_track(5.0, 0.8);
        let far = t.offset_point(2.0, 3.0);
        let proj = t.project(far);
        assert!(!proj.on_track);
        assert!(t.edge_distance(far) > 0.0);
        let near = t.offset_point(2.0, 0.1);
        assert!(t.project(near).on_track);
        assert!(t.edge_distance(near) < 0.0);
    }

    #[test]
    fn surface_classification_bands() {
        let t = circle_track(5.0, 0.8);
        assert_eq!(t.surface_at(t.point_at(0.0)), Surface::Asphalt);
        // Exactly on the left edge → tape.
        assert_eq!(t.surface_at(t.offset_point(0.0, 0.4)), Surface::Line);
        assert_eq!(t.surface_at(t.offset_point(0.0, 1.5)), Surface::Off);
    }

    #[test]
    fn stations_wrap() {
        let t = circle_track(2.0, 0.5);
        let len = t.length();
        assert!((t.wrap_station(len + 1.0) - 1.0).abs() < 1e-9);
        assert!((t.wrap_station(-1.0) - (len - 1.0)).abs() < 1e-9);
        assert!((t.forward_distance(len - 1.0, 1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn winding_normalised_ccw() {
        // Clockwise input gets flipped; curvature of a circle is then +1/r.
        let pts: Vec<Vec2> = (0..64)
            .map(|i| {
                let a = -2.0 * std::f64::consts::PI * i as f64 / 64.0;
                Vec2::new(3.0 * a.cos(), 3.0 * a.sin())
            })
            .collect();
        let t = Track::from_centerline("cw-circle", &pts, 0.5);
        assert!(t.curvature_at(1.0) > 0.0);
    }

    #[test]
    fn paper_oval_line_lengths_match_paper() {
        let t = paper_oval();
        let inner_in = t.inner_line_length() / crate::INCH;
        let outer_in = t.outer_line_length() / crate::INCH;
        // Paper: inner 330 in, outer 509 in, average width 27.59 in.
        assert!(
            (inner_in - 330.0).abs() < 8.0,
            "inner line {inner_in:.1} in, expected ~330"
        );
        assert!(
            (outer_in - 509.0).abs() < 10.0,
            "outer line {outer_in:.1} in, expected ~509"
        );
        let width_in = t.mean_width() / crate::INCH;
        assert!(
            (width_in - 27.59).abs() < 2.0,
            "width {width_in:.2} in, expected ~27.59"
        );
    }

    #[test]
    fn projection_station_roundtrip_on_oval() {
        let t = paper_oval();
        for k in 0..20 {
            let s = t.length() * k as f64 / 20.0;
            let p = t.offset_point(s, 0.1);
            let proj = t.project(p);
            let ds = t.forward_distance(s, proj.s).min(t.forward_distance(proj.s, s));
            assert!(ds < 0.15, "station error {ds} at s={s}");
            assert!((proj.lateral - 0.1).abs() < 0.05);
        }
    }

    #[test]
    fn heading_matches_tangent() {
        let t = circle_track(4.0, 0.6);
        let s = 0.0;
        let h = t.heading_at(s);
        let p0 = t.point_at(s);
        let p1 = t.point_at(s + 0.2);
        let emp = (p1 - p0).angle();
        assert!(crate::geometry::wrap_angle(h - emp).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "at least 3 waypoints")]
    fn rejects_degenerate_centerline() {
        let _ = Track::from_centerline("bad", &[Vec2::ZERO, Vec2::new(1.0, 0.0)], 0.5);
    }

    #[test]
    fn serde_roundtrip_preserves_queries() {
        // Tracks ship inside artifacts/object-store blobs; projection must
        // survive (the spatial grid serialises with the track).
        let t = circle_track(3.0, 0.7);
        let json = serde_json::to_string(&t).unwrap();
        let back: Track = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name(), t.name());
        assert_eq!(back.length(), t.length());
        let p = t.offset_point(2.0, 0.1);
        let a = t.project(p);
        let b = back.project(p);
        // JSON float text roundtrips to within an ulp.
        assert!((a.s - b.s).abs() < 1e-9);
        assert!((a.lateral - b.lateral).abs() < 1e-9);
        assert_eq!(t.surface_at(p), back.surface_at(p));
    }
}
