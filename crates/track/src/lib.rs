//! Track geometry for the AutoLearn reproduction.
//!
//! The paper's module uses two physical tracks (Fig. 3): a hand-made oval of
//! orange tape (inner line 330 in, outer line 509 in, average width
//! 27.59 in) and the commercial Waveshare track, plus whatever tracks the
//! DonkeyCar simulator ships. This crate models a driving track as a closed
//! centerline polyline with a per-point half-width, and provides:
//!
//! * arc-length parameterised sampling (position / heading / curvature),
//! * fast projection of an arbitrary world point onto the track (signed
//!   lateral offset, station `s`, on/off-track classification) backed by a
//!   uniform spatial grid,
//! * surface classification (`Line` / `Asphalt` / `Off`) used by the
//!   synthetic camera to render tape markings,
//! * the paper's two preset tracks and a procedural generator for the
//!   "modify the shape of the track" extension exercises.

/// 2-D vector algebra for the track plane.
pub mod geometry;
/// Closed polylines: arc length, projection, curvature.
pub mod polyline;
/// The paper's preset tracks.
pub mod presets;
/// Seeded procedural track generation.
pub mod procedural;
/// Surface classes under the car (tape, lane, off-track).
pub mod surface;
/// The drivable track: centerline, width, rasterised surface grid.
pub mod track;

pub use geometry::Vec2;
pub use presets::{circle_track, paper_oval, waveshare_track};
pub use procedural::{random_track, RandomTrackConfig};
pub use surface::Surface;
pub use track::{Track, TrackProjection};

/// Inches → meters: both paper tracks are specified in inches.
pub const INCH: f64 = 0.0254;
