//! Property tests for track geometry invariants.

use autolearn_track::{circle_track, paper_oval, random_track, RandomTrackConfig, Surface};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// offset_point followed by project recovers (s, lateral) within the
    /// resolution of the internal resampling, for offsets within the track.
    #[test]
    fn project_inverts_offset_on_oval(frac in 0.0f64..1.0, lat in -0.3f64..0.3) {
        let t = paper_oval();
        let s = frac * t.length();
        let p = t.offset_point(s, lat);
        let proj = t.project(p);
        let ds = t.forward_distance(s, proj.s).min(t.forward_distance(proj.s, s));
        prop_assert!(ds < 0.2, "station error {ds}");
        prop_assert!((proj.lateral - lat).abs() < 0.08, "lateral {} vs {}", proj.lateral, lat);
    }

    /// Points beyond half-width are off-track; points well inside are on.
    #[test]
    fn on_track_consistent_with_width(frac in 0.0f64..1.0, lat in -2.0f64..2.0) {
        let t = circle_track(4.0, 0.8);
        let s = frac * t.length();
        let p = t.offset_point(s, lat);
        let proj = t.project(p);
        if lat.abs() < 0.35 {
            prop_assert!(proj.on_track);
        }
        if lat.abs() > 0.45 {
            prop_assert!(!proj.on_track);
        }
    }

    /// Surface bands are ordered: asphalt strictly inside tape, off strictly
    /// outside, and edge_distance sign agrees.
    #[test]
    fn surface_bands_ordered(frac in 0.0f64..1.0, lat in -1.5f64..1.5) {
        let t = circle_track(4.0, 0.8);
        let s = frac * t.length();
        let p = t.offset_point(s, lat);
        let surface = t.surface_at(p);
        let edge = t.edge_distance(p);
        match surface {
            Surface::Asphalt => prop_assert!(edge < 0.0),
            Surface::Off => prop_assert!(edge > -0.03),
            Surface::Line => prop_assert!(edge.abs() < 0.05, "tape at edge dist {edge}"),
        }
    }

    /// wrap_station is idempotent and in range for any input.
    #[test]
    fn wrap_station_in_range(s in -1000.0f64..1000.0) {
        let t = circle_track(3.0, 0.5);
        let w = t.wrap_station(s);
        prop_assert!((0.0..t.length()).contains(&w));
        prop_assert!((t.wrap_station(w) - w).abs() < 1e-9);
    }

    /// Random tracks always produce drivable centerlines.
    #[test]
    fn random_tracks_drivable(seed in 0u64..50) {
        let t = random_track(seed, &RandomTrackConfig::default());
        prop_assert!(t.length() > 10.0);
        let mut s = 0.0;
        while s < t.length() {
            prop_assert!(t.project(t.point_at(s)).on_track);
            s += 1.0;
        }
    }
}
