//! Raw image container shared across the camera simulator, the tub dataset
//! format and the neural-network front end.
//!
//! DonkeyCar records 160x120 RGB JPEG frames; we keep frames as raw
//! interleaved `u8` (HWC layout) since nothing in the reproduction needs a
//! compressed on-disk form, and raw buffers keep the camera → tensor path a
//! straight normalisation loop.

use serde::{Deserialize, Serialize};

/// A raw 8-bit image, interleaved channels (HWC).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Image {
    pub width: usize,
    pub height: usize,
    /// 1 = grayscale, 3 = RGB.
    pub channels: usize,
    pub data: Vec<u8>,
}

impl Image {
    /// Allocate a zeroed image.
    pub fn new(width: usize, height: usize, channels: usize) -> Self {
        assert!(channels == 1 || channels == 3, "channels must be 1 or 3");
        Image {
            width,
            height,
            channels,
            data: vec![0; width * height * channels],
        }
    }

    /// Total number of bytes (= pixels x channels).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image holds no pixels.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    fn index(&self, x: usize, y: usize, c: usize) -> usize {
        (y * self.width + x) * self.channels + c
    }

    /// Read one channel of one pixel. Panics out of bounds (debug-friendly;
    /// the renderers iterate in-bounds by construction).
    #[inline]
    pub fn get(&self, x: usize, y: usize, c: usize) -> u8 {
        self.data[self.index(x, y, c)]
    }

    /// Write one channel of one pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, c: usize, v: u8) {
        let i = self.index(x, y, c);
        self.data[i] = v;
    }

    /// Fill every channel of pixel (x, y).
    #[inline]
    pub fn set_pixel(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        for c in 0..self.channels {
            self.set(x, y, c, rgb[c.min(2)]);
        }
    }

    /// Convert to normalised `f32` in [0, 1], HWC order — the layout the
    /// neural-network front end consumes.
    pub fn to_f32(&self) -> Vec<f32> {
        self.data.iter().map(|&b| f32::from(b) / 255.0).collect()
    }

    /// Collapse to single-channel grayscale using the Rec.601 luma weights.
    pub fn to_grayscale(&self) -> Image {
        if self.channels == 1 {
            return self.clone();
        }
        let mut out = Image::new(self.width, self.height, 1);
        for y in 0..self.height {
            for x in 0..self.width {
                let r = f32::from(self.get(x, y, 0));
                let g = f32::from(self.get(x, y, 1));
                let b = f32::from(self.get(x, y, 2));
                let l = (0.299 * r + 0.587 * g + 0.114 * b).round().min(255.0) as u8;
                out.set(x, y, 0, l);
            }
        }
        out
    }

    /// Nearest-neighbour downscale; used to feed small conv models quickly
    /// in tests without changing the camera.
    pub fn resize(&self, new_w: usize, new_h: usize) -> Image {
        let mut out = Image::new(new_w, new_h, self.channels);
        for y in 0..new_h {
            let sy = y * self.height / new_h;
            for x in 0..new_w {
                let sx = x * self.width / new_w;
                for c in 0..self.channels {
                    out.set(x, y, c, self.get(sx, sy, c));
                }
            }
        }
        out
    }

    /// Horizontal mirror (left-right flip) — the classic driving-data
    /// augmentation: a mirrored frame pairs with a negated steering value.
    pub fn flip_horizontal(&self) -> Image {
        let mut out = Image::new(self.width, self.height, self.channels);
        for y in 0..self.height {
            for x in 0..self.width {
                for c in 0..self.channels {
                    out.set(self.width - 1 - x, y, c, self.get(x, y, c));
                }
            }
        }
        out
    }

    /// Mean pixel intensity in [0, 255]; a cheap summary used by data-quality
    /// heuristics (an all-dark frame means the camera saw no track).
    pub fn mean_intensity(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&b| f64::from(b)).sum::<f64>() / self.data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed_with_right_size() {
        let img = Image::new(4, 3, 3);
        assert_eq!(img.len(), 36);
        assert!(img.data.iter().all(|&b| b == 0));
        assert_eq!(img.mean_intensity(), 0.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut img = Image::new(5, 5, 3);
        img.set(2, 3, 1, 200);
        assert_eq!(img.get(2, 3, 1), 200);
        img.set_pixel(0, 0, [10, 20, 30]);
        assert_eq!(img.get(0, 0, 0), 10);
        assert_eq!(img.get(0, 0, 1), 20);
        assert_eq!(img.get(0, 0, 2), 30);
    }

    #[test]
    fn to_f32_normalises() {
        let mut img = Image::new(1, 1, 1);
        img.set(0, 0, 0, 255);
        assert_eq!(img.to_f32(), vec![1.0]);
    }

    #[test]
    fn grayscale_weights_sum_to_one() {
        let mut img = Image::new(1, 1, 3);
        img.set_pixel(0, 0, [100, 100, 100]);
        let g = img.to_grayscale();
        assert_eq!(g.channels, 1);
        assert_eq!(g.get(0, 0, 0), 100);
    }

    #[test]
    fn grayscale_of_grayscale_is_identity() {
        let mut img = Image::new(2, 2, 1);
        img.set(1, 1, 0, 77);
        assert_eq!(img.to_grayscale(), img);
    }

    #[test]
    fn resize_preserves_corners_for_integer_scale() {
        let mut img = Image::new(4, 4, 1);
        img.set(0, 0, 0, 9);
        img.set(3, 3, 0, 7);
        let half = img.resize(2, 2);
        assert_eq!(half.width, 2);
        assert_eq!(half.get(0, 0, 0), 9);
    }

    #[test]
    #[should_panic(expected = "channels must be 1 or 3")]
    fn rejects_bad_channel_count() {
        let _ = Image::new(2, 2, 4);
    }

    #[test]
    fn flip_horizontal_mirrors_and_is_involutive() {
        let mut img = Image::new(3, 2, 1);
        img.set(0, 0, 0, 10);
        img.set(2, 1, 0, 99);
        let flipped = img.flip_horizontal();
        assert_eq!(flipped.get(2, 0, 0), 10);
        assert_eq!(flipped.get(0, 1, 0), 99);
        assert_eq!(flipped.flip_horizontal(), img);
    }
}
