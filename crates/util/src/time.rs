//! Simulated time.
//!
//! All substrates (cloud testbed, edge devices, network links) operate on a
//! shared simulated timeline rather than the host clock, so experiments are
//! deterministic and can model hours of testbed activity in milliseconds of
//! host time. Time is kept as `f64` seconds since the start of the scenario;
//! at the scales we simulate (< years) the 52-bit mantissa gives sub-
//! microsecond resolution, which is far below any latency we model.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulated timeline, in seconds since scenario start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

/// A span of simulated time, in seconds. May not be negative when produced
/// by the constructors; arithmetic is the caller's responsibility.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(pub f64);

impl SimTime {
    /// The scenario origin.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds.
    pub fn from_secs(s: f64) -> Self {
        SimTime(s)
    }

    /// Seconds since scenario start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is
    /// in the future (useful when sampling noisy timestamps).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// A duration of `s` simulated seconds (must be finite).
    pub fn from_secs(s: f64) -> Self {
        debug_assert!(s.is_finite(), "duration must be finite, got {s}");
        SimDuration(s)
    }

    /// A duration of `ms` milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        SimDuration(ms / 1e3)
    }

    /// A duration of `us` microseconds.
    pub fn from_micros(us: f64) -> Self {
        SimDuration(us / 1e6)
    }

    /// A duration of `m` minutes.
    pub fn from_mins(m: f64) -> Self {
        SimDuration(m * 60.0)
    }

    /// A duration of `h` hours.
    pub fn from_hours(h: f64) -> Self {
        SimDuration(h * 3600.0)
    }

    /// The duration in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The duration in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// The duration in minutes.
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// The duration in hours.
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Clamp to be non-negative.
    pub fn clamp_non_negative(self) -> SimDuration {
        SimDuration(self.0.max(0.0))
    }

    /// The longer of the two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s < 1e-3 {
            write!(f, "{:.1}us", s * 1e6)
        } else if s < 1.0 {
            write!(f, "{:.2}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{:.2}s", s)
        } else if s < 2.0 * 3600.0 {
            write!(f, "{:.1}min", s / 60.0)
        } else {
            write!(f, "{:.2}h", s / 3600.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(5.5);
        let t1 = t0 + d;
        assert_eq!(t1.as_secs(), 15.5);
        assert_eq!((t1 - t0).as_secs(), 5.5);
        assert_eq!(t1.since(t0).as_secs(), 5.5);
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert!((SimDuration::from_millis(1500.0).as_secs() - 1.5).abs() < 1e-12);
        assert!((SimDuration::from_micros(2_000_000.0).as_secs() - 2.0).abs() < 1e-12);
        assert!((SimDuration::from_mins(2.0).as_secs() - 120.0).abs() < 1e-12);
        assert!((SimDuration::from_hours(1.0).as_secs() - 3600.0).abs() < 1e-12);
        assert!((SimDuration::from_hours(1.0).as_mins() - 60.0).abs() < 1e-12);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimDuration::from_micros(12.0)), "12.0us");
        assert_eq!(format!("{}", SimDuration::from_millis(3.5)), "3.50ms");
        assert_eq!(format!("{}", SimDuration::from_secs(42.0)), "42.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(10.0)), "10.0min");
        assert_eq!(format!("{}", SimDuration::from_hours(3.0)), "3.00h");
    }

    #[test]
    fn min_max_choose_endpoints() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(
            SimDuration::from_secs(1.0).max(SimDuration::from_secs(3.0)),
            SimDuration::from_secs(3.0)
        );
    }

    #[test]
    fn scalar_ops() {
        let d = SimDuration::from_secs(4.0);
        assert_eq!((d * 2.0).as_secs(), 8.0);
        assert_eq!((d / 2.0).as_secs(), 2.0);
        assert_eq!(d / SimDuration::from_secs(2.0), 2.0);
    }
}
