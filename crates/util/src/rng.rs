//! Seeded RNG helpers.
//!
//! Every stochastic component in the reproduction takes an explicit seed so
//! experiments replay bit-for-bit. These helpers centralise seed derivation
//! so that independent subsystems seeded from one master seed do not share
//! correlated streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a `StdRng` from a plain `u64` seed.
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive a child seed from a master seed and a stream label.
///
/// Uses the SplitMix64 finaliser over `master ^ hash(label)` — cheap, stable
/// across platforms, and decorrelates streams far better than `master + i`.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    for b in label.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    splitmix64(master ^ h)
}

/// Derive a child RNG from a master seed and a stream label.
pub fn derive_rng(master: u64, label: &str) -> StdRng {
    rng_from_seed(derive_seed(master, label))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn derived_seeds_differ_by_label() {
        let s1 = derive_seed(7, "camera");
        let s2 = derive_seed(7, "actuator");
        let s3 = derive_seed(8, "camera");
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_seed(123, "net"), derive_seed(123, "net"));
        let mut a = derive_rng(123, "net");
        let mut b = derive_rng(123, "net");
        assert_eq!(a.gen::<f64>(), b.gen::<f64>());
    }
}
