//! Unit-typed simulation quantities.
//!
//! The continuum substrates exchange three physical dimensions — time,
//! data volume, and data rate — plus the training-progress counter. Until
//! this module they all travelled as bare `f64`/`u64`, so nothing stopped
//! a stage from handing seconds to a byte slot (the classic sim/deploy
//! mismatch the Sim2Real platforms warn about). The newtypes here are
//! zero-cost (`#[repr(transparent)]` over the raw scalar) and close under
//! exactly the operations that are dimensionally meaningful:
//!
//! ```text
//! Bytes / BytesPerSec  -> SimSeconds      (serialisation time)
//! Bytes / SimSeconds   -> BytesPerSec     (observed throughput)
//! BytesPerSec * SimSeconds -> Bytes       (volume moved in a window)
//! ```
//!
//! Adding [`Bytes`] to a [`SimSeconds`] is a *compile error*, which is the
//! whole point. [`SimSeconds`] is the existing [`SimDuration`] under its
//! dimensional name — the simulation already had a unit-typed second; this
//! module contributes the algebra that connects it to the data-plane
//! quantities, rather than a rival second type.
//!
//! The static side of the same contract lives in
//! `autolearn-analyze::contract`: stage specs declare the [`Unit`]-level
//! dimension of every quantity they report, and `validate_pipeline`
//! rejects a spec whose declared unit disagrees with the canonical
//! dimension for that quantity name.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Simulated seconds, under their dimensional name. This *is*
/// [`SimDuration`] — one canonical time type, two names: `SimDuration`
/// where code thinks about timelines, `SimSeconds` where it thinks about
/// unit algebra (dividing bytes by rates, multiplying rates by windows).
pub type SimSeconds = SimDuration;

/// A data volume in bytes. Construct with [`Bytes::new`] (or the `const`
/// literal-friendly [`Bytes`] tuple form); arithmetic saturates rather
/// than wraps, and `debug_assert!`s flag the overflow in test builds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
#[serde(transparent)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Construct from a raw byte count.
    pub const fn new(n: u64) -> Bytes {
        Bytes(n)
    }

    /// One kibibyte-free SI kilobyte (10^3), for readable literals.
    pub const fn kb(n: u64) -> Bytes {
        Bytes(n * 1_000)
    }

    /// SI megabytes (10^6).
    pub const fn mb(n: u64) -> Bytes {
        Bytes(n * 1_000_000)
    }

    /// The raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// The byte count as `f64`, for rate arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Checked addition: `None` on `u64` overflow.
    pub fn checked_add(self, rhs: Bytes) -> Option<Bytes> {
        self.0.checked_add(rhs.0).map(Bytes)
    }

    /// Subtraction clamped at zero (a transfer can't have negative bytes
    /// remaining).
    pub fn saturating_sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a fraction in `[0, 1]` (e.g. the un-transferred remainder
    /// of a resumable upload), rounding up so a partial byte still costs a
    /// full one on the wire.
    pub fn scale_ceil(self, fraction: f64) -> Bytes {
        debug_assert!(
            fraction.is_finite() && fraction >= 0.0,
            "byte fraction must be finite and non-negative, got {fraction}"
        );
        Bytes((self.0 as f64 * fraction.max(0.0)).ceil() as u64)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        debug_assert!(
            self.0.checked_add(rhs.0).is_some(),
            "byte count overflow: {} + {}",
            self.0,
            rhs.0
        );
        Bytes(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        *self = *self + rhs;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    /// Clamped at zero, like [`Bytes::saturating_sub`] — a transfer never
    /// has negative bytes remaining.
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        debug_assert!(
            self.0.checked_mul(rhs).is_some(),
            "byte count overflow: {} * {rhs}",
            self.0
        );
        Bytes(self.0.saturating_mul(rhs))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if self.0 < 1_000 {
            write!(f, "{}B", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.1}kB", b / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.1}MB", b / 1e6)
        } else {
            write!(f, "{:.2}GB", b / 1e9)
        }
    }
}

/// A data rate in bytes per simulated second. Must be positive and finite
/// when used as a divisor; [`Bytes::checked_div`]-style safety lives in
/// [`Bytes::div`], which saturates a non-positive rate to an "effectively
/// dead link" instead of producing `inf`/`NaN`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
#[repr(transparent)]
#[serde(transparent)]
pub struct BytesPerSec(pub f64);

impl BytesPerSec {
    /// Construct from a raw bytes-per-second rate.
    pub const fn new(rate: f64) -> BytesPerSec {
        BytesPerSec(rate)
    }

    /// The raw rate.
    pub const fn get(self) -> f64 {
        self.0
    }

    /// The slower of two rates (bottleneck composition).
    pub fn min(self, other: BytesPerSec) -> BytesPerSec {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Whether the rate is usable as a divisor (positive and finite).
    pub fn is_usable(self) -> bool {
        self.0.is_finite() && self.0 > 0.0
    }
}

impl Mul<f64> for BytesPerSec {
    type Output = BytesPerSec;
    /// Scale the rate by a dimensionless factor (protocol efficiency,
    /// degradation).
    fn mul(self, rhs: f64) -> BytesPerSec {
        BytesPerSec(self.0 * rhs)
    }
}

impl Mul<SimSeconds> for BytesPerSec {
    type Output = Bytes;
    /// Volume moved in a window: rate × time = bytes (floor).
    fn mul(self, rhs: SimSeconds) -> Bytes {
        let product = self.0 * rhs.as_secs();
        debug_assert!(product.is_finite() && product >= 0.0, "rate*time = {product}");
        Bytes(product.max(0.0) as u64)
    }
}

impl fmt::Display for BytesPerSec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Shares `Bytes`' magnitude formatting, with a `/s` suffix.
        write!(f, "{}/s", Bytes(self.0.max(0.0) as u64))
    }
}

impl Div<BytesPerSec> for Bytes {
    type Output = SimSeconds;
    /// Serialisation time: bytes ÷ rate = seconds. A non-positive or
    /// non-finite rate yields `SimSeconds::from_secs(f64::MAX)`-free
    /// saturation: the transfer of any non-zero payload over a dead link
    /// takes `f64::INFINITY`-free `MAX_DEAD_LINK_SECS`.
    fn div(self, rhs: BytesPerSec) -> SimSeconds {
        if !rhs.is_usable() {
            return SimSeconds::from_secs(if self.0 == 0 { 0.0 } else { MAX_DEAD_LINK_SECS });
        }
        SimSeconds::from_secs(self.0 as f64 / rhs.0)
    }
}

impl Div<SimSeconds> for Bytes {
    type Output = BytesPerSec;
    /// Observed throughput: bytes ÷ seconds = rate. A zero window gives a
    /// zero (unusable) rate rather than `inf`.
    fn div(self, rhs: SimSeconds) -> BytesPerSec {
        if rhs.as_secs() <= 0.0 {
            return BytesPerSec(0.0);
        }
        BytesPerSec(self.0 as f64 / rhs.as_secs())
    }
}

/// Saturation value for a transfer across an unusable (zero/negative
/// bandwidth) link: ten simulated years, large enough to fail any deadline
/// yet still finite for downstream arithmetic.
pub const MAX_DEAD_LINK_SECS: f64 = 10.0 * 365.0 * 24.0 * 3600.0;

/// A count of training epochs. Saturating arithmetic; the zero value is a
/// legal "no training happened yet" state.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[repr(transparent)]
#[serde(transparent)]
pub struct Epochs(pub u32);

impl Epochs {
    /// Zero epochs.
    pub const ZERO: Epochs = Epochs(0);

    /// Construct from a raw epoch count.
    pub const fn new(n: u32) -> Epochs {
        Epochs(n)
    }

    /// The raw count.
    pub const fn get(self) -> u32 {
        self.0
    }

    /// The count as `f64`, for fraction arithmetic.
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// The number of whole epochs completed at `fraction` of a run of
    /// `self` epochs — where a preempted training job can resume from,
    /// since checkpoints land on epoch boundaries.
    pub fn completed_at(self, fraction: f64) -> Epochs {
        debug_assert!((0.0..=1.0).contains(&fraction), "fraction {fraction}");
        Epochs((self.0 as f64 * fraction.clamp(0.0, 1.0)).floor() as u32)
    }

    /// At least one: degenerate zero-epoch configs divide safely.
    pub fn max_one(self) -> Epochs {
        Epochs(self.0.max(1))
    }
}

impl Add for Epochs {
    type Output = Epochs;
    fn add(self, rhs: Epochs) -> Epochs {
        Epochs(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Epochs {
    type Output = Epochs;
    fn sub(self, rhs: Epochs) -> Epochs {
        debug_assert!(self.0 >= rhs.0, "epoch underflow: {} - {}", self.0, rhs.0);
        Epochs(self.0.saturating_sub(rhs.0))
    }
}

impl Div for Epochs {
    type Output = f64;
    /// Progress fraction: epochs completed ÷ epochs planned.
    fn div(self, rhs: Epochs) -> f64 {
        debug_assert!(rhs.0 > 0, "division by zero epochs");
        self.0 as f64 / rhs.0.max(1) as f64
    }
}

impl fmt::Display for Epochs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ep", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_rate_time_triangle() {
        let payload = Bytes::mb(30);
        let rate = BytesPerSec::new(3.0e6);
        let t = payload / rate;
        assert!((t.as_secs() - 10.0).abs() < 1e-9);
        // Rate recovered from volume over window.
        let back = payload / t;
        assert!((back.get() - 3.0e6).abs() < 1e-3);
        // Volume recovered from rate times window.
        assert_eq!(rate * t, Bytes::mb(30));
    }

    #[test]
    fn bytes_arithmetic_saturates() {
        assert_eq!(Bytes::new(5) - Bytes::new(10), Bytes::ZERO);
        assert_eq!(Bytes::kb(2) + Bytes::new(500), Bytes::new(2_500));
        assert_eq!(Bytes::new(3) * 4, Bytes::new(12));
        let total: Bytes = [Bytes::new(1), Bytes::new(2), Bytes::new(3)].into_iter().sum();
        assert_eq!(total, Bytes::new(6));
    }

    #[test]
    fn scale_ceil_rounds_up() {
        assert_eq!(Bytes::new(10).scale_ceil(0.25), Bytes::new(3));
        assert_eq!(Bytes::new(10).scale_ceil(1.0), Bytes::new(10));
        assert_eq!(Bytes::new(10).scale_ceil(0.0), Bytes::ZERO);
    }

    #[test]
    fn dead_link_division_saturates_finite() {
        let t = Bytes::mb(1) / BytesPerSec::new(0.0);
        assert!(t.as_secs().is_finite());
        assert!(t.as_secs() >= MAX_DEAD_LINK_SECS);
        // Zero payload over a dead link is instant (nothing to move).
        assert_eq!((Bytes::ZERO / BytesPerSec::new(0.0)).as_secs(), 0.0);
        // Zero window gives an unusable, not infinite, rate.
        assert!(!(Bytes::mb(1) / SimSeconds::ZERO).is_usable());
    }

    #[test]
    fn rate_min_is_bottleneck() {
        let a = BytesPerSec::new(3.0e6);
        let b = BytesPerSec::new(60.0e6);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn epochs_fraction_floor() {
        let planned = Epochs::new(10);
        assert_eq!(planned.completed_at(0.67), Epochs::new(6));
        assert_eq!(planned.completed_at(0.0), Epochs::ZERO);
        assert_eq!(planned.completed_at(1.0), planned);
        assert!((Epochs::new(6) / planned - 0.6).abs() < 1e-12);
        assert_eq!(Epochs::ZERO.max_one(), Epochs::new(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Bytes::new(512)), "512B");
        assert_eq!(format!("{}", Bytes::mb(30)), "30.0MB");
        assert_eq!(format!("{}", BytesPerSec::new(3.0e6)), "3.0MB/s");
        assert_eq!(format!("{}", Epochs::new(7)), "7ep");
    }
}
