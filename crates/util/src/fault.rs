//! Deterministic, seeded fault injection for the edge-to-cloud continuum.
//!
//! The paper's deployment is anything but a happy path: student cars sit on
//! flaky campus WiFi, Chameleon leases run out of capacity mid-class, and
//! CHI@Edge containers die in the middle of a lesson. A [`FaultPlan`] turns
//! those scenarios into a *replayable schedule*: it is derived from a single
//! `u64` seed, and every fault it injects is drawn from per-site RNG streams
//! so that the same seed always produces the same faults at the same
//! operations — byte-identical chaos runs.
//!
//! Consumers (the net, cloud and edge crates) call [`FaultPlan::draw`] at
//! each fallible operation. The plan answers with `None` (no fault) or a
//! concrete [`FaultKind`] whose magnitudes were drawn from the same stream.
//! Every injected fault is recorded in the plan's log so a pipeline run can
//! attach the complete fault history to its report.

use crate::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where in the continuum a fault strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultSite {
    /// The network between car and cloud (link flaps, stalls, degradation).
    Net,
    /// The Chameleon testbed (launch failures, capacity windows, preemption).
    Cloud,
    /// The car-side device and container runtime (disconnects, crashes).
    Edge,
}

impl FaultSite {
    /// Stable human-readable name (also the RNG stream label suffix).
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Net => "net",
            FaultSite::Cloud => "cloud",
            FaultSite::Edge => "edge",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::Net => 0,
            FaultSite::Cloud => 1,
            FaultSite::Edge => 2,
        }
    }
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete injected failure, with deterministic magnitudes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The link drops mid-transfer: the attempt dies after `at_fraction` of
    /// the remaining bytes, then the link stays down for `downtime_s`.
    LinkFlap { at_fraction: f64, downtime_s: f64 },
    /// The link survives but bandwidth collapses to `bandwidth_factor` of
    /// nominal for the rest of the attempt (rain on the 2.4 GHz band).
    LinkDegraded { bandwidth_factor: f64 },
    /// The transfer freezes after `at_fraction` of the remaining bytes and
    /// the application gives up after a `stall_s` timeout.
    TransferStall { at_fraction: f64, stall_s: f64 },
    /// The bare-metal launch fails (PXE timeout, image write error) after
    /// `wasted_s` of lease time.
    LaunchFailure { wasted_s: f64 },
    /// The requested node type reports `InsufficientCapacity` for a window
    /// of `window_s`; the caller can wait it out or fall back to another
    /// node type.
    CapacityWindow { window_s: f64 },
    /// The lease is revoked after `at_fraction` of the work scheduled on it
    /// has completed (shared-testbed preemption).
    Preemption { at_fraction: f64 },
    /// The CHI@Edge daemon loses contact with the device for `outage_s`.
    DeviceDisconnect { outage_s: f64 },
    /// The container exits right after starting, wasting `wasted_s`.
    ContainerCrash { wasted_s: f64 },
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::LinkFlap {
                at_fraction,
                downtime_s,
            } => write!(f, "link flap at {:.0}% ({downtime_s:.1}s down)", at_fraction * 100.0),
            FaultKind::LinkDegraded { bandwidth_factor } => {
                write!(f, "link degraded to {:.0}% bandwidth", bandwidth_factor * 100.0)
            }
            FaultKind::TransferStall { at_fraction, stall_s } => {
                write!(f, "transfer stall at {:.0}% ({stall_s:.1}s timeout)", at_fraction * 100.0)
            }
            FaultKind::LaunchFailure { wasted_s } => {
                write!(f, "lease launch failure ({wasted_s:.1}s wasted)")
            }
            FaultKind::CapacityWindow { window_s } => {
                write!(f, "insufficient capacity for {window_s:.0}s")
            }
            FaultKind::Preemption { at_fraction } => {
                write!(f, "preempted at {:.0}% of the work", at_fraction * 100.0)
            }
            FaultKind::DeviceDisconnect { outage_s } => {
                write!(f, "device disconnect ({outage_s:.1}s outage)")
            }
            FaultKind::ContainerCrash { wasted_s } => {
                write!(f, "container crash ({wasted_s:.1}s wasted)")
            }
        }
    }
}

/// One injected fault, as recorded in the plan's log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// Which substrate the fault struck.
    pub site: FaultSite,
    /// The operation label the consumer passed to [`FaultPlan::draw`].
    pub op: String,
    /// What was injected.
    pub kind: FaultKind,
}

/// Per-site injection rates and caps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability that a network operation draws a fault.
    pub net_rate: f64,
    /// Probability that a cloud operation draws a fault.
    pub cloud_rate: f64,
    /// Probability that an edge operation draws a fault.
    pub edge_rate: f64,
    /// Hard cap on injected faults per site — keeps most plans recoverable
    /// under a bounded retry policy.
    pub max_per_site: u32,
}

impl FaultConfig {
    /// No faults, ever — the happy path.
    pub fn calm() -> FaultConfig {
        FaultConfig {
            net_rate: 0.0,
            cloud_rate: 0.0,
            edge_rate: 0.0,
            max_per_site: 0,
        }
    }

    /// Uniform chaos at `rate` (clamped to `[0, 1]`) across all sites, at
    /// most two injections per site.
    pub fn chaos(rate: f64) -> FaultConfig {
        let r = rate.clamp(0.0, 1.0);
        FaultConfig {
            net_rate: r,
            cloud_rate: r,
            edge_rate: r,
            max_per_site: 2,
        }
    }

    fn rate(&self, site: FaultSite) -> f64 {
        match site {
            FaultSite::Net => self.net_rate,
            FaultSite::Cloud => self.cloud_rate,
            FaultSite::Edge => self.edge_rate,
        }
    }
}

/// A seeded, deterministic fault schedule plus the log of what it injected.
pub struct FaultPlan {
    config: FaultConfig,
    streams: [StdRng; 3],
    counts: [u32; 3],
    log: Vec<InjectedFault>,
}

impl FaultPlan {
    /// Derive a plan from a master seed. Identical `(seed, config)` pairs
    /// produce identical draw sequences for identical call sequences.
    pub fn from_seed(seed: u64, config: FaultConfig) -> FaultPlan {
        FaultPlan {
            config,
            streams: [
                derive_rng(seed, "fault-net"),
                derive_rng(seed, "fault-cloud"),
                derive_rng(seed, "fault-edge"),
            ],
            counts: [0; 3],
            log: Vec::new(),
        }
    }

    /// A plan that never injects anything (the fault-free baseline).
    pub fn none() -> FaultPlan {
        FaultPlan::from_seed(0, FaultConfig::calm())
    }

    /// Consult the plan at a fallible operation. Returns the fault to
    /// inject, if any; the draw (and its magnitudes) come from the site's
    /// dedicated RNG stream and are recorded in [`FaultPlan::injected`].
    pub fn draw(&mut self, site: FaultSite, op: &str) -> Option<FaultKind> {
        let i = site.index();
        if self.counts[i] >= self.config.max_per_site {
            return None;
        }
        let rate = self.config.rate(site);
        if rate <= 0.0 {
            return None;
        }
        let rng = &mut self.streams[i];
        if rng.gen::<f64>() >= rate {
            return None;
        }
        let kind = match site {
            FaultSite::Net => match rng.gen_range(0u32..3) {
                0 => FaultKind::LinkFlap {
                    at_fraction: rng.gen_range(0.1..0.9),
                    downtime_s: rng.gen_range(2.0..20.0),
                },
                1 => FaultKind::LinkDegraded {
                    bandwidth_factor: rng.gen_range(0.25..0.75),
                },
                _ => FaultKind::TransferStall {
                    at_fraction: rng.gen_range(0.1..0.9),
                    stall_s: rng.gen_range(5.0..30.0),
                },
            },
            FaultSite::Cloud => match rng.gen_range(0u32..3) {
                0 => FaultKind::LaunchFailure {
                    wasted_s: rng.gen_range(20.0..90.0),
                },
                1 => FaultKind::CapacityWindow {
                    window_s: rng.gen_range(60.0..600.0),
                },
                _ => FaultKind::Preemption {
                    at_fraction: rng.gen_range(0.1..0.9),
                },
            },
            FaultSite::Edge => match rng.gen_range(0u32..2) {
                0 => FaultKind::DeviceDisconnect {
                    outage_s: rng.gen_range(5.0..60.0),
                },
                _ => FaultKind::ContainerCrash {
                    wasted_s: rng.gen_range(5.0..20.0),
                },
            },
        };
        self.counts[i] += 1;
        self.log.push(InjectedFault {
            site,
            op: op.to_string(),
            kind: kind.clone(),
        });
        Some(kind)
    }

    /// Everything this plan injected so far, in injection order.
    pub fn injected(&self) -> &[InjectedFault] {
        &self.log
    }

    /// The distinct sites this plan has struck so far.
    pub fn sites_hit(&self) -> Vec<FaultSite> {
        let mut sites = Vec::new();
        for f in &self.log {
            if !sites.contains(&f.site) {
                sites.push(f.site);
            }
        }
        sites
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(plan: &mut FaultPlan, n: usize) -> Vec<Option<FaultKind>> {
        (0..n)
            .map(|i| plan.draw(FaultSite::Net, &format!("op-{i}")))
            .collect()
    }

    #[test]
    fn calm_plan_never_injects() {
        let mut plan = FaultPlan::none();
        for site in [FaultSite::Net, FaultSite::Cloud, FaultSite::Edge] {
            for _ in 0..50 {
                assert_eq!(plan.draw(site, "x"), None);
            }
        }
        assert!(plan.injected().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::from_seed(42, FaultConfig::chaos(0.7));
        let mut b = FaultPlan::from_seed(42, FaultConfig::chaos(0.7));
        assert_eq!(drain(&mut a, 20), drain(&mut b, 20));
        assert_eq!(a.injected(), b.injected());
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FaultPlan::from_seed(1, FaultConfig::chaos(0.9));
        let mut b = FaultPlan::from_seed(2, FaultConfig::chaos(0.9));
        assert_ne!(drain(&mut a, 30), drain(&mut b, 30));
    }

    #[test]
    fn per_site_cap_is_enforced() {
        let mut plan = FaultPlan::from_seed(7, FaultConfig::chaos(1.0));
        let injected = drain(&mut plan, 20).into_iter().flatten().count();
        assert_eq!(injected, 2, "chaos cap is 2 per site");
        // Other sites still have headroom.
        assert!(plan.draw(FaultSite::Cloud, "launch").is_some());
    }

    #[test]
    fn sites_draw_site_appropriate_kinds() {
        let mut plan = FaultPlan::from_seed(
            3,
            FaultConfig {
                net_rate: 1.0,
                cloud_rate: 1.0,
                edge_rate: 1.0,
                max_per_site: 100,
            },
        );
        for _ in 0..30 {
            if let Some(k) = plan.draw(FaultSite::Cloud, "c") {
                assert!(matches!(
                    k,
                    FaultKind::LaunchFailure { .. }
                        | FaultKind::CapacityWindow { .. }
                        | FaultKind::Preemption { .. }
                ));
            }
            if let Some(k) = plan.draw(FaultSite::Edge, "e") {
                assert!(matches!(
                    k,
                    FaultKind::DeviceDisconnect { .. } | FaultKind::ContainerCrash { .. }
                ));
            }
        }
        let sites = plan.sites_hit();
        assert!(sites.contains(&FaultSite::Cloud) && sites.contains(&FaultSite::Edge));
    }

    #[test]
    fn log_records_op_labels() {
        let mut plan = FaultPlan::from_seed(5, FaultConfig::chaos(1.0));
        plan.draw(FaultSite::Net, "tub-upload");
        assert_eq!(plan.injected()[0].op, "tub-upload");
        assert_eq!(plan.injected()[0].site, FaultSite::Net);
    }

    #[test]
    fn injected_faults_serialize() {
        let mut plan = FaultPlan::from_seed(9, FaultConfig::chaos(1.0));
        plan.draw(FaultSite::Edge, "container");
        let json = serde_json::to_string(plan.injected()).unwrap();
        let back: Vec<InjectedFault> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan.injected());
    }
}
