//! Monotonic id generation.
//!
//! Substrate objects (leases, nodes, devices, artifacts, containers) all need
//! stable, unique, human-readable identifiers. `IdGen` hands out sequential
//! ids with a prefix; sequential rather than random so that logs and test
//! assertions are deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe monotonic id generator producing `prefix-N` strings.
#[derive(Debug)]
pub struct IdGen {
    prefix: &'static str,
    next: AtomicU64,
}

impl IdGen {
    /// A generator whose ids render as `<prefix>-<n>`.
    pub const fn new(prefix: &'static str) -> Self {
        IdGen {
            prefix,
            next: AtomicU64::new(1),
        }
    }

    /// Next numeric id.
    pub fn next_u64(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Next `prefix-N` string id.
    pub fn next_id(&self) -> String {
        format!("{}-{}", self.prefix, self.next_u64())
    }
}

/// Declare a strongly-typed numeric id wrapper.
///
/// ```
/// autolearn_util::typed_id!(LeaseId, "lease");
/// let id = LeaseId(7);
/// assert_eq!(id.to_string(), "lease-7");
/// ```
#[macro_export]
macro_rules! typed_id {
    ($name:ident, $prefix:expr) => {
        #[derive(
            Debug,
            Clone,
            Copy,
            PartialEq,
            Eq,
            Hash,
            PartialOrd,
            Ord,
            serde::Serialize,
            serde::Deserialize,
        )]
        /// Typed id minted by the corresponding [`IdGen`].
        pub struct $name(pub u64);

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}-{}", $prefix, self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_prefixed() {
        let gen = IdGen::new("node");
        assert_eq!(gen.next_id(), "node-1");
        assert_eq!(gen.next_id(), "node-2");
        assert_eq!(gen.next_u64(), 3);
    }

    #[test]
    fn ids_unique_across_threads() {
        use std::collections::HashSet;
        use std::sync::Arc;
        let gen = Arc::new(IdGen::new("x"));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&gen);
                std::thread::spawn(move || (0..250).map(|_| g.next_u64()).collect::<Vec<_>>())
            })
            .collect();
        let mut all = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(all.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(all.len(), 1000);
    }

    typed_id!(TestId, "test");

    #[test]
    fn typed_id_display() {
        assert_eq!(TestId(42).to_string(), "test-42");
        assert_eq!(TestId::from(3u64), TestId(3));
    }
}
