//! A minimal discrete-event clock.
//!
//! The cloud and edge substrates model long-running activities (provisioning
//! a bare-metal node, rsync-ing a dataset, training for twenty minutes of
//! GPU time) by scheduling completion events on this clock instead of
//! sleeping. Events carry an arbitrary payload `E`; ties in time are broken
//! by insertion order so runs are fully deterministic.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first,
        // with the lowest sequence number winning ties.
        other
            .at
            .partial_cmp(&self.at)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Discrete-event simulation clock with a typed event queue.
pub struct SimClock<E> {
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Scheduled<E>>,
}

impl<E> Default for SimClock<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> SimClock<E> {
    /// An empty clock at time zero.
    pub fn new() -> Self {
        SimClock {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `event` to fire at absolute time `at`. Scheduling in the past
    /// is clamped to `now` (the event fires on the next step).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Scheduled { at, seq, event });
    }

    /// Schedule `event` to fire `after` from now.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        self.schedule_at(self.now + after.clamp_non_negative(), event);
    }

    /// Pop the next event, advancing `now` to its timestamp.
    pub fn step(&mut self) -> Option<(SimTime, E)> {
        let Scheduled { at, event, .. } = self.queue.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Advance the clock without an event (e.g. idle waiting). Refuses to
    /// move backwards.
    pub fn advance_to(&mut self, t: SimTime) {
        self.now = self.now.max(t);
    }

    /// Drain every event in timestamp order, calling `f` on each.
    pub fn run_to_completion(&mut self, mut f: impl FnMut(SimTime, E)) {
        while let Some((t, e)) = self.step() {
            f(t, e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut clock = SimClock::new();
        clock.schedule_at(SimTime::from_secs(3.0), "c");
        clock.schedule_at(SimTime::from_secs(1.0), "a");
        clock.schedule_at(SimTime::from_secs(2.0), "b");
        let mut order = Vec::new();
        clock.run_to_completion(|t, e| order.push((t.as_secs(), e)));
        assert_eq!(order, vec![(1.0, "a"), (2.0, "b"), (3.0, "c")]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut clock = SimClock::new();
        for label in ["first", "second", "third"] {
            clock.schedule_at(SimTime::from_secs(5.0), label);
        }
        let mut order = Vec::new();
        clock.run_to_completion(|_, e| order.push(e));
        assert_eq!(order, vec!["first", "second", "third"]);
    }

    #[test]
    fn now_advances_with_steps() {
        let mut clock = SimClock::new();
        clock.schedule_after(SimDuration::from_secs(10.0), ());
        assert_eq!(clock.now(), SimTime::ZERO);
        clock.step();
        assert_eq!(clock.now(), SimTime::from_secs(10.0));
        // Scheduling in the past clamps to now.
        clock.schedule_at(SimTime::from_secs(1.0), ());
        let (t, _) = clock.step().unwrap();
        assert_eq!(t, SimTime::from_secs(10.0));
    }

    #[test]
    fn advance_to_never_rewinds() {
        let mut clock: SimClock<()> = SimClock::new();
        clock.advance_to(SimTime::from_secs(7.0));
        clock.advance_to(SimTime::from_secs(3.0));
        assert_eq!(clock.now(), SimTime::from_secs(7.0));
    }

    #[test]
    fn pending_counts_queue() {
        let mut clock = SimClock::new();
        assert_eq!(clock.pending(), 0);
        clock.schedule_after(SimDuration::from_secs(1.0), 1u32);
        clock.schedule_after(SimDuration::from_secs(2.0), 2u32);
        assert_eq!(clock.pending(), 2);
        clock.step();
        assert_eq!(clock.pending(), 1);
    }
}
