//! Sim-time retry policies: exponential backoff with deterministic jitter,
//! attempt caps and per-stage deadlines.
//!
//! The backoff schedule operates on *simulated* time — a retried pipeline
//! stage charges its backoff to the scenario clock, never to the host — and
//! the jitter is derived from a seed so replaying a run reproduces the exact
//! same waits.

use crate::rng::derive_rng;
use crate::time::SimDuration;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a fallible stage is retried.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts allowed (first try included). Never zero.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base_backoff: SimDuration,
    /// Multiplier applied per subsequent attempt.
    pub factor: f64,
    /// Ceiling on a single backoff.
    pub max_backoff: SimDuration,
    /// Deterministic jitter, as a fraction of the computed backoff added on
    /// top (decorrelates retry storms across stages).
    pub jitter_frac: f64,
    /// Optional cap on a stage's total simulated time (attempts + backoffs).
    pub deadline: Option<SimDuration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base_backoff: SimDuration::from_secs(5.0),
            factor: 2.0,
            max_backoff: SimDuration::from_mins(2.0),
            jitter_frac: 0.1,
            deadline: None,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, no backoff).
    pub fn no_retries() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Attach a per-stage deadline.
    pub fn with_deadline(mut self, deadline: SimDuration) -> RetryPolicy {
        self.deadline = Some(deadline);
        self
    }

    /// Whether attempt number `next_attempt` (1-based) may start after
    /// `elapsed` simulated time has already been spent in the stage.
    pub fn allows(&self, next_attempt: u32, elapsed: SimDuration) -> bool {
        next_attempt <= self.max_attempts.max(1) && !self.deadline_exceeded(elapsed)
    }

    /// Whether `elapsed` has blown the stage deadline.
    pub fn deadline_exceeded(&self, elapsed: SimDuration) -> bool {
        self.deadline
            .map(|d| elapsed.as_secs() >= d.as_secs())
            .unwrap_or(false)
    }

    /// Backoff to charge after failed attempt `attempt` (1-based), with
    /// jitter derived deterministically from `seed`.
    pub fn backoff(&self, attempt: u32, seed: u64) -> SimDuration {
        let exp = self.base_backoff.as_secs() * self.factor.powi(attempt.saturating_sub(1) as i32);
        let capped = exp.min(self.max_backoff.as_secs());
        let jitter = if self.jitter_frac > 0.0 {
            let mut rng = derive_rng(seed, &format!("backoff-{attempt}"));
            capped * self.jitter_frac * rng.gen::<f64>()
        } else {
            0.0
        };
        SimDuration::from_secs(capped + jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            jitter_frac: 0.0,
            ..RetryPolicy::default()
        };
        let b1 = p.backoff(1, 0).as_secs();
        let b2 = p.backoff(2, 0).as_secs();
        let b3 = p.backoff(3, 0).as_secs();
        assert_eq!(b1, 5.0);
        assert_eq!(b2, 10.0);
        assert_eq!(b3, 20.0);
        // Far attempts hit the ceiling.
        assert_eq!(p.backoff(30, 0).as_secs(), p.max_backoff.as_secs());
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        let a = p.backoff(2, 99);
        let b = p.backoff(2, 99);
        assert_eq!(a, b);
        let nominal = 10.0;
        assert!(a.as_secs() >= nominal && a.as_secs() <= nominal * (1.0 + p.jitter_frac));
        // Different seeds shift the jitter.
        assert_ne!(p.backoff(2, 99), p.backoff(2, 100));
    }

    #[test]
    fn attempt_cap_enforced() {
        let p = RetryPolicy::default();
        assert!(p.allows(4, SimDuration::ZERO));
        assert!(!p.allows(5, SimDuration::ZERO));
        assert!(RetryPolicy::no_retries().allows(1, SimDuration::ZERO));
        assert!(!RetryPolicy::no_retries().allows(2, SimDuration::ZERO));
    }

    #[test]
    fn deadline_enforced() {
        let p = RetryPolicy::default().with_deadline(SimDuration::from_secs(60.0));
        assert!(p.allows(2, SimDuration::from_secs(59.0)));
        assert!(!p.allows(2, SimDuration::from_secs(60.0)));
        assert!(p.deadline_exceeded(SimDuration::from_secs(61.0)));
        assert!(!RetryPolicy::default().deadline_exceeded(SimDuration::from_hours(10.0)));
    }

    #[test]
    fn zero_max_attempts_still_allows_first_try() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert!(p.allows(1, SimDuration::ZERO));
        assert!(!p.allows(2, SimDuration::ZERO));
    }
}
