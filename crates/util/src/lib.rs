//! Shared foundations for the AutoLearn reproduction.
//!
//! Everything in this crate is deliberately small and dependency-free (apart
//! from `rand`/`serde`): a simulated-time representation and discrete-event
//! clock used by the cloud/edge/network substrates, a raw image container
//! shared by the camera simulator, the tub dataset format and the neural
//! network library, typed id generation, and streaming statistics used by the
//! experiment harnesses.

pub mod ids;
pub mod image;
pub mod rng;
pub mod simclock;
pub mod stats;
pub mod time;

pub use ids::IdGen;
pub use image::Image;
pub use simclock::SimClock;
pub use stats::{percentile, RunningStats, Summary};
pub use time::{SimDuration, SimTime};
