//! Shared foundations for the AutoLearn reproduction.
//!
//! Everything in this crate is deliberately small and dependency-free (apart
//! from `rand`/`serde`): a simulated-time representation and discrete-event
//! clock used by the cloud/edge/network substrates, a raw image container
//! shared by the camera simulator, the tub dataset format and the neural
//! network library, typed id generation, and streaming statistics used by the
//! experiment harnesses.

pub mod fault;
pub mod ids;
pub mod image;
pub mod retry;
pub mod rng;
pub mod simclock;
pub mod stats;
pub mod time;

pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultSite, InjectedFault};
pub use ids::IdGen;
pub use image::Image;
pub use retry::RetryPolicy;
pub use rng::derive_seed;
pub use simclock::SimClock;
pub use stats::{percentile, RunningStats, Summary};
pub use time::{SimDuration, SimTime};
