//! Shared foundations for the AutoLearn reproduction.
//!
//! Everything in this crate is deliberately small and dependency-free (apart
//! from `rand`/`serde`): a simulated-time representation and discrete-event
//! clock used by the cloud/edge/network substrates, a raw image container
//! shared by the camera simulator, the tub dataset format and the neural
//! network library, typed id generation, and streaming statistics used by the
//! experiment harnesses.

/// Seeded fault plans shared by every chaos-aware subsystem.
pub mod fault;
/// Typed id newtypes and atomic id generation.
pub mod ids;
/// Raw interleaved image container.
pub mod image;
/// Bounded retry/backoff policies.
pub mod retry;
/// Deterministic seed/RNG derivation.
pub mod rng;
/// Discrete-event simulation clock.
pub mod simclock;
/// Streaming statistics for experiment harnesses.
pub mod stats;
/// Simulated time: instants and durations.
pub mod time;
/// Unit-typed quantities (bytes, rates, epochs).
pub mod units;

pub use fault::{FaultConfig, FaultKind, FaultPlan, FaultSite, InjectedFault};
pub use ids::IdGen;
pub use image::Image;
pub use retry::RetryPolicy;
pub use rng::derive_seed;
pub use simclock::SimClock;
pub use stats::{percentile, RunningStats, Summary};
pub use time::{SimDuration, SimTime};
pub use units::{Bytes, BytesPerSec, Epochs, SimSeconds};
