//! Streaming statistics used by the experiment harnesses.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold one sample in (Welford update).
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold a whole sequence of samples in.
    pub fn extend(&mut self, xs: impl IntoIterator<Item = f64>) {
        for x in xs {
            self.push(x);
        }
    }

    /// Samples seen so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n-1 denominator); zero for fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std/mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m.abs() < f64::EPSILON {
            0.0
        } else {
            self.std_dev() / m.abs()
        }
    }

    /// Smallest sample; 0 with no samples.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest sample; 0 with no samples.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Snapshot of all statistics at once.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// A point-in-time snapshot of a `RunningStats`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub std_dev: f64,
    pub min: f64,
    pub max: f64,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4} min={:.4} max={:.4}",
            self.count, self.mean, self.std_dev, self.min, self.max
        )
    }
}

/// Linear-interpolated percentile of an unsorted slice (`p` in [0, 100]).
/// Returns 0.0 for an empty slice.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let p = p.clamp(0.0, 100.0);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = RunningStats::new();
        s.extend(xs.iter().copied());
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance of this classic dataset is 32/7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let mut s = RunningStats::new();
        s.push(3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn cv_is_relative_spread() {
        let mut s = RunningStats::new();
        s.extend([9.0, 10.0, 11.0]);
        assert!((s.cv() - 1.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_handles_unsorted_input() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn summary_display_is_stable() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0, 3.0]);
        let line = s.summary().to_string();
        assert!(line.contains("n=3"));
        assert!(line.contains("mean=2.0000"));
    }
}
