//! Bare-metal provisioning.
//!
//! §3.3: the training notebook "reserves Chameleon hardware, deploys Ubuntu
//! 20.04 CUDA image with accelerator support, and then installs and
//! configures all the required dependencies including Donkey, Tensorflow,
//! and CUDNN drivers". Bare-metal deploys are the slow part of the student
//! experience; this state machine models the steps with realistic
//! durations so the pipeline experiments account for them.

use autolearn_util::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Where a node is in its deploy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProvisionState {
    Queued,
    /// PXE boot + image write to disk.
    DeployingImage,
    /// Cloud-init, driver install (CUDNN), pip installs (donkey, TF).
    ConfiguringSoftware,
    /// rsync of training data (duration supplied by the network model).
    SyncingData,
    Ready,
}

/// The steps and their durations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProvisioningPlan {
    /// (state entered, time spent in it).
    pub steps: Vec<(ProvisionState, SimDuration)>,
}

impl ProvisioningPlan {
    /// The paper's CUDA-image pathway. `data_sync` comes from
    /// `autolearn_net::transfer_time` for the tub being shipped.
    pub fn cuda_image(data_sync: SimDuration) -> ProvisioningPlan {
        ProvisioningPlan {
            steps: vec![
                (ProvisionState::Queued, SimDuration::from_mins(0.5)),
                (ProvisionState::DeployingImage, SimDuration::from_mins(9.0)),
                (
                    ProvisionState::ConfiguringSoftware,
                    SimDuration::from_mins(6.5),
                ),
                (ProvisionState::SyncingData, data_sync),
            ],
        }
    }

    /// A pre-baked appliance image (everything installed) — the ablation
    /// showing why Chameleon's appliance catalog matters.
    pub fn appliance_image(data_sync: SimDuration) -> ProvisioningPlan {
        ProvisioningPlan {
            steps: vec![
                (ProvisionState::Queued, SimDuration::from_mins(0.5)),
                (ProvisionState::DeployingImage, SimDuration::from_mins(9.0)),
                (
                    ProvisionState::ConfiguringSoftware,
                    SimDuration::from_mins(0.7),
                ),
                (ProvisionState::SyncingData, data_sync),
            ],
        }
    }

    pub fn total(&self) -> SimDuration {
        self.steps
            .iter()
            .fold(SimDuration::ZERO, |acc, (_, d)| acc + *d)
    }
}

/// Executes a plan against simulated time.
pub struct Provisioner {
    plan: ProvisioningPlan,
    started_at: SimTime,
}

impl Provisioner {
    pub fn start(plan: ProvisioningPlan, now: SimTime) -> Provisioner {
        Provisioner {
            plan,
            started_at: now,
        }
    }

    /// State at time `now`.
    pub fn state_at(&self, now: SimTime) -> ProvisionState {
        let mut elapsed = now.since(self.started_at);
        for (state, dur) in &self.plan.steps {
            if elapsed.as_secs() < dur.as_secs() {
                return *state;
            }
            elapsed -= *dur;
        }
        ProvisionState::Ready
    }

    /// When the node becomes Ready.
    pub fn ready_at(&self) -> SimTime {
        self.started_at + self.plan.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cuda_plan_takes_tens_of_minutes() {
        let plan = ProvisioningPlan::cuda_image(SimDuration::from_mins(2.0));
        let total = plan.total().as_mins();
        assert!(total > 10.0 && total < 30.0, "total {total} min");
    }

    #[test]
    fn appliance_is_faster_than_diy() {
        let sync = SimDuration::from_mins(2.0);
        let diy = ProvisioningPlan::cuda_image(sync).total();
        let app = ProvisioningPlan::appliance_image(sync).total();
        assert!(app.as_secs() < diy.as_secs() - 300.0);
    }

    #[test]
    fn state_machine_progresses_in_order() {
        let plan = ProvisioningPlan::cuda_image(SimDuration::from_mins(1.0));
        let p = Provisioner::start(plan, SimTime::from_secs(100.0));
        assert_eq!(p.state_at(SimTime::from_secs(100.0)), ProvisionState::Queued);
        assert_eq!(
            p.state_at(SimTime::from_secs(100.0 + 60.0)),
            ProvisionState::DeployingImage
        );
        assert_eq!(
            p.state_at(SimTime::from_secs(100.0 + 60.0 * 10.5)),
            ProvisionState::ConfiguringSoftware
        );
        assert_eq!(p.state_at(p.ready_at()), ProvisionState::Ready);
        assert_eq!(
            p.state_at(SimTime::from_secs(1e9)),
            ProvisionState::Ready
        );
    }

    #[test]
    fn syncing_state_reached_before_ready() {
        let plan = ProvisioningPlan::cuda_image(SimDuration::from_mins(3.0));
        let p = Provisioner::start(plan, SimTime::ZERO);
        // Just before ready: syncing data.
        let just_before = p.ready_at() - SimDuration::from_secs(10.0);
        assert_eq!(p.state_at(just_before), ProvisionState::SyncingData);
    }

    #[test]
    fn zero_sync_still_passes_through_states() {
        let plan = ProvisioningPlan::cuda_image(SimDuration::ZERO);
        let p = Provisioner::start(plan, SimTime::ZERO);
        assert_eq!(p.state_at(p.ready_at()), ProvisionState::Ready);
    }

    #[test]
    fn ready_time_is_start_plus_total() {
        let plan = ProvisioningPlan::appliance_image(SimDuration::ZERO);
        let total = plan.total();
        let p = Provisioner::start(plan, SimTime::from_secs(50.0));
        assert_eq!(p.ready_at().as_secs(), 50.0 + total.as_secs());
    }
}
