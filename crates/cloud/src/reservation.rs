//! Advance reservations.
//!
//! §3.2: *"All hardware is available either on-demand or via advance
//! reservations so that users can reserve required resources ahead of time,
//! for example, to manage resource scarcity or to guarantee resource
//! availability at a specific time slot for a class or a demonstration."*
//!
//! The reservation system keeps a per-node-type calendar of leases and
//! admits a new lease iff, at every instant of its window, the sum of
//! overlapping lease counts stays within the site's capacity.

use crate::hardware::Site;
use autolearn_util::typed_id;
use autolearn_util::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

typed_id!(LeaseId, "lease");

/// Lease lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LeaseState {
    Pending,
    Active,
    Ended,
}

/// A reserved block of nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Lease {
    pub id: LeaseId,
    pub project: String,
    pub node_type: String,
    pub nodes: u32,
    pub start: SimTime,
    pub end: SimTime,
    pub state: LeaseState,
}

impl Lease {
    fn overlaps(&self, start: SimTime, end: SimTime) -> bool {
        self.state != LeaseState::Ended && self.start.0 < end.0 && start.0 < self.end.0
    }
}

/// Why a reservation was refused.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReservationError {
    UnknownNodeType(String),
    /// Not enough capacity in the window; carries the worst-case number of
    /// free nodes over the window.
    InsufficientCapacity { free: u32, requested: u32 },
    InvalidWindow,
}

impl std::fmt::Display for ReservationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReservationError::UnknownNodeType(n) => write!(f, "unknown node type {n}"),
            ReservationError::InsufficientCapacity { free, requested } => {
                write!(f, "requested {requested} nodes, only {free} free")
            }
            ReservationError::InvalidWindow => write!(f, "lease end must be after start"),
        }
    }
}

impl std::error::Error for ReservationError {}

/// The per-site reservation calendar.
pub struct ReservationSystem {
    site: Site,
    leases: Vec<Lease>,
    next_id: u64,
}

impl ReservationSystem {
    pub fn new(site: Site) -> ReservationSystem {
        ReservationSystem {
            site,
            leases: Vec::new(),
            next_id: 1,
        }
    }

    pub fn site(&self) -> &Site {
        &self.site
    }

    pub fn leases(&self) -> &[Lease] {
        &self.leases
    }

    pub fn lease(&self, id: LeaseId) -> Option<&Lease> {
        self.leases.iter().find(|l| l.id == id)
    }

    /// Worst-case free nodes of `node_type` over `[start, end)`.
    pub fn min_free(&self, node_type: &str, start: SimTime, end: SimTime) -> u32 {
        let capacity = self.site.capacity_of(node_type);
        // Capacity only changes at lease boundaries; evaluate at the window
        // start and at every overlapping lease start inside the window.
        let mut check_points = vec![start];
        for l in &self.leases {
            if l.node_type == node_type && l.overlaps(start, end) && l.start.0 > start.0 {
                check_points.push(l.start);
            }
        }
        check_points
            .into_iter()
            .map(|t| {
                let used: u32 = self
                    .leases
                    .iter()
                    .filter(|l| {
                        l.node_type == node_type
                            && l.state != LeaseState::Ended
                            && l.start.0 <= t.0
                            && t.0 < l.end.0
                    })
                    .map(|l| l.nodes)
                    .sum();
                capacity.saturating_sub(used)
            })
            .min()
            .unwrap_or(capacity)
    }

    /// Request an advance reservation.
    pub fn reserve(
        &mut self,
        project: &str,
        node_type: &str,
        nodes: u32,
        start: SimTime,
        end: SimTime,
    ) -> Result<LeaseId, ReservationError> {
        if end.0 <= start.0 {
            return Err(ReservationError::InvalidWindow);
        }
        if self.site.node_type(node_type).is_none() {
            return Err(ReservationError::UnknownNodeType(node_type.to_string()));
        }
        let free = self.min_free(node_type, start, end);
        if free < nodes {
            return Err(ReservationError::InsufficientCapacity {
                free,
                requested: nodes,
            });
        }
        let id = LeaseId(self.next_id);
        self.next_id += 1;
        self.leases.push(Lease {
            id,
            project: project.to_string(),
            node_type: node_type.to_string(),
            nodes,
            start,
            end,
            state: if start.0 <= 0.0 {
                LeaseState::Active
            } else {
                LeaseState::Pending
            },
        });
        Ok(id)
    }

    /// On-demand request: starts `now`, runs for `duration`.
    pub fn on_demand(
        &mut self,
        project: &str,
        node_type: &str,
        nodes: u32,
        now: SimTime,
        duration: SimDuration,
    ) -> Result<LeaseId, ReservationError> {
        self.reserve(project, node_type, nodes, now, now + duration)
    }

    /// Progress lease states to `now` (Pending→Active→Ended).
    pub fn advance_time(&mut self, now: SimTime) {
        for l in &mut self.leases {
            if l.state != LeaseState::Ended {
                if now.0 >= l.end.0 {
                    l.state = LeaseState::Ended;
                } else if now.0 >= l.start.0 {
                    l.state = LeaseState::Active;
                }
            }
        }
    }

    /// End a lease early (frees capacity from `now`).
    pub fn terminate(&mut self, id: LeaseId, now: SimTime) {
        if let Some(l) = self.leases.iter_mut().find(|l| l.id == id) {
            l.end = now.min(l.end);
            l.state = LeaseState::Ended;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::{GpuKind, NodeType};

    fn tiny_site() -> Site {
        Site {
            name: "test".to_string(),
            inventory: vec![(NodeType::gpu_node(GpuKind::V100, 4), 2)],
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn reserve_within_capacity() {
        let mut rs = ReservationSystem::new(tiny_site());
        let id = rs.reserve("proj", "gpu_v100", 2, t(0.0), t(100.0)).unwrap();
        assert!(rs.lease(id).is_some());
        assert_eq!(rs.min_free("gpu_v100", t(0.0), t(100.0)), 0);
    }

    #[test]
    fn over_capacity_rejected() {
        let mut rs = ReservationSystem::new(tiny_site());
        rs.reserve("a", "gpu_v100", 1, t(0.0), t(100.0)).unwrap();
        let err = rs
            .reserve("b", "gpu_v100", 2, t(50.0), t(150.0))
            .unwrap_err();
        assert_eq!(
            err,
            ReservationError::InsufficientCapacity {
                free: 1,
                requested: 2
            }
        );
    }

    #[test]
    fn non_overlapping_windows_share_nodes() {
        let mut rs = ReservationSystem::new(tiny_site());
        rs.reserve("a", "gpu_v100", 2, t(0.0), t(100.0)).unwrap();
        // Back-to-back is fine: [100, 200).
        assert!(rs.reserve("b", "gpu_v100", 2, t(100.0), t(200.0)).is_ok());
    }

    #[test]
    fn partial_overlap_counts_peak_usage() {
        let mut rs = ReservationSystem::new(tiny_site());
        rs.reserve("a", "gpu_v100", 1, t(0.0), t(100.0)).unwrap();
        rs.reserve("b", "gpu_v100", 1, t(50.0), t(150.0)).unwrap();
        // In [60, 90) both leases hold a node: zero free.
        assert_eq!(rs.min_free("gpu_v100", t(60.0), t(90.0)), 0);
        // In [120, 140) only lease b: one free.
        assert_eq!(rs.min_free("gpu_v100", t(120.0), t(140.0)), 1);
        // A third overlapping full-window lease is rejected.
        assert!(rs.reserve("c", "gpu_v100", 1, t(40.0), t(160.0)).is_err());
    }

    #[test]
    fn advance_reservation_guarantees_class_slot() {
        // The paper's classroom scenario: reserve ahead, then on-demand
        // walk-ins cannot take the slot.
        let mut rs = ReservationSystem::new(tiny_site());
        let class = rs.reserve("class", "gpu_v100", 2, t(1000.0), t(2000.0));
        assert!(class.is_ok());
        // Walk-in wants a long job spanning the class window → refused.
        assert!(rs.on_demand("walkin", "gpu_v100", 1, t(900.0), SimDuration::from_secs(300.0)).is_err());
        // Short job ending before the class starts → fine.
        assert!(rs.on_demand("walkin", "gpu_v100", 1, t(900.0), SimDuration::from_secs(50.0)).is_ok());
    }

    #[test]
    fn unknown_type_and_bad_window() {
        let mut rs = ReservationSystem::new(tiny_site());
        assert!(matches!(
            rs.reserve("p", "gpu_h100", 1, t(0.0), t(10.0)),
            Err(ReservationError::UnknownNodeType(_))
        ));
        assert!(matches!(
            rs.reserve("p", "gpu_v100", 1, t(10.0), t(10.0)),
            Err(ReservationError::InvalidWindow)
        ));
    }

    #[test]
    fn inverted_window_rejected() {
        let mut rs = ReservationSystem::new(tiny_site());
        assert_eq!(
            rs.reserve("p", "gpu_v100", 1, t(100.0), t(50.0)),
            Err(ReservationError::InvalidWindow)
        );
        // Nothing was recorded for the bad request.
        assert!(rs.leases().is_empty());
    }

    #[test]
    fn insufficient_capacity_reports_worst_case_free() {
        // Capacity 2; A holds one node over the whole window, B another in
        // the middle. The worst case anywhere in [0, 100) is zero free — the
        // error must report that, not the 1 free at the window edges.
        let mut rs = ReservationSystem::new(tiny_site());
        rs.reserve("a", "gpu_v100", 1, t(0.0), t(100.0)).unwrap();
        rs.reserve("b", "gpu_v100", 1, t(40.0), t(60.0)).unwrap();
        let err = rs.reserve("c", "gpu_v100", 2, t(0.0), t(100.0)).unwrap_err();
        assert_eq!(
            err,
            ReservationError::InsufficientCapacity {
                free: 0,
                requested: 2
            }
        );
    }

    #[test]
    fn back_to_back_leases_do_not_stack_in_min_free() {
        // A ends exactly where B starts; at t=100 only B holds a node, so the
        // worst case over the combined span is capacity - 1, not capacity - 2.
        let mut rs = ReservationSystem::new(tiny_site());
        rs.reserve("a", "gpu_v100", 1, t(0.0), t(100.0)).unwrap();
        rs.reserve("b", "gpu_v100", 1, t(100.0), t(200.0)).unwrap();
        assert_eq!(rs.min_free("gpu_v100", t(0.0), t(200.0)), 1);
    }

    #[test]
    fn lifecycle_transitions() {
        let mut rs = ReservationSystem::new(tiny_site());
        let id = rs.reserve("p", "gpu_v100", 1, t(10.0), t(20.0)).unwrap();
        assert_eq!(rs.lease(id).unwrap().state, LeaseState::Pending);
        rs.advance_time(t(15.0));
        assert_eq!(rs.lease(id).unwrap().state, LeaseState::Active);
        rs.advance_time(t(25.0));
        assert_eq!(rs.lease(id).unwrap().state, LeaseState::Ended);
    }

    #[test]
    fn early_termination_frees_capacity() {
        let mut rs = ReservationSystem::new(tiny_site());
        let id = rs.reserve("p", "gpu_v100", 2, t(0.0), t(1000.0)).unwrap();
        assert!(rs.reserve("q", "gpu_v100", 1, t(10.0), t(20.0)).is_err());
        rs.terminate(id, t(5.0));
        assert!(rs.reserve("q", "gpu_v100", 1, t(10.0), t(20.0)).is_ok());
    }
}
