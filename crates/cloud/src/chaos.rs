//! Fault-aware lease launches.
//!
//! [`launch_lease`] wraps [`ReservationSystem::on_demand`] with the cloud
//! half of the fault model: a seeded [`FaultPlan`] can make the launch fail
//! transiently (PXE timeout, image write error), report an
//! `InsufficientCapacity` window (the class ahead of you took every V100),
//! or let the lease start but schedule a preemption partway through the
//! work placed on it — the shared-testbed failure modes the paper's
//! students actually hit.

use crate::reservation::{LeaseId, ReservationError, ReservationSystem};
use autolearn_obs::{AttrValue, Obs};
use autolearn_util::fault::{FaultKind, FaultPlan, FaultSite};
use autolearn_util::{SimDuration, SimTime};

/// Simulated time for a successful on-demand lease launch: the lease API
/// round trip plus node power-on.
pub const LAUNCH_OVERHEAD_S: f64 = 25.0;

/// Simulated time wasted discovering that a node type has no free capacity
/// (the lease request is refused quickly).
pub const CAPACITY_PROBE_S: f64 = 5.0;

/// A lease that launched — possibly with a preemption already scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseLaunch {
    /// The admitted lease.
    pub lease: LeaseId,
    /// Simulated time the launch took.
    pub launch_time: SimDuration,
    /// If set, the lease will be revoked after this fraction of the work
    /// scheduled on it has completed.
    pub preempt_at_fraction: Option<f64>,
}

/// Why a lease launch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The reservation calendar genuinely refused the request.
    Refused(ReservationError),
    /// Injected transient launch failure; retrying is reasonable.
    Transient { wasted: SimDuration },
    /// Injected capacity exhaustion: no free nodes of this type for
    /// `window`; fall back to another node type or wait it out.
    CapacityWindow {
        wasted: SimDuration,
        window: SimDuration,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Refused(e) => write!(f, "reservation refused: {e}"),
            LaunchError::Transient { wasted } => {
                write!(f, "transient launch failure ({wasted} wasted)")
            }
            LaunchError::CapacityWindow { window, .. } => {
                write!(f, "insufficient capacity for {window}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Launch an on-demand lease under fault injection. The fault draw is
/// labelled with `node_type` so the plan's log shows which hardware the
/// fault struck.
pub fn launch_lease(
    rs: &mut ReservationSystem,
    project: &str,
    node_type: &str,
    nodes: u32,
    now: SimTime,
    duration: SimDuration,
    plan: &mut FaultPlan,
) -> Result<LeaseLaunch, LaunchError> {
    match plan.draw(FaultSite::Cloud, node_type) {
        Some(FaultKind::LaunchFailure { wasted_s }) => Err(LaunchError::Transient {
            wasted: SimDuration::from_secs(wasted_s),
        }),
        Some(FaultKind::CapacityWindow { window_s }) => Err(LaunchError::CapacityWindow {
            wasted: SimDuration::from_secs(CAPACITY_PROBE_S),
            window: SimDuration::from_secs(window_s),
        }),
        drawn => {
            let preempt_at_fraction = match drawn {
                Some(FaultKind::Preemption { at_fraction }) => Some(at_fraction),
                _ => None,
            };
            rs.on_demand(project, node_type, nodes, now, duration)
                .map(|lease| LeaseLaunch {
                    lease,
                    launch_time: SimDuration::from_secs(LAUNCH_OVERHEAD_S),
                    preempt_at_fraction,
                })
                .map_err(LaunchError::Refused)
        }
    }
}

/// [`launch_lease`] with telemetry: bumps `cloud.launch_attempts` (and
/// `cloud.preemptions` when the admitted lease carries a scheduled
/// preemption), records freshly injected faults as `fault` events, and
/// emits `lease-admitted` / `preemption-scheduled` / `launch-failed`
/// events. The launch outcome is identical to the unobserved call.
#[allow(clippy::too_many_arguments)]
pub fn launch_lease_observed(
    rs: &mut ReservationSystem,
    project: &str,
    node_type: &str,
    nodes: u32,
    now: SimTime,
    duration: SimDuration,
    plan: &mut FaultPlan,
    obs: &mut Obs,
) -> Result<LeaseLaunch, LaunchError> {
    let faults_before = plan.injected().len();
    let result = launch_lease(rs, project, node_type, nodes, now, duration, plan);
    obs.counter_add("cloud.launch_attempts", 1);
    obs.record_injected_faults(&plan.injected()[faults_before..]);
    match &result {
        Ok(launch) => {
            obs.event(
                "lease-admitted",
                vec![
                    ("node_type".to_string(), AttrValue::Str(node_type.to_string())),
                    (
                        "launch_s".to_string(),
                        AttrValue::F64(launch.launch_time.as_secs()),
                    ),
                ],
            );
            if let Some(at_fraction) = launch.preempt_at_fraction {
                obs.counter_add("cloud.preemptions", 1);
                obs.event(
                    "preemption-scheduled",
                    vec![
                        ("node_type".to_string(), AttrValue::Str(node_type.to_string())),
                        ("at_fraction".to_string(), AttrValue::F64(at_fraction)),
                    ],
                );
            }
        }
        Err(err) => {
            obs.event(
                "launch-failed",
                vec![
                    ("node_type".to_string(), AttrValue::Str(node_type.to_string())),
                    ("error".to_string(), AttrValue::Str(err.to_string())),
                ],
            );
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::Site;
    use autolearn_util::fault::FaultConfig;

    fn launch(plan: &mut FaultPlan) -> Result<LeaseLaunch, LaunchError> {
        let mut rs = ReservationSystem::new(Site::chameleon());
        launch_lease(
            &mut rs,
            "autolearn",
            "gpu_v100",
            1,
            SimTime::ZERO,
            SimDuration::from_hours(1.0),
            plan,
        )
    }

    #[test]
    fn calm_plan_launches_cleanly() {
        let l = launch(&mut FaultPlan::none()).unwrap();
        assert_eq!(l.launch_time.as_secs(), LAUNCH_OVERHEAD_S);
        assert_eq!(l.preempt_at_fraction, None);
    }

    #[test]
    fn genuine_refusals_pass_through_typed() {
        let mut rs = ReservationSystem::new(Site::chameleon());
        let err = launch_lease(
            &mut rs,
            "autolearn",
            "gpu_h100",
            1,
            SimTime::ZERO,
            SimDuration::from_hours(1.0),
            &mut FaultPlan::none(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LaunchError::Refused(ReservationError::UnknownNodeType(_))
        ));
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        let mut seen_transient = false;
        let mut seen_capacity = false;
        let mut seen_preempt = false;
        for seed in 0..128 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            match launch(&mut plan) {
                Err(LaunchError::Transient { wasted }) => {
                    assert!(wasted.as_secs() > 0.0);
                    seen_transient = true;
                }
                Err(LaunchError::CapacityWindow { wasted, window }) => {
                    assert!(wasted.as_secs() > 0.0 && window.as_secs() > 0.0);
                    seen_capacity = true;
                }
                Ok(l) if l.preempt_at_fraction.is_some() => {
                    let f = l.preempt_at_fraction.unwrap();
                    assert!(f > 0.0 && f < 1.0);
                    seen_preempt = true;
                }
                _ => {}
            }
        }
        assert!(seen_transient && seen_capacity && seen_preempt);
    }

    #[test]
    fn observed_launch_matches_unobserved_and_reports_events() {
        let mut seen_admit = false;
        let mut seen_fail = false;
        let mut seen_preempt = false;
        for seed in 0..128 {
            let mut plain = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            let mut rs = ReservationSystem::new(Site::chameleon());
            let mut obs = Obs::new();
            let observed = launch_lease_observed(
                &mut rs,
                "autolearn",
                "gpu_v100",
                1,
                SimTime::ZERO,
                SimDuration::from_hours(1.0),
                &mut plan,
                &mut obs,
            );
            assert_eq!(launch(&mut plain), observed, "telemetry must not change outcome");
            assert_eq!(obs.metrics().counter("cloud.launch_attempts"), 1);
            match observed {
                Ok(l) => {
                    assert_eq!(obs.trace().events_named("lease-admitted").count(), 1);
                    seen_admit = true;
                    if l.preempt_at_fraction.is_some() {
                        assert_eq!(obs.metrics().counter("cloud.preemptions"), 1);
                        assert_eq!(obs.trace().events_named("preemption-scheduled").count(), 1);
                        seen_preempt = true;
                    }
                }
                Err(_) => {
                    assert_eq!(obs.trace().events_named("launch-failed").count(), 1);
                    assert!(obs.metrics().counter("cloud.faults") >= 1);
                    seen_fail = true;
                }
            }
        }
        assert!(seen_admit && seen_fail && seen_preempt);
    }

    #[test]
    fn launch_outcome_deterministic_per_seed() {
        for seed in [4u64, 21, 77] {
            let mut a = FaultPlan::from_seed(seed, FaultConfig::chaos(0.8));
            let mut b = FaultPlan::from_seed(seed, FaultConfig::chaos(0.8));
            assert_eq!(launch(&mut a), launch(&mut b));
        }
    }
}
