//! Fault-aware lease launches.
//!
//! [`launch_lease`] wraps [`ReservationSystem::on_demand`] with the cloud
//! half of the fault model: a seeded [`FaultPlan`] can make the launch fail
//! transiently (PXE timeout, image write error), report an
//! `InsufficientCapacity` window (the class ahead of you took every V100),
//! or let the lease start but schedule a preemption partway through the
//! work placed on it — the shared-testbed failure modes the paper's
//! students actually hit.

use crate::reservation::{LeaseId, ReservationError, ReservationSystem};
use autolearn_util::fault::{FaultKind, FaultPlan, FaultSite};
use autolearn_util::{SimDuration, SimTime};

/// Simulated time for a successful on-demand lease launch: the lease API
/// round trip plus node power-on.
pub const LAUNCH_OVERHEAD_S: f64 = 25.0;

/// Simulated time wasted discovering that a node type has no free capacity
/// (the lease request is refused quickly).
pub const CAPACITY_PROBE_S: f64 = 5.0;

/// A lease that launched — possibly with a preemption already scheduled.
#[derive(Debug, Clone, PartialEq)]
pub struct LeaseLaunch {
    /// The admitted lease.
    pub lease: LeaseId,
    /// Simulated time the launch took.
    pub launch_time: SimDuration,
    /// If set, the lease will be revoked after this fraction of the work
    /// scheduled on it has completed.
    pub preempt_at_fraction: Option<f64>,
}

/// Why a lease launch failed.
#[derive(Debug, Clone, PartialEq)]
pub enum LaunchError {
    /// The reservation calendar genuinely refused the request.
    Refused(ReservationError),
    /// Injected transient launch failure; retrying is reasonable.
    Transient { wasted: SimDuration },
    /// Injected capacity exhaustion: no free nodes of this type for
    /// `window`; fall back to another node type or wait it out.
    CapacityWindow {
        wasted: SimDuration,
        window: SimDuration,
    },
}

impl std::fmt::Display for LaunchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LaunchError::Refused(e) => write!(f, "reservation refused: {e}"),
            LaunchError::Transient { wasted } => {
                write!(f, "transient launch failure ({wasted} wasted)")
            }
            LaunchError::CapacityWindow { window, .. } => {
                write!(f, "insufficient capacity for {window}")
            }
        }
    }
}

impl std::error::Error for LaunchError {}

/// Launch an on-demand lease under fault injection. The fault draw is
/// labelled with `node_type` so the plan's log shows which hardware the
/// fault struck.
pub fn launch_lease(
    rs: &mut ReservationSystem,
    project: &str,
    node_type: &str,
    nodes: u32,
    now: SimTime,
    duration: SimDuration,
    plan: &mut FaultPlan,
) -> Result<LeaseLaunch, LaunchError> {
    match plan.draw(FaultSite::Cloud, node_type) {
        Some(FaultKind::LaunchFailure { wasted_s }) => Err(LaunchError::Transient {
            wasted: SimDuration::from_secs(wasted_s),
        }),
        Some(FaultKind::CapacityWindow { window_s }) => Err(LaunchError::CapacityWindow {
            wasted: SimDuration::from_secs(CAPACITY_PROBE_S),
            window: SimDuration::from_secs(window_s),
        }),
        drawn => {
            let preempt_at_fraction = match drawn {
                Some(FaultKind::Preemption { at_fraction }) => Some(at_fraction),
                _ => None,
            };
            rs.on_demand(project, node_type, nodes, now, duration)
                .map(|lease| LeaseLaunch {
                    lease,
                    launch_time: SimDuration::from_secs(LAUNCH_OVERHEAD_S),
                    preempt_at_fraction,
                })
                .map_err(LaunchError::Refused)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::Site;
    use autolearn_util::fault::FaultConfig;

    fn launch(plan: &mut FaultPlan) -> Result<LeaseLaunch, LaunchError> {
        let mut rs = ReservationSystem::new(Site::chameleon());
        launch_lease(
            &mut rs,
            "autolearn",
            "gpu_v100",
            1,
            SimTime::ZERO,
            SimDuration::from_hours(1.0),
            plan,
        )
    }

    #[test]
    fn calm_plan_launches_cleanly() {
        let l = launch(&mut FaultPlan::none()).unwrap();
        assert_eq!(l.launch_time.as_secs(), LAUNCH_OVERHEAD_S);
        assert_eq!(l.preempt_at_fraction, None);
    }

    #[test]
    fn genuine_refusals_pass_through_typed() {
        let mut rs = ReservationSystem::new(Site::chameleon());
        let err = launch_lease(
            &mut rs,
            "autolearn",
            "gpu_h100",
            1,
            SimTime::ZERO,
            SimDuration::from_hours(1.0),
            &mut FaultPlan::none(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LaunchError::Refused(ReservationError::UnknownNodeType(_))
        ));
    }

    #[test]
    fn injected_faults_surface_as_typed_errors() {
        let mut seen_transient = false;
        let mut seen_capacity = false;
        let mut seen_preempt = false;
        for seed in 0..128 {
            let mut plan = FaultPlan::from_seed(seed, FaultConfig::chaos(1.0));
            match launch(&mut plan) {
                Err(LaunchError::Transient { wasted }) => {
                    assert!(wasted.as_secs() > 0.0);
                    seen_transient = true;
                }
                Err(LaunchError::CapacityWindow { wasted, window }) => {
                    assert!(wasted.as_secs() > 0.0 && window.as_secs() > 0.0);
                    seen_capacity = true;
                }
                Ok(l) if l.preempt_at_fraction.is_some() => {
                    let f = l.preempt_at_fraction.unwrap();
                    assert!(f > 0.0 && f < 1.0);
                    seen_preempt = true;
                }
                _ => {}
            }
        }
        assert!(seen_transient && seen_capacity && seen_preempt);
    }

    #[test]
    fn launch_outcome_deterministic_per_seed() {
        for seed in [4u64, 21, 77] {
            let mut a = FaultPlan::from_seed(seed, FaultConfig::chaos(0.8));
            let mut b = FaultPlan::from_seed(seed, FaultConfig::chaos(0.8));
            assert_eq!(launch(&mut a), launch(&mut b));
        }
    }
}
