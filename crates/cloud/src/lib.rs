//! Chameleon-testbed substrate.
//!
//! Models the slice of the Chameleon cloud the paper's module leans on
//! (§3.2): the GPU hardware catalog ("40 nodes with a single Nvidia RTX6000
//! ... sets of 4 nodes each with 4x Nvidia V100, P100, or A100"), advance
//! reservations ("guarantee resource availability at a specific time slot
//! for a class"), bare-metal provisioning with the CUDA image the training
//! notebook deploys, the Swift object store that holds datasets and
//! pre-trained models, and federated identity/projects.
//!
//! Hardware is simulated: nodes carry published peak-FLOPS figures and an
//! analytic performance model attributes training/inference time, while the
//! actual gradient math runs on the host (see DESIGN.md, substitutions).

pub mod chaos;
pub mod hardware;
pub mod identity;
pub mod objectstore;
pub mod perf;
pub mod provision;
pub mod reservation;

pub use chaos::{launch_lease, LaunchError, LeaseLaunch, LAUNCH_OVERHEAD_S};
pub use hardware::{ComputeDevice, GpuKind, NodeType, Site};
pub use identity::{Allocation, IdentityService, Project, User};
pub use objectstore::{ObjectStore, StoredObject};
pub use perf::{
    inference_latency, multi_gpu_training_time, training_time, MultiGpuConfig, TrainingCostModel,
};
pub use provision::{ProvisionState, Provisioner, ProvisioningPlan};
pub use reservation::{Lease, LeaseId, LeaseState, ReservationError, ReservationSystem};
