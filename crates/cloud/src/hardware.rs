//! The hardware catalog.

use serde::{Deserialize, Serialize};

/// GPU models named in §3.2/§3.3 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    A100,
    V100,
    /// The paper's "v100NVLINK" nodes: same chip, faster interconnect, so
    /// slightly better sustained throughput in multi-GPU training.
    V100NvLink,
    P100,
    Rtx6000,
    M40,
    K80,
    /// AMD MI100 ("other architectures round out a variety of choices").
    Mi100,
}

impl GpuKind {
    /// Peak fp32 TFLOP/s (published figures).
    pub fn peak_tflops(self) -> f64 {
        match self {
            GpuKind::A100 => 19.5,
            GpuKind::V100 => 15.7,
            GpuKind::V100NvLink => 15.7,
            GpuKind::P100 => 10.6,
            GpuKind::Rtx6000 => 16.3,
            GpuKind::M40 => 6.8,
            GpuKind::K80 => 5.6, // per-board (two GK210)
            GpuKind::Mi100 => 23.1,
        }
    }

    /// Fraction of peak a small-model training loop actually sustains
    /// (kernel-launch bound at these model sizes; newer parts with better
    /// schedulers and NVLink-fed parts do better).
    pub fn sustained_fraction(self) -> f64 {
        match self {
            GpuKind::A100 => 0.32,
            GpuKind::V100 => 0.26,
            GpuKind::V100NvLink => 0.29,
            GpuKind::P100 => 0.22,
            GpuKind::Rtx6000 => 0.25,
            GpuKind::M40 => 0.18,
            GpuKind::K80 => 0.14,
            GpuKind::Mi100 => 0.20, // software stack maturity tax
        }
    }

    /// Memory, GiB.
    pub fn memory_gib(self) -> u32 {
        match self {
            GpuKind::A100 => 40,
            GpuKind::V100 | GpuKind::V100NvLink => 32,
            GpuKind::P100 => 16,
            GpuKind::Rtx6000 => 24,
            GpuKind::M40 => 24,
            GpuKind::K80 => 24,
            GpuKind::Mi100 => 32,
        }
    }

    /// Per-batch fixed overhead, s (kernel launches, host sync).
    pub fn batch_overhead_s(self) -> f64 {
        match self {
            GpuKind::A100 => 0.0018,
            GpuKind::V100 | GpuKind::V100NvLink => 0.0022,
            GpuKind::Rtx6000 => 0.0022,
            GpuKind::P100 => 0.0028,
            GpuKind::M40 => 0.0035,
            GpuKind::K80 => 0.0045,
            GpuKind::Mi100 => 0.0030,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            GpuKind::A100 => "A100",
            GpuKind::V100 => "V100",
            GpuKind::V100NvLink => "V100-NVLink",
            GpuKind::P100 => "P100",
            GpuKind::Rtx6000 => "RTX6000",
            GpuKind::M40 => "M40",
            GpuKind::K80 => "K80",
            GpuKind::Mi100 => "MI100",
        }
    }

    /// The GPUs the paper says the training notebook was tested on (§3.3).
    pub fn paper_tested() -> [GpuKind; 5] {
        [
            GpuKind::A100,
            GpuKind::V100,
            GpuKind::V100NvLink,
            GpuKind::Rtx6000,
            GpuKind::P100,
        ]
    }
}

impl std::fmt::Display for GpuKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Anything that can run model math — GPUs, but also the car's Raspberry
/// Pi (for on-board inference) and a laptop (the simulator host).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputeDevice {
    pub name: String,
    /// Sustained GFLOP/s for small-model fp32 work.
    pub sustained_gflops: f64,
    /// Fixed per-call overhead, s.
    pub call_overhead_s: f64,
}

impl ComputeDevice {
    pub fn of_gpu(gpu: GpuKind) -> ComputeDevice {
        ComputeDevice {
            name: gpu.name().to_string(),
            sustained_gflops: gpu.peak_tflops() * gpu.sustained_fraction() * 1e3,
            call_overhead_s: gpu.batch_overhead_s(),
        }
    }

    /// Raspberry Pi 4B (the car's brain): ~13.5 GFLOP/s NEON fp32
    /// sustained, tiny call overhead (no PCIe hop).
    pub fn raspberry_pi4() -> ComputeDevice {
        ComputeDevice {
            name: "RasPi4".to_string(),
            sustained_gflops: 13.5,
            call_overhead_s: 0.0002,
        }
    }

    /// A student laptop running the simulator (§3.3: "can be installed on
    /// various OS ... students' laptops").
    pub fn laptop() -> ComputeDevice {
        ComputeDevice {
            name: "laptop".to_string(),
            sustained_gflops: 80.0,
            call_overhead_s: 0.0001,
        }
    }
}

/// A reservable bare-metal node type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeType {
    pub name: String,
    pub gpu: Option<GpuKind>,
    pub gpus_per_node: u32,
}

impl NodeType {
    pub fn gpu_node(gpu: GpuKind, gpus_per_node: u32) -> NodeType {
        NodeType {
            name: format!("gpu_{}", gpu.name().to_lowercase()),
            gpu: Some(gpu),
            gpus_per_node,
        }
    }

    pub fn compute_node() -> NodeType {
        NodeType {
            name: "compute_skylake".to_string(),
            gpu: None,
            gpus_per_node: 0,
        }
    }
}

/// A testbed site with an inventory of node types.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    pub name: String,
    /// (node type, how many nodes exist).
    pub inventory: Vec<(NodeType, u32)>,
}

impl Site {
    /// The paper's description of Chameleon's accelerator investment
    /// (§3.2): 40x single-RTX6000 nodes, 4 nodes each with 4x V100 / P100 /
    /// A100, smaller numbers of M40, K80, MI100, plus plain compute.
    pub fn chameleon() -> Site {
        Site {
            name: "CHI@UC".to_string(),
            inventory: vec![
                (NodeType::gpu_node(GpuKind::Rtx6000, 1), 40),
                (NodeType::gpu_node(GpuKind::V100, 4), 4),
                (NodeType::gpu_node(GpuKind::V100NvLink, 4), 4),
                (NodeType::gpu_node(GpuKind::P100, 4), 4),
                (NodeType::gpu_node(GpuKind::A100, 4), 4),
                (NodeType::gpu_node(GpuKind::M40, 2), 2),
                (NodeType::gpu_node(GpuKind::K80, 2), 2),
                (NodeType::gpu_node(GpuKind::Mi100, 2), 2),
                (NodeType::compute_node(), 100),
            ],
        }
    }

    /// Register a BYOD edge device as a reservable single-unit node type
    /// (§3.3: once added, a car is allocated "via the standard Chameleon
    /// methods" — the same reservation calendar as the datacenter nodes).
    pub fn register_byod_device(&mut self, device_name: &str) -> String {
        let type_name = format!("byod_{device_name}");
        if self.node_type(&type_name).is_none() {
            self.inventory.push((
                NodeType {
                    name: type_name.clone(),
                    gpu: None,
                    gpus_per_node: 0,
                },
                1,
            ));
        }
        type_name
    }

    pub fn capacity_of(&self, node_type_name: &str) -> u32 {
        self.inventory
            .iter()
            .find(|(nt, _)| nt.name == node_type_name)
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    pub fn node_type(&self, name: &str) -> Option<&NodeType> {
        self.inventory
            .iter()
            .map(|(nt, _)| nt)
            .find(|nt| nt.name == name)
    }

    pub fn total_gpus(&self) -> u32 {
        self.inventory
            .iter()
            .map(|(nt, n)| nt.gpus_per_node * n)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpu_throughput_ordering_matches_generations() {
        // Effective (sustained) throughput ordering drives the training-time
        // sweep: A100 > V100-NVLink > V100 > RTX6000 > P100 > M40 > K80.
        let eff = |g: GpuKind| g.peak_tflops() * g.sustained_fraction();
        assert!(eff(GpuKind::A100) > eff(GpuKind::V100NvLink));
        assert!(eff(GpuKind::V100NvLink) > eff(GpuKind::V100));
        assert!(eff(GpuKind::V100) > eff(GpuKind::Rtx6000));
        assert!(eff(GpuKind::Rtx6000) > eff(GpuKind::P100));
        assert!(eff(GpuKind::P100) > eff(GpuKind::M40));
        assert!(eff(GpuKind::M40) > eff(GpuKind::K80));
    }

    #[test]
    fn any_gpu_dwarfs_the_pi() {
        let pi = ComputeDevice::raspberry_pi4();
        for g in GpuKind::paper_tested() {
            let dev = ComputeDevice::of_gpu(g);
            assert!(
                dev.sustained_gflops > 50.0 * pi.sustained_gflops,
                "{g} not >> Pi"
            );
        }
    }

    #[test]
    fn chameleon_inventory_matches_paper() {
        let site = Site::chameleon();
        assert_eq!(site.capacity_of("gpu_rtx6000"), 40);
        assert_eq!(site.capacity_of("gpu_v100"), 4);
        assert_eq!(site.capacity_of("gpu_a100"), 4);
        assert_eq!(site.capacity_of("gpu_p100"), 4);
        assert_eq!(site.capacity_of("nonexistent"), 0);
        // 40 + 4*16 + ... GPUs total.
        assert!(site.total_gpus() > 100);
    }

    #[test]
    fn node_type_names_stable() {
        assert_eq!(NodeType::gpu_node(GpuKind::V100NvLink, 4).name, "gpu_v100-nvlink");
        assert_eq!(NodeType::compute_node().gpu, None);
    }

    #[test]
    fn paper_tested_list() {
        assert_eq!(GpuKind::paper_tested().len(), 5);
        assert!(GpuKind::paper_tested().contains(&GpuKind::Rtx6000));
    }

    #[test]
    fn byod_devices_become_single_unit_node_types() {
        let mut site = Site::chameleon();
        let t = site.register_byod_device("car-07");
        assert_eq!(t, "byod_car-07");
        assert_eq!(site.capacity_of(&t), 1);
        // Idempotent.
        site.register_byod_device("car-07");
        assert_eq!(site.capacity_of(&t), 1);
    }
}
