//! Analytic device-time model.
//!
//! The substitution at the heart of the reproduction (DESIGN.md): training
//! math runs on the host CPU, but *attributed* wall-clock time comes from
//! this model — FLOPs divided by the device's sustained throughput plus
//! per-batch overheads. The model is deliberately simple; what the paper's
//! experiments need is the *ordering and rough ratios* between an A100, a
//! P100 and a Raspberry Pi, all of which survive this level of modelling.

use crate::hardware::ComputeDevice;
use autolearn_util::units::{Bytes, BytesPerSec};
use autolearn_util::SimDuration;
use serde::{Deserialize, Serialize};

/// Cost model for a full training job.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingCostModel {
    /// Forward-pass FLOPs for one example.
    pub flops_per_example: u64,
    /// Total examples processed over the run (epochs x dataset).
    pub examples: u64,
    pub batch_size: u64,
    /// backward ≈ 2x forward → train step ≈ 3x forward FLOPs.
    pub backward_multiplier: f64,
    /// Data-loading / augmentation time per batch on the host, s
    /// (overlapped poorly at small batch sizes, as in real Keras loops).
    pub host_per_batch_s: f64,
}

impl TrainingCostModel {
    pub fn new(flops_per_example: u64, examples: u64, batch_size: u64) -> TrainingCostModel {
        TrainingCostModel {
            flops_per_example,
            examples,
            batch_size: batch_size.max(1),
            backward_multiplier: 3.0,
            host_per_batch_s: 0.0015,
        }
    }

    pub fn total_train_flops(&self) -> f64 {
        self.flops_per_example as f64 * self.examples as f64 * self.backward_multiplier
    }

    pub fn batches(&self) -> u64 {
        self.examples.div_ceil(self.batch_size)
    }
}

/// Wall-clock training time on `device`.
pub fn training_time(model: &TrainingCostModel, device: &ComputeDevice) -> SimDuration {
    let compute_s = model.total_train_flops() / (device.sustained_gflops * 1e9);
    let overhead_s = model.batches() as f64 * (device.call_overhead_s + model.host_per_batch_s);
    SimDuration::from_secs(compute_s + overhead_s)
}

/// Single-example inference latency on `device`.
pub fn inference_latency(flops_per_example: u64, device: &ComputeDevice) -> SimDuration {
    SimDuration::from_secs(
        flops_per_example as f64 / (device.sustained_gflops * 1e9) + device.call_overhead_s,
    )
}

/// Multi-GPU data-parallel configuration. The paper's inventory
/// distinguishes plain V100 nodes from "v100NVLINK" nodes: same chips,
/// different gradient-allreduce fabric.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MultiGpuConfig {
    pub gpus: u32,
    /// NVLink (≈150 GB/s effective) vs PCIe (≈12 GB/s) for allreduce.
    pub nvlink: bool,
}

impl MultiGpuConfig {
    /// Effective allreduce fabric bandwidth.
    fn fabric(&self) -> BytesPerSec {
        BytesPerSec::new(if self.nvlink { 150e9 } else { 12e9 })
    }

    /// fp32 gradient buffer for `param_count` parameters.
    fn gradient_bytes(param_count: u64) -> Bytes {
        Bytes::new(param_count) * 4
    }

    /// Ring-allreduce time for `param_count` fp32 gradients, in seconds.
    pub fn allreduce_s(&self, param_count: u64) -> f64 {
        if self.gpus <= 1 {
            return 0.0;
        }
        let n = self.gpus as f64;
        // Ring allreduce moves 2(n-1)/n of the buffer per GPU, plus a
        // per-step fabric latency. `Bytes / BytesPerSec` gives the full
        // buffer's fabric time; the ring factor scales it.
        let full_pass = Self::gradient_bytes(param_count) / self.fabric();
        (full_pass * (2.0 * (n - 1.0) / n)).as_secs() + 30e-6 * (n - 1.0)
    }
}

/// Wall-clock training time with `cfg.gpus` data-parallel devices:
/// compute divides across GPUs, per-batch overhead does not, and every
/// batch pays a gradient allreduce over the node's fabric.
pub fn multi_gpu_training_time(
    model: &TrainingCostModel,
    device: &ComputeDevice,
    param_count: u64,
    cfg: &MultiGpuConfig,
) -> SimDuration {
    let compute_s =
        model.total_train_flops() / (device.sustained_gflops * 1e9) / cfg.gpus.max(1) as f64;
    let per_batch = device.call_overhead_s + model.host_per_batch_s + cfg.allreduce_s(param_count);
    SimDuration::from_secs(compute_s + model.batches() as f64 * per_batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::GpuKind;

    /// Roughly the reproduction's Linear model on 40x30 frames.
    fn linear_like() -> TrainingCostModel {
        TrainingCostModel::new(2_000_000, 20_000 * 20, 32) // 20k records, 20 epochs
    }

    #[test]
    fn gpu_sweep_preserves_paper_ordering() {
        let m = linear_like();
        let times: Vec<(GpuKind, f64)> = GpuKind::paper_tested()
            .iter()
            .map(|&g| (g, training_time(&m, &ComputeDevice::of_gpu(g)).as_secs()))
            .collect();
        // A100 fastest, P100 slowest of the tested five.
        let of = |kind: GpuKind| {
            times
                .iter()
                .find(|(g, _)| *g == kind)
                .map(|(_, t)| *t)
                .expect("kind is in paper_tested")
        };
        let a100 = of(GpuKind::A100);
        let p100 = of(GpuKind::P100);
        for (g, t) in &times {
            assert!(a100 <= *t + 1e-12, "A100 beaten by {g}");
            assert!(p100 >= *t - 1e-12, "P100 beats {g}");
        }
    }

    #[test]
    fn v100_trains_in_reasonable_time() {
        // §3.5: "reserve a bare-metal node with a v100 GPU ... train a model
        // in reasonable amount of time". Our small models should land in
        // single-digit minutes.
        let m = linear_like();
        let t = training_time(&m, &ComputeDevice::of_gpu(GpuKind::V100));
        assert!(
            t.as_mins() > 0.05 && t.as_mins() < 30.0,
            "V100 training took {t}"
        );
    }

    #[test]
    fn pi_training_is_much_slower_than_gpu() {
        // At these model sizes the GPU run is host/launch-overhead bound,
        // so the end-to-end gap is "several x", while the pure-compute gap
        // is hundreds of x — both checked.
        let m = linear_like();
        let pi = training_time(&m, &ComputeDevice::raspberry_pi4());
        let gpu = training_time(&m, &ComputeDevice::of_gpu(GpuKind::V100));
        assert!(pi.as_secs() > 3.0 * gpu.as_secs(), "pi {pi} vs gpu {gpu}");
        let compute_ratio = ComputeDevice::of_gpu(GpuKind::V100).sustained_gflops
            / ComputeDevice::raspberry_pi4().sustained_gflops;
        assert!(compute_ratio > 100.0, "compute ratio {compute_ratio}");
    }

    #[test]
    fn inference_on_pi_meets_20hz_for_small_models() {
        // The on-board loop must close at 20 Hz (50 ms) for the linear
        // model's ~2 MFLOP forward pass.
        let lat = inference_latency(2_000_000, &ComputeDevice::raspberry_pi4());
        assert!(lat.as_millis() < 50.0, "Pi inference {lat}");
        // But a 100x bigger model would not make it.
        let big = inference_latency(600_000_000, &ComputeDevice::raspberry_pi4());
        assert!(big.as_millis() > 40.0);
    }

    #[test]
    fn overheads_dominate_tiny_batches() {
        // Same total examples, smaller batches → more overhead → slower.
        let big_batches = TrainingCostModel::new(1_000_000, 10_000, 128);
        let small_batches = TrainingCostModel::new(1_000_000, 10_000, 8);
        let dev = ComputeDevice::of_gpu(GpuKind::A100);
        assert!(
            training_time(&small_batches, &dev).as_secs()
                > training_time(&big_batches, &dev).as_secs()
        );
    }

    #[test]
    fn batches_round_up() {
        let m = TrainingCostModel::new(1, 100, 32);
        assert_eq!(m.batches(), 4);
    }

    #[test]
    fn multi_gpu_speedup_is_sublinear() {
        // A compute-heavy job so parallelism matters.
        let m = TrainingCostModel::new(500_000_000, 400_000, 64);
        let dev = ComputeDevice::of_gpu(GpuKind::V100);
        let params = 2_000_000u64;
        let one = multi_gpu_training_time(&m, &dev, params, &MultiGpuConfig { gpus: 1, nvlink: true });
        let four = multi_gpu_training_time(&m, &dev, params, &MultiGpuConfig { gpus: 4, nvlink: true });
        let speedup = one.as_secs() / four.as_secs();
        assert!(speedup > 2.0, "speedup {speedup}");
        assert!(speedup < 4.0, "speedup {speedup} cannot be superlinear");
    }

    #[test]
    fn nvlink_beats_pcie_at_four_gpus() {
        // The paper's v100 vs v100NVLINK distinction: same chip, faster
        // allreduce fabric.
        let m = TrainingCostModel::new(100_000_000, 400_000, 64);
        let dev = ComputeDevice::of_gpu(GpuKind::V100);
        let params = 10_000_000u64;
        let nv = multi_gpu_training_time(&m, &dev, params, &MultiGpuConfig { gpus: 4, nvlink: true });
        let pcie =
            multi_gpu_training_time(&m, &dev, params, &MultiGpuConfig { gpus: 4, nvlink: false });
        assert!(
            nv.as_secs() < pcie.as_secs() * 0.9,
            "nvlink {nv} vs pcie {pcie}"
        );
    }

    #[test]
    fn single_gpu_pays_no_allreduce() {
        let cfg = MultiGpuConfig { gpus: 1, nvlink: false };
        assert_eq!(cfg.allreduce_s(10_000_000), 0.0);
        let m = TrainingCostModel::new(1_000_000, 10_000, 32);
        let dev = ComputeDevice::of_gpu(GpuKind::A100);
        let single = multi_gpu_training_time(&m, &dev, 1_000_000, &cfg);
        let plain = training_time(&m, &dev);
        assert!((single.as_secs() - plain.as_secs()).abs() < 1e-9);
    }

    #[test]
    fn tiny_models_do_not_scale() {
        // Our 18k-param linear model: allreduce + overhead swamp the
        // divided compute, so 4 GPUs buy nothing (an honest ablation).
        let m = TrainingCostModel::new(300_000, 72_000, 32);
        let dev = ComputeDevice::of_gpu(GpuKind::V100);
        let one = multi_gpu_training_time(&m, &dev, 18_500, &MultiGpuConfig { gpus: 1, nvlink: true });
        let four = multi_gpu_training_time(&m, &dev, 18_500, &MultiGpuConfig { gpus: 4, nvlink: true });
        assert!(four.as_secs() > one.as_secs() * 0.95, "{four} vs {one}");
    }
}
