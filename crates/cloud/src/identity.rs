//! Federated identity, projects and allocations.
//!
//! §3.2: *"to gain access all educational users need to do is request a
//! project in computer science education ... users can log into the testbed
//! with their institutional credentials via federated identity login"*.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A testbed user.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct User {
    pub username: String,
    /// Home institution (the federated IdP).
    pub institution: String,
}

/// Service-unit allocation attached to a project.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    pub service_units: f64,
    pub used: f64,
}

impl Allocation {
    pub fn remaining(&self) -> f64 {
        (self.service_units - self.used).max(0.0)
    }
}

/// A project (e.g. "CS education: autonomous cars course").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Project {
    pub name: String,
    pub charge_code: String,
    pub members: Vec<String>,
    pub allocation: Allocation,
    /// Education projects get the streamlined approval path.
    pub education: bool,
}

/// Errors from the identity service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IdentityError {
    UnknownUser(String),
    UnknownProject(String),
    NotAMember { user: String, project: String },
    AllocationExhausted(String),
}

impl std::fmt::Display for IdentityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IdentityError::UnknownUser(u) => write!(f, "unknown user {u}"),
            IdentityError::UnknownProject(p) => write!(f, "unknown project {p}"),
            IdentityError::NotAMember { user, project } => {
                write!(f, "{user} is not a member of {project}")
            }
            IdentityError::AllocationExhausted(p) => {
                write!(f, "project {p} has no service units left")
            }
        }
    }
}

impl std::error::Error for IdentityError {}

/// The identity/accounting service.
#[derive(Debug, Default)]
pub struct IdentityService {
    users: BTreeMap<String, User>,
    projects: BTreeMap<String, Project>,
}

impl IdentityService {
    pub fn new() -> IdentityService {
        IdentityService::default()
    }

    /// Federated login: first login auto-registers the user (that is the
    /// point of federation — the IdP already vouched for them).
    pub fn federated_login(&mut self, username: &str, institution: &str) -> &User {
        self.users
            .entry(username.to_string())
            .or_insert_with(|| User {
                username: username.to_string(),
                institution: institution.to_string(),
            })
    }

    /// Create an education project with an initial allocation.
    pub fn create_education_project(
        &mut self,
        name: &str,
        pi: &str,
        service_units: f64,
    ) -> Result<&Project, IdentityError> {
        if !self.users.contains_key(pi) {
            return Err(IdentityError::UnknownUser(pi.to_string()));
        }
        let charge_code = format!("CHI-edu-{}", self.projects.len() + 1);
        let project = Project {
            name: name.to_string(),
            charge_code,
            members: vec![pi.to_string()],
            allocation: Allocation {
                service_units,
                used: 0.0,
            },
            education: true,
        };
        Ok(self.projects.entry(name.to_string()).or_insert(project))
    }

    pub fn add_member(&mut self, project: &str, user: &str) -> Result<(), IdentityError> {
        if !self.users.contains_key(user) {
            return Err(IdentityError::UnknownUser(user.to_string()));
        }
        let p = self
            .projects
            .get_mut(project)
            .ok_or_else(|| IdentityError::UnknownProject(project.to_string()))?;
        if !p.members.iter().any(|m| m == user) {
            p.members.push(user.to_string());
        }
        Ok(())
    }

    /// Authorise `user` to use `project` resources and charge `su` units.
    pub fn authorize_and_charge(
        &mut self,
        user: &str,
        project: &str,
        su: f64,
    ) -> Result<(), IdentityError> {
        let p = self
            .projects
            .get_mut(project)
            .ok_or_else(|| IdentityError::UnknownProject(project.to_string()))?;
        if !p.members.iter().any(|m| m == user) {
            return Err(IdentityError::NotAMember {
                user: user.to_string(),
                project: project.to_string(),
            });
        }
        if p.allocation.remaining() < su {
            return Err(IdentityError::AllocationExhausted(project.to_string()));
        }
        p.allocation.used += su;
        Ok(())
    }

    pub fn project(&self, name: &str) -> Option<&Project> {
        self.projects.get(name)
    }

    pub fn user(&self, name: &str) -> Option<&User> {
        self.users.get(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service_with_class() -> IdentityService {
        let mut svc = IdentityService::new();
        svc.federated_login("prof", "missouri.edu");
        svc.federated_login("student1", "yosemite.edu");
        svc.create_education_project("autolearn-class", "prof", 1000.0)
            .unwrap();
        svc
    }

    #[test]
    fn federated_login_registers_once() {
        let mut svc = IdentityService::new();
        svc.federated_login("kate", "anl.gov");
        svc.federated_login("kate", "anl.gov");
        assert_eq!(svc.user("kate").unwrap().institution, "anl.gov");
    }

    #[test]
    fn project_creation_requires_known_pi() {
        let mut svc = IdentityService::new();
        assert!(matches!(
            svc.create_education_project("x", "ghost", 10.0),
            Err(IdentityError::UnknownUser(_))
        ));
    }

    #[test]
    fn members_can_charge_nonmembers_cannot() {
        let mut svc = service_with_class();
        assert!(matches!(
            svc.authorize_and_charge("student1", "autolearn-class", 10.0),
            Err(IdentityError::NotAMember { .. })
        ));
        svc.add_member("autolearn-class", "student1").unwrap();
        assert!(svc
            .authorize_and_charge("student1", "autolearn-class", 10.0)
            .is_ok());
        assert_eq!(
            svc.project("autolearn-class").unwrap().allocation.used,
            10.0
        );
    }

    #[test]
    fn allocation_exhaustion_blocks() {
        let mut svc = service_with_class();
        assert!(svc.authorize_and_charge("prof", "autolearn-class", 990.0).is_ok());
        assert!(matches!(
            svc.authorize_and_charge("prof", "autolearn-class", 20.0),
            Err(IdentityError::AllocationExhausted(_))
        ));
        assert!(
            (svc.project("autolearn-class").unwrap().allocation.remaining() - 10.0).abs() < 1e-9
        );
    }

    #[test]
    fn education_projects_flagged() {
        let svc = service_with_class();
        assert!(svc.project("autolearn-class").unwrap().education);
        assert!(svc
            .project("autolearn-class")
            .unwrap()
            .charge_code
            .starts_with("CHI-edu-"));
    }
}
