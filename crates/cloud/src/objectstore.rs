//! The object store.
//!
//! §3.5: *"The collected datasets and the pre-trained models are stored in
//! Chameleon's object store and can be combined with other components of
//! the system in a 'mix and match' pathway."* Chameleon's store is
//! OpenStack Swift; this models the slice the module uses: containers,
//! objects with etags and metadata, put/get/list/delete.

use std::collections::BTreeMap;

/// A stored object.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredObject {
    pub data: Vec<u8>,
    pub etag: u64,
    pub metadata: BTreeMap<String, String>,
}

/// Errors from the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    NoSuchContainer(String),
    NoSuchObject(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchContainer(c) => write!(f, "no such container {c}"),
            StoreError::NoSuchObject(o) => write!(f, "no such object {o}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A Swift-like object store.
#[derive(Debug, Default)]
pub struct ObjectStore {
    containers: BTreeMap<String, BTreeMap<String, StoredObject>>,
}

fn etag_of(data: &[u8]) -> u64 {
    // FNV-1a; fidelity target is "changes when the bytes change".
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl ObjectStore {
    pub fn new() -> ObjectStore {
        ObjectStore::default()
    }

    pub fn create_container(&mut self, name: &str) {
        self.containers.entry(name.to_string()).or_default();
    }

    pub fn container_names(&self) -> Vec<&str> {
        self.containers.keys().map(String::as_str).collect()
    }

    /// Upload (container auto-created, object overwritten). Returns the etag.
    pub fn put(
        &mut self,
        container: &str,
        name: &str,
        data: Vec<u8>,
        metadata: BTreeMap<String, String>,
    ) -> u64 {
        let etag = etag_of(&data);
        self.containers.entry(container.to_string()).or_default().insert(
            name.to_string(),
            StoredObject {
                data,
                etag,
                metadata,
            },
        );
        etag
    }

    pub fn get(&self, container: &str, name: &str) -> Result<&StoredObject, StoreError> {
        self.containers
            .get(container)
            .ok_or_else(|| StoreError::NoSuchContainer(container.to_string()))?
            .get(name)
            .ok_or_else(|| StoreError::NoSuchObject(name.to_string()))
    }

    /// Objects in a container whose names start with `prefix`.
    pub fn list(&self, container: &str, prefix: &str) -> Result<Vec<&str>, StoreError> {
        Ok(self
            .containers
            .get(container)
            .ok_or_else(|| StoreError::NoSuchContainer(container.to_string()))?
            .keys()
            .filter(|k| k.starts_with(prefix))
            .map(String::as_str)
            .collect())
    }

    pub fn delete(&mut self, container: &str, name: &str) -> Result<(), StoreError> {
        self.containers
            .get_mut(container)
            .ok_or_else(|| StoreError::NoSuchContainer(container.to_string()))?
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchObject(name.to_string()))
    }

    /// Total bytes stored (for quota accounting).
    pub fn total_bytes(&self) -> u64 {
        self.containers
            .values()
            .flat_map(|c| c.values())
            .map(|o| o.data.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut store = ObjectStore::new();
        let mut meta = BTreeMap::new();
        meta.insert("track".to_string(), "paper-oval".to_string());
        let etag = store.put("datasets", "oval-20k.tub", vec![1, 2, 3], meta);
        let obj = store.get("datasets", "oval-20k.tub").unwrap();
        assert_eq!(obj.data, vec![1, 2, 3]);
        assert_eq!(obj.etag, etag);
        assert_eq!(obj.metadata["track"], "paper-oval");
    }

    #[test]
    fn etag_changes_with_content() {
        let mut store = ObjectStore::new();
        let e1 = store.put("c", "o", vec![1], BTreeMap::new());
        let e2 = store.put("c", "o", vec![2], BTreeMap::new());
        assert_ne!(e1, e2);
    }

    #[test]
    fn list_with_prefix() {
        let mut store = ObjectStore::new();
        store.put("models", "linear-v1.json", vec![], BTreeMap::new());
        store.put("models", "linear-v2.json", vec![], BTreeMap::new());
        store.put("models", "rnn-v1.json", vec![], BTreeMap::new());
        let linear = store.list("models", "linear-").unwrap();
        assert_eq!(linear.len(), 2);
        assert_eq!(store.list("models", "").unwrap().len(), 3);
    }

    #[test]
    fn missing_container_and_object_error() {
        let mut store = ObjectStore::new();
        assert!(matches!(
            store.get("none", "x"),
            Err(StoreError::NoSuchContainer(_))
        ));
        store.create_container("empty");
        assert!(matches!(
            store.get("empty", "x"),
            Err(StoreError::NoSuchObject(_))
        ));
        assert!(store.delete("empty", "x").is_err());
    }

    #[test]
    fn delete_removes_and_accounting_updates() {
        let mut store = ObjectStore::new();
        store.put("c", "a", vec![0; 100], BTreeMap::new());
        store.put("c", "b", vec![0; 50], BTreeMap::new());
        assert_eq!(store.total_bytes(), 150);
        store.delete("c", "a").unwrap();
        assert_eq!(store.total_bytes(), 50);
        assert!(store.get("c", "a").is_err());
    }
}
