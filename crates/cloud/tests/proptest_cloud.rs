//! Property tests: the reservation calendar's capacity invariant and the
//! performance model's monotonicity.

use autolearn_cloud::hardware::{ComputeDevice, GpuKind, NodeType, Site};
use autolearn_cloud::perf::{inference_latency, training_time, TrainingCostModel};
use autolearn_cloud::reservation::{LeaseState, ReservationSystem};
use autolearn_util::SimTime;
use proptest::prelude::*;

fn site(capacity: u32) -> Site {
    Site {
        name: "prop".to_string(),
        inventory: vec![(NodeType::gpu_node(GpuKind::V100, 4), capacity)],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// However leases are requested, at no instant does the sum of admitted
    /// overlapping leases exceed capacity.
    #[test]
    fn capacity_never_exceeded(
        capacity in 1u32..6,
        requests in prop::collection::vec((0.0f64..100.0, 1.0f64..50.0, 1u32..4), 1..40),
    ) {
        let mut rs = ReservationSystem::new(site(capacity));
        for (start, len, nodes) in &requests {
            let _ = rs.reserve(
                "p",
                "gpu_v100",
                *nodes,
                SimTime::from_secs(*start),
                SimTime::from_secs(start + len),
            );
        }
        // Check the invariant at every lease boundary instant.
        let mut instants: Vec<f64> = rs
            .leases()
            .iter()
            .flat_map(|l| [l.start.as_secs(), l.end.as_secs() - 1e-9])
            .collect();
        instants.push(0.0);
        for t in instants {
            let used: u32 = rs
                .leases()
                .iter()
                .filter(|l| {
                    l.state != LeaseState::Ended
                        && l.start.as_secs() <= t
                        && t < l.end.as_secs()
                })
                .map(|l| l.nodes)
                .sum();
            prop_assert!(used <= capacity, "at t={t}: used {used} > capacity {capacity}");
        }
    }

    /// min_free is consistent with a subsequent admission decision.
    #[test]
    fn min_free_predicts_admission(
        existing in prop::collection::vec((0.0f64..50.0, 1.0f64..30.0), 0..10),
        start in 0.0f64..60.0,
        len in 1.0f64..20.0,
        want in 1u32..4,
    ) {
        let mut rs = ReservationSystem::new(site(3));
        for (s, l) in &existing {
            let _ = rs.reserve("bg", "gpu_v100", 1, SimTime::from_secs(*s), SimTime::from_secs(s + l));
        }
        let free = rs.min_free("gpu_v100", SimTime::from_secs(start), SimTime::from_secs(start + len));
        let admitted = rs
            .reserve("p", "gpu_v100", want, SimTime::from_secs(start), SimTime::from_secs(start + len))
            .is_ok();
        prop_assert_eq!(admitted, free >= want);
    }

    /// Training time grows with examples and shrinks with device speed.
    /// (Model sizes start at 1 MFLOP: below that, per-batch launch overhead
    /// legitimately lets the overhead-free Pi "win", which is the crossover
    /// exp_t3 measures, not a bug.)
    #[test]
    fn perf_model_monotone(flops in 1_000_000u64..100_000_000, examples in 100u64..1_000_000) {
        let slow = ComputeDevice::raspberry_pi4();
        let fast = ComputeDevice::of_gpu(GpuKind::A100);
        let m1 = TrainingCostModel::new(flops, examples, 32);
        let m2 = TrainingCostModel::new(flops, examples * 2, 32);
        prop_assert!(training_time(&m1, &fast).as_secs() <= training_time(&m1, &slow).as_secs());
        prop_assert!(training_time(&m2, &fast).as_secs() >= training_time(&m1, &fast).as_secs());
        // Inference latency is monotone in flops on any one device. (Across
        // devices the GPU's call overhead beats the Pi only above ~20 MFLOP
        // — the crossover exp_t3 exists to measure.)
        for dev in [&fast, &slow] {
            prop_assert!(
                inference_latency(flops * 2, dev).as_secs()
                    >= inference_latency(flops, dev).as_secs()
            );
            prop_assert!(inference_latency(flops, dev).as_secs() > 0.0);
        }
        prop_assert!(
            inference_latency(100_000_000, &fast).as_secs()
                < inference_latency(100_000_000, &slow).as_secs()
        );
    }
}
