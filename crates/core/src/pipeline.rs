//! The end-to-end AutoLearn pipeline (Fig. 1), fallible edition.
//!
//! One call runs what a student does over an afternoon: collect data on the
//! car, clean it, reserve a Chameleon GPU node, deploy the CUDA image,
//! rsync the tub up, train, store the model in the object store, pull it
//! onto the car's container, and drive autonomous evaluation laps — with
//! every stage's simulated wall-clock accounted.
//!
//! Every stage that touches the continuum is fallible: [`Pipeline::run`]
//! consults a [`FaultPlan`] at each network transfer, lease launch and
//! container start, retries failed attempts under a [`RetryPolicy`]
//! (exponential backoff charged to simulated time), and degrades rather
//! than dies where it can — falling back to a slower GPU when capacity is
//! exhausted, re-sending only the rsync delta after a mid-transfer fault,
//! resuming training from the last epoch boundary after a preemption.
//! Completed stages are checkpointed and never re-run; every attempt and
//! every injected fault lands in the report's [`RunLog`].
//!
//! Telemetry: the run emits through an [`Obs`] — a root `pipeline` span,
//! one child span per stage, one `attempt` span per try at a fallible
//! stage (fault events nested inside), `checkpoint` events at stage
//! completions, and stage-latency/retry/fault metrics. The [`RunLog`] is
//! no longer separate bookkeeping: it is *reconstructed from the trace*
//! by [`RunLog::from_trace`], so the trace is the single source of truth.
//! [`Pipeline::run_observed`] runs against a caller-owned [`Obs`] (for
//! export); [`Pipeline::run_chaos`] keeps its old signature and observes
//! into a private one.

use crate::collect::{collect_session, CollectConfig, CollectionPath};
use crate::dataset::{records_to_dataset, tub_bytes_estimate};
use crate::modelpilot::ModelPilot;
use autolearn_cloud::chaos::{launch_lease_observed, LaunchError, LAUNCH_OVERHEAD_S};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind, Site};
use autolearn_cloud::perf::{training_time, TrainingCostModel};
use autolearn_cloud::provision::ProvisioningPlan;
use autolearn_cloud::reservation::{ReservationError, ReservationSystem};
use autolearn_edge::container::{ContainerRuntime, ImageSpec};
use autolearn_net::{transfer_time, Path, ResumableTransfer, TransferSpec};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{
    format_contract_errors, format_errors, standard_stages, validate_pipeline, ContractError,
    ContractReport, DType, FrameContract, GraphError, TrainConfig, TrainReport, Trainer,
};
use autolearn_sim::{CarConfig, DriveConfig, Simulation};
use autolearn_track::Track;
use autolearn_tub::{CleanConfig, TubCleaner};
use autolearn_obs::{attr, AttrValue, Obs, Trace};
use autolearn_util::fault::{FaultPlan, InjectedFault};
use autolearn_util::{derive_seed, Bytes, Epochs, RetryPolicy, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub collection: CollectConfig,
    pub model_kind: ModelKind,
    pub model: ModelConfig,
    pub train: TrainConfig,
    /// GPU node type to reserve for training.
    pub gpu: GpuKind,
    /// Run tubclean before training.
    pub clean: bool,
    /// Autonomous evaluation laps.
    pub eval_laps: usize,
    pub eval_max_duration_s: f64,
}

impl PipelineConfig {
    /// The module's default lesson: simulator data, linear model, V100.
    pub fn lesson_default(seed: u64) -> PipelineConfig {
        PipelineConfig {
            collection: CollectConfig::new(CollectionPath::Simulator, 120.0, seed),
            model_kind: ModelKind::Linear,
            model: ModelConfig {
                height: 30,
                width: 40,
                channels: 1,
                seed,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 10,
                batch_size: 32,
                seed,
                ..Default::default()
            },
            gpu: GpuKind::V100,
            clean: true,
            eval_laps: 3,
            eval_max_duration_s: 180.0,
        }
    }
}

/// Simulated wall-clock spent in one stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    pub stage: String,
    pub duration: SimDuration,
}

/// One attempt at a fallible stage, as recorded in the [`RunLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRecord {
    pub stage: String,
    /// 1-based attempt number within the stage.
    pub attempt: u32,
    /// `"ok"`, or the failure description.
    pub outcome: String,
    /// Simulated time this attempt consumed (work + injected penalties).
    pub charged: SimDuration,
    /// Backoff charged after this attempt (zero on success or final try).
    pub backoff: SimDuration,
}

/// The complete recovery history of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Every attempt at every fallible stage, in execution order.
    pub attempts: Vec<AttemptRecord>,
    /// Every fault the plan injected, in injection order.
    pub faults: Vec<InjectedFault>,
    /// Stages that completed, in order — the checkpoint trail: a stage in
    /// this list was never re-entered.
    pub completed_stages: Vec<String>,
    /// The GPU that actually trained the model (may differ from the
    /// configured one after a capacity fallback).
    pub gpu_used: String,
}

impl RunLog {
    /// Attempts that failed (retries and terminal failures).
    pub fn failed_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome != "ok").count()
    }

    /// Reconstruct the run log from the trace — the log *is* a view over
    /// the telemetry, not parallel bookkeeping. `attempt` spans carrying
    /// an `outcome` attribute become [`AttemptRecord`]s (the typed
    /// `charged_s`/`backoff_s` attributes round-trip the durations
    /// exactly), `checkpoint` events rebuild the completed-stage trail,
    /// and the last `gpu-selected` event names the GPU that trained.
    /// Faults come from the fault plan's own log, which stays the
    /// authority on what was injected.
    pub fn from_trace(trace: &Trace, faults: Vec<InjectedFault>) -> RunLog {
        let mut log = RunLog {
            faults,
            ..RunLog::default()
        };
        for span in trace.spans_named("attempt") {
            let stage = attr(&span.attrs, "stage").and_then(|v| v.as_str());
            let outcome = attr(&span.attrs, "outcome").and_then(|v| v.as_str());
            let (Some(stage), Some(outcome)) = (stage, outcome) else {
                // Fatal attempts never carried an outcome and never made
                // the log.
                continue;
            };
            let num = |key: &str| {
                attr(&span.attrs, key)
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0)
            };
            let attempt = attr(&span.attrs, "attempt")
                .and_then(|v| v.as_int())
                .and_then(|v| u32::try_from(v).ok())
                .unwrap_or(0);
            log.attempts.push(AttemptRecord {
                stage: stage.to_string(),
                attempt,
                outcome: outcome.to_string(),
                charged: SimDuration::from_secs(num("charged_s")),
                backoff: SimDuration::from_secs(num("backoff_s")),
            });
        }
        for event in trace.events_named("checkpoint") {
            if let Some(stage) = attr(&event.attrs, "stage").and_then(|v| v.as_str()) {
                log.completed_stages.push(stage.to_string());
            }
        }
        if let Some(gpu) = trace
            .events_named("gpu-selected")
            .last()
            .and_then(|e| attr(&e.attrs, "gpu"))
            .and_then(|v| v.as_str())
        {
            log.gpu_used = gpu.to_string();
        }
        log
    }
}

/// Why a pipeline run could not complete.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// The model plan failed static validation; nothing ran.
    ModelRejected(Vec<GraphError>),
    /// The pipeline contract failed static validation (stage ordering,
    /// artifact flow, units or the tub→model handoff); nothing ran.
    ContractViolated(Vec<ContractError>),
    /// The reservation system refused the request for a non-transient
    /// reason (unknown node type, inverted window, genuine capacity).
    Reservation(ReservationError),
    /// A stage exhausted its retry budget.
    StageFailed {
        stage: String,
        attempts: u32,
        last_error: String,
    },
    /// A stage blew through its per-stage deadline.
    DeadlineExceeded {
        stage: String,
        elapsed: SimDuration,
        deadline: SimDuration,
    },
}

impl PipelineError {
    /// The stage the run died in, when the error is stage-scoped.
    pub fn stage(&self) -> Option<&str> {
        match self {
            PipelineError::StageFailed { stage, .. }
            | PipelineError::DeadlineExceeded { stage, .. } => Some(stage),
            _ => None,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::ModelRejected(errs) => {
                write!(f, "model plan rejected:\n{}", format_errors(errs))
            }
            PipelineError::ContractViolated(errs) => {
                write!(
                    f,
                    "pipeline contract violated:\n{}",
                    format_contract_errors(errs)
                )
            }
            PipelineError::Reservation(e) => write!(f, "reservation refused: {e}"),
            PipelineError::StageFailed {
                stage,
                attempts,
                last_error,
            } => write!(f, "stage '{stage}' failed after {attempts} attempts: {last_error}"),
            PipelineError::DeadlineExceeded {
                stage,
                elapsed,
                deadline,
            } => write!(f, "stage '{stage}' blew its {deadline} deadline (spent {elapsed})"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything the pipeline produces.
pub struct PipelineReport {
    pub stages: Vec<StageTiming>,
    pub records_collected: usize,
    pub records_cleaned: usize,
    pub train_report: TrainReport,
    /// Evaluation metrics from the autonomous laps.
    pub eval_laps: usize,
    pub eval_autonomy: f64,
    pub eval_mean_speed: f64,
    pub eval_crashes: usize,
    pub model: CarModel,
    /// The attempt/fault/checkpoint history of the run.
    pub run_log: RunLog,
}

impl PipelineReport {
    pub fn total_time(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    pub fn stage(&self, name: &str) -> Option<SimDuration> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| s.duration)
    }
}

/// What one attempt of a fallible stage reported back to the retry driver.
enum StageFault {
    /// Worth another try: the attempt died for a transient reason, after
    /// consuming `charged` simulated time.
    Retryable { why: String, charged: SimDuration },
    /// Not worth retrying; abort the run with this error.
    Fatal(PipelineError),
}

/// Drive one fallible stage under `policy`: run attempts until one succeeds,
/// the attempt cap is hit, or the stage deadline is blown, charging
/// exponential backoff (with jitter derived from `seed`) between attempts.
/// Every try becomes an `attempt` span on `obs` — typed attributes carry
/// the stage, the 1-based attempt number, the outcome, and the exact
/// charged/backoff durations, which is what [`RunLog::from_trace`] reads
/// back. The attempt body gets the observer too, so substrate telemetry
/// (fault events, transfer counters) nests inside the attempt span.
/// Returns the stage's value plus the total simulated time consumed.
fn retry_stage<T>(
    stage: &str,
    policy: &RetryPolicy,
    seed: u64,
    obs: &mut Obs,
    mut attempt_fn: impl FnMut(u32, &mut Obs) -> Result<(T, SimDuration), StageFault>,
) -> Result<(T, SimDuration), PipelineError> {
    let mut elapsed = SimDuration::ZERO;
    let mut attempt = 1u32;
    let mut last_error = "never attempted".to_string();
    loop {
        if !policy.allows(attempt, elapsed) {
            return Err(if policy.deadline_exceeded(elapsed) {
                PipelineError::DeadlineExceeded {
                    stage: stage.to_string(),
                    elapsed,
                    deadline: policy.deadline.unwrap_or(SimDuration::ZERO),
                }
            } else {
                PipelineError::StageFailed {
                    stage: stage.to_string(),
                    attempts: attempt.saturating_sub(1),
                    last_error,
                }
            });
        }
        let span = obs.begin_span("attempt");
        obs.span_attr(span, "stage", AttrValue::Str(stage.to_string()));
        obs.span_attr(span, "attempt", AttrValue::Int(i64::from(attempt)));
        obs.counter_add("pipeline.attempts", 1);
        match attempt_fn(attempt, obs) {
            Ok((value, charged)) => {
                elapsed += charged;
                obs.span_attr(span, "outcome", AttrValue::Str("ok".to_string()));
                obs.span_attr(span, "charged_s", AttrValue::F64(charged.as_secs()));
                obs.span_attr(span, "backoff_s", AttrValue::F64(0.0));
                obs.advance(charged);
                obs.end_span(span);
                return Ok((value, elapsed));
            }
            Err(StageFault::Fatal(e)) => {
                // Fatal attempts abort the run and never made the old log;
                // leaving the span without an outcome keeps the view
                // identical.
                obs.end_span(span);
                return Err(e);
            }
            Err(StageFault::Retryable { why, charged }) => {
                elapsed += charged;
                // Only charge backoff when another attempt is coming.
                let backoff = if policy.allows(attempt + 1, elapsed) {
                    policy.backoff(attempt, seed)
                } else {
                    SimDuration::ZERO
                };
                elapsed += backoff;
                obs.counter_add("pipeline.retries", 1);
                obs.span_attr(span, "outcome", AttrValue::Str(why.clone()));
                obs.span_attr(span, "charged_s", AttrValue::F64(charged.as_secs()));
                obs.span_attr(span, "backoff_s", AttrValue::F64(backoff.as_secs()));
                obs.advance(charged);
                obs.end_span(span);
                // The backoff is the gap between attempt spans.
                obs.advance(backoff);
                last_error = why;
                attempt += 1;
            }
        }
    }
}

/// GPUs to fall back to when `preferred` has no capacity: every kind with
/// strictly lower sustained throughput, best first — degraded runs get
/// *slower*, never faster, so recovery always costs simulated time.
fn fallback_chain(preferred: GpuKind) -> Vec<GpuKind> {
    let eff = |g: GpuKind| g.peak_tflops() * g.sustained_fraction();
    let mut slower: Vec<GpuKind> = [
        GpuKind::A100,
        GpuKind::Mi100,
        GpuKind::V100NvLink,
        GpuKind::V100,
        GpuKind::Rtx6000,
        GpuKind::P100,
        GpuKind::M40,
        GpuKind::K80,
    ]
    .into_iter()
    .filter(|g| eff(*g) < eff(preferred))
    .collect();
    slower.sort_by(|a, b| {
        eff(*b)
            .partial_cmp(&eff(*a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut chain = vec![preferred];
    chain.extend(slower);
    chain
}

/// The pipeline runner.
pub struct Pipeline {
    pub track: Track,
    pub config: PipelineConfig,
}

impl Pipeline {
    pub fn new(track: Track, config: PipelineConfig) -> Pipeline {
        Pipeline { track, config }
    }

    /// Statically validate the full pipeline contract before anything
    /// runs: the configured model graph (shape propagation over the zoo
    /// *plan* — no tensors allocated, no model built), the tub→model frame
    /// handoff, and the stage chain's artifact flow, ordering and units.
    /// [`Pipeline::run`] calls this first and surfaces failures as
    /// [`PipelineError::ContractViolated`].
    pub fn preflight(&self) -> Result<ContractReport, Vec<ContractError>> {
        let cfg = &self.config;
        let spec = CarModel::plan(cfg.model_kind, &cfg.model);
        let frames = FrameContract {
            channels: cfg.model.channels,
            height: cfg.model.height,
            width: cfg.model.width,
            dtype: DType::F32,
        };
        validate_pipeline(
            &standard_stages(cfg.clean),
            &spec,
            CarModel::frame_layout(cfg.model_kind),
            &frames,
        )
    }

    /// Run the whole loop on the happy path: no injected faults, default
    /// retry policy. Host CPU does the math; simulated time is attributed
    /// per stage.
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        self.run_chaos(&mut FaultPlan::none(), &RetryPolicy::default())
    }

    /// Run the whole loop under fault injection: `plan` is consulted at
    /// every fallible operation, failed attempts are retried under
    /// `policy`, and the report's [`RunLog`] records what happened. The
    /// telemetry goes to a run-private [`Obs`]; use
    /// [`Pipeline::run_observed`] to keep (and export) the trace.
    pub fn run_chaos(
        &self,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<PipelineReport, PipelineError> {
        let mut obs = Obs::new();
        self.run_observed(plan, policy, &mut obs)
    }

    /// [`Pipeline::run_chaos`] against a caller-owned observer: the whole
    /// run lands in `obs` as a root `pipeline` span with one child span
    /// per stage, `attempt` spans (fault events nested) under the
    /// fallible ones, and the stage/retry/fault metrics filled in. On
    /// failure the observer captures a [`PostMortem`](autolearn_obs::PostMortem)
    /// with the flight recorder's view of the final moments.
    pub fn run_observed(
        &self,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
        obs: &mut Obs,
    ) -> Result<PipelineReport, PipelineError> {
        let root = obs.begin_span("pipeline");
        let result = self.run_stages(plan, policy, obs);
        if let Err(err) = &result {
            obs.record_failure(&err.to_string());
        }
        obs.end_span(root);
        result
    }

    fn run_stages(
        &self,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
        obs: &mut Obs,
    ) -> Result<PipelineReport, PipelineError> {
        let cfg = &self.config;
        if let Err(errs) = self.preflight() {
            return Err(PipelineError::ContractViolated(errs));
        }
        let seed = cfg.collection.seed;
        let mut stages = Vec::new();
        let checkpoint = |obs: &mut Obs, stage: &str| {
            obs.event(
                "checkpoint",
                vec![("stage".to_string(), AttrValue::Str(stage.to_string()))],
            );
        };

        // 1. Collect (student drives for the configured duration; the car
        // is offline during collection, so no continuum faults apply).
        let collect_span = obs.begin_span("collect");
        let collected = collect_session(&self.track, &cfg.collection);
        let collect_time = SimDuration::from_secs(collected.session.duration_s);
        obs.advance(collect_time);
        stages.push(StageTiming {
            stage: "collect".into(),
            duration: collect_time,
        });
        let records_collected = collected.records.len();
        obs.span_attr(
            collect_span,
            "records",
            AttrValue::UInt(records_collected as u64),
        );
        checkpoint(obs, "collect");
        obs.end_span(collect_span);

        // 2. Clean. The manual tubclean review plays the video back; charge
        // 1/4 of the session length for the student's review pass.
        let mut records = collected.records;
        if cfg.clean {
            let clean_span = obs.begin_span("clean");
            let cleaner = TubCleaner::new(CleanConfig::default());
            let report = cleaner.analyse(&records);
            let flagged = report.flagged_ids();
            records.retain(|r| !flagged.contains(&r.id));
            let clean_time = SimDuration::from_secs(collected.session.duration_s / 4.0);
            obs.advance(clean_time);
            stages.push(StageTiming {
                stage: "clean".into(),
                duration: clean_time,
            });
            obs.span_attr(
                clean_span,
                "flagged",
                AttrValue::UInt((records_collected - records.len()) as u64),
            );
            checkpoint(obs, "clean");
            obs.end_span(clean_span);
        }
        let records_cleaned = records.len();

        // 3. Reserve the GPU node. An injected capacity window walks down
        // the fallback chain to a strictly slower GPU; a transient launch
        // failure burns the wasted lease time and retries.
        let mut reservations = ReservationSystem::new(Site::chameleon());
        let chain = fallback_chain(cfg.gpu);
        let mut chain_idx = 0usize;
        let reserve_span = obs.begin_span("reserve");
        let ((gpu_used, launch), reserve_time) = retry_stage(
            "reserve",
            policy,
            derive_seed(seed, "retry-reserve"),
            obs,
            |_attempt, obs| {
                let gpu = chain[chain_idx.min(chain.len() - 1)];
                let node_type = format!("gpu_{}", gpu.name().to_lowercase());
                match launch_lease_observed(
                    &mut reservations,
                    "autolearn",
                    &node_type,
                    1,
                    SimTime::ZERO,
                    SimDuration::from_hours(4.0),
                    plan,
                    obs,
                ) {
                    Ok(launch) => {
                        let launch_time = launch.launch_time;
                        Ok(((gpu, launch), launch_time))
                    }
                    Err(LaunchError::Refused(e)) => {
                        Err(StageFault::Fatal(PipelineError::Reservation(e)))
                    }
                    Err(LaunchError::Transient { wasted }) => Err(StageFault::Retryable {
                        why: format!("transient launch failure on {node_type}"),
                        charged: wasted,
                    }),
                    Err(LaunchError::CapacityWindow { wasted, window }) => {
                        if chain_idx + 1 < chain.len() {
                            chain_idx += 1;
                            Err(StageFault::Retryable {
                                why: format!(
                                    "no {node_type} capacity, falling back to {}",
                                    chain[chain_idx]
                                ),
                                charged: wasted,
                            })
                        } else {
                            // Nothing slower to fall back to: wait the
                            // window out and try the same type again.
                            Err(StageFault::Retryable {
                                why: format!("no {node_type} capacity, waiting out window"),
                                charged: wasted + window,
                            })
                        }
                    }
                }
            },
        )?;
        let mut preempt = launch.preempt_at_fraction;
        stages.push(StageTiming {
            stage: "reserve".into(),
            duration: reserve_time,
        });
        obs.event(
            "gpu-selected",
            vec![(
                "gpu".to_string(),
                AttrValue::Str(gpu_used.name().to_string()),
            )],
        );
        checkpoint(obs, "reserve");
        obs.end_span(reserve_span);

        // 4. Provision the CUDA image + rsync the tub up. The bare-metal
        // deploy steps are charged once; the upload is a resumable transfer
        // that re-sends only the delta after a mid-transfer fault.
        let upload_span = obs.begin_span("provision+upload");
        let fixed = ProvisioningPlan::cuda_image(SimDuration::ZERO).total();
        obs.advance(fixed);
        let mut upload = ResumableTransfer::new(TransferSpec::rsync(tub_bytes_estimate(&records)));
        let (_, upload_time) = retry_stage(
            "provision+upload",
            policy,
            derive_seed(seed, "retry-upload"),
            obs,
            |_attempt, obs| match upload.attempt_observed(
                &Path::car_to_cloud(),
                plan,
                "tub-upload",
                obs,
            ) {
                Ok(d) => Ok(((), d)),
                Err((failure, charged)) => Err(StageFault::Retryable {
                    why: failure.to_string(),
                    charged,
                }),
            },
        )?;
        stages.push(StageTiming {
            stage: "provision+upload".into(),
            duration: fixed + upload_time,
        });
        checkpoint(obs, "provision+upload");
        obs.end_span(upload_span);

        // 5. Train (real math on host; device time attributed). A scheduled
        // preemption revokes the lease mid-training: the partial epoch is
        // lost, the node relaunches, and training resumes from the last
        // completed epoch boundary.
        let train_span = obs.begin_span("train");
        let mut model = CarModel::build(cfg.model_kind, &cfg.model);
        let data = prepare_dataset(&records_to_dataset(&records, &cfg.model), model.input_spec());
        let trainer = Trainer::new(cfg.train.clone());
        let train_report = trainer
            .fit_observed(&mut model, &data, obs)
            .map_err(PipelineError::ModelRejected)?;
        let cost = TrainingCostModel::new(
            model.flops_per_inference(),
            train_report.examples_seen,
            cfg.train.batch_size as u64,
        );
        // Each simulated run at the training work (the clean one, or the
        // preempted half plus the resumed half) becomes an `attempt` span,
        // same shape as the retried stages'.
        let train_attempt =
            |obs: &mut Obs, attempt: u32, outcome: &str, charged: SimDuration| {
                let span = obs.begin_span("attempt");
                obs.counter_add("pipeline.attempts", 1);
                if outcome != "ok" {
                    obs.counter_add("pipeline.retries", 1);
                }
                obs.span_attr(span, "stage", AttrValue::Str("train".to_string()));
                obs.span_attr(span, "attempt", AttrValue::Int(i64::from(attempt)));
                obs.span_attr(span, "outcome", AttrValue::Str(outcome.to_string()));
                obs.span_attr(span, "charged_s", AttrValue::F64(charged.as_secs()));
                obs.span_attr(span, "backoff_s", AttrValue::F64(0.0));
                obs.advance(charged);
                obs.end_span(span);
            };
        let base_train = training_time(&cost, &ComputeDevice::of_gpu(gpu_used));
        let train_time = match preempt.take() {
            None => {
                train_attempt(obs, 1, "ok", base_train);
                base_train
            }
            Some(at_fraction) => {
                // Checkpoints land at epoch boundaries: resume re-runs the
                // interrupted epoch, after a fresh node launch.
                let planned = Epochs::new(cfg.train.epochs as u32).max_one();
                let banked = planned.completed_at(at_fraction);
                let kept = banked / planned;
                let lost = base_train * at_fraction;
                let relaunch = SimDuration::from_secs(LAUNCH_OVERHEAD_S);
                let resume = base_train * (1.0 - kept);
                train_attempt(
                    obs,
                    1,
                    &format!(
                        "preempted at {:.0}% of training, resuming from epoch {banked}",
                        at_fraction * 100.0,
                    ),
                    lost + relaunch,
                );
                train_attempt(obs, 2, "ok", resume);
                lost + relaunch + resume
            }
        };
        stages.push(StageTiming {
            stage: "train".into(),
            duration: train_time,
        });
        checkpoint(obs, "train");
        obs.end_span(train_span);

        // 6. Deploy the model: object store PUT from the GPU node (the
        // datacenter fabric is not a fault site), resumable GET down to the
        // car, then the car's container (re)start — both fault-prone.
        let deploy_span = obs.begin_span("deploy-model");
        let model_bytes = Bytes::new((model.param_count() * 4 + 4096) as u64);
        let put = transfer_time(
            &Path::of_presets(&[autolearn_net::LinkPreset::Datacenter]),
            &TransferSpec::object_store(model_bytes),
        );
        obs.advance(put);
        let mut get = ResumableTransfer::new(TransferSpec::object_store(model_bytes));
        let (_, get_time) = retry_stage(
            "deploy-model",
            policy,
            derive_seed(seed, "retry-deploy"),
            obs,
            |_attempt, obs| match get.attempt_observed(
                &Path::car_to_cloud(),
                plan,
                "model-download",
                obs,
            ) {
                Ok(d) => Ok(((), d)),
                Err((failure, charged)) => Err(StageFault::Retryable {
                    why: failure.to_string(),
                    charged,
                }),
            },
        )?;
        let mut runtime = ContainerRuntime::new();
        let image = ImageSpec::autolearn();
        let (_, container_time) = retry_stage(
            "deploy-container",
            policy,
            derive_seed(seed, "retry-container"),
            obs,
            // The image stays cached across failed attempts, so retries
            // start warm — only the fault's own cost is paid again.
            |_attempt, obs| match runtime.launch_with_faults_observed(
                &image,
                &Path::car_to_cloud(),
                plan,
                obs,
            ) {
                Ok((_container, d)) => Ok(((), d)),
                Err(err) => {
                    let wasted = match &err {
                        autolearn_edge::EdgeLaunchError::DeviceDisconnected { wasted, .. } => {
                            *wasted
                        }
                        autolearn_edge::EdgeLaunchError::ContainerCrashed { wasted } => *wasted,
                    };
                    Err(StageFault::Retryable {
                        why: err.to_string(),
                        charged: wasted,
                    })
                }
            },
        )?;
        stages.push(StageTiming {
            stage: "deploy-model".into(),
            duration: put + get_time + container_time,
        });
        checkpoint(obs, "deploy-model");
        obs.end_span(deploy_span);

        // 7. Evaluate: autonomous laps on the same kind of car that
        // collected the data.
        let (car, camera) = match cfg.collection.path {
            CollectionPath::PhysicalCar => (
                CarConfig::real_car(cfg.collection.seed ^ 0xe7a1),
                cfg.collection
                    .camera
                    .clone()
                    .with_noise(6.0, cfg.collection.seed ^ 0xe7a1),
            ),
            _ => (
                CarConfig::default(),
                cfg.collection.camera.clone(),
            ),
        };
        let mut sim = Simulation::new(
            self.track.clone(),
            car,
            camera,
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let eval_span = obs.begin_span("evaluate");
        let mut pilot = ModelPilot::new(model);
        let eval = sim.run_laps(&mut pilot, cfg.eval_laps, cfg.eval_max_duration_s);
        let eval_time = SimDuration::from_secs(eval.duration_s);
        obs.advance(eval_time);
        stages.push(StageTiming {
            stage: "evaluate".into(),
            duration: eval_time,
        });
        obs.span_attr(eval_span, "autonomy", AttrValue::F64(eval.autonomy()));
        checkpoint(obs, "evaluate");
        obs.end_span(eval_span);

        // Stage-latency metrics, in stage order.
        for timing in &stages {
            obs.observe("pipeline.stage_seconds", timing.duration.as_secs());
            obs.gauge_set(
                &format!("pipeline.stage.{}_s", timing.stage),
                timing.duration.as_secs(),
            );
        }

        // The run log is a view over the trace — no parallel bookkeeping.
        let log = RunLog::from_trace(obs.trace(), plan.injected().to_vec());
        Ok(PipelineReport {
            stages,
            records_collected,
            records_cleaned,
            train_report,
            eval_laps: eval.completed_laps(),
            eval_autonomy: eval.autonomy(),
            eval_mean_speed: eval.mean_speed(),
            eval_crashes: eval.crashes,
            model: pilot.into_model(),
            run_log: log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;

    fn quick_config(seed: u64) -> PipelineConfig {
        let mut cfg = PipelineConfig::lesson_default(seed);
        cfg.collection.duration_s = 60.0;
        cfg.train.epochs = 6;
        cfg.eval_laps = 2;
        cfg.eval_max_duration_s = 60.0;
        cfg
    }

    #[test]
    fn full_pipeline_trains_a_driving_model() {
        let track = circle_track(3.0, 0.8);
        let pipeline = Pipeline::new(track, quick_config(11));
        let report = pipeline.run().expect("fault-free run succeeds");

        assert!(report.records_collected >= 1200);
        assert!(report.records_cleaned <= report.records_collected);
        assert!(report.train_report.best_val_loss.is_finite());
        // The trained linear model must actually drive: most of the
        // evaluation on-track.
        assert!(
            report.eval_autonomy > 0.85,
            "autonomy {}",
            report.eval_autonomy
        );
        assert!(report.eval_mean_speed > 0.2);

        // All stages accounted.
        for stage in [
            "collect",
            "clean",
            "reserve",
            "provision+upload",
            "train",
            "deploy-model",
            "evaluate",
        ] {
            assert!(report.stage(stage).is_some(), "missing stage {stage}");
        }
        // Provisioning dominates a short lesson, as every Chameleon user
        // knows.
        assert!(
            report.stage("provision+upload").unwrap().as_secs()
                > report.stage("train").unwrap().as_secs()
        );
        // Fault-free run: no faults, no failed attempts, configured GPU.
        assert!(report.run_log.faults.is_empty());
        assert_eq!(report.run_log.failed_attempts(), 0);
        assert_eq!(report.run_log.gpu_used, "V100");
        assert_eq!(report.run_log.completed_stages.last().unwrap(), "evaluate");
    }

    #[test]
    fn degenerate_model_yields_typed_error_not_panic() {
        // A 4x4 camera cannot survive the zoo's conv stack; the pipeline
        // must reject the config statically, before collecting anything.
        let mut cfg = quick_config(14);
        cfg.model.height = 4;
        cfg.model.width = 4;
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), cfg);
        let errs = pipeline.preflight().expect_err("must reject 4x4 camera");
        assert!(!errs.is_empty());
        match pipeline.run() {
            Err(PipelineError::ContractViolated(run_errs)) => {
                assert_eq!(run_errs.len(), errs.len())
            }
            other => panic!(
                "expected ContractViolated, got {:?}",
                other.map(|_| "report")
            ),
        }
    }

    #[test]
    fn preflight_chains_all_six_zoo_models() {
        for kind in ModelKind::all() {
            let mut cfg = quick_config(16);
            cfg.model_kind = kind;
            let pipeline = Pipeline::new(circle_track(3.0, 0.8), cfg);
            let report = pipeline
                .preflight()
                .unwrap_or_else(|e| panic!("{kind:?}: {}", format_contract_errors(&e)));
            assert_eq!(report.stages.len(), 7, "{kind:?}");
            assert!(report.total_params > 0, "{kind:?}");
            assert!(report.quantities_checked >= 10, "{kind:?}");
        }
    }

    #[test]
    fn preflight_accepts_the_lesson_default() {
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), quick_config(15));
        let report = pipeline.preflight().expect("lesson default validates");
        assert!(report.total_params > 0);
    }

    #[test]
    fn skipping_clean_keeps_all_records() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(12);
        cfg.clean = false;
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run().expect("run succeeds");
        assert_eq!(report.records_cleaned, report.records_collected);
        assert!(report.stage("clean").is_none());
        assert!(!report.run_log.completed_stages.contains(&"clean".into()));
    }

    #[test]
    fn total_time_sums_stages() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(13);
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run().expect("run succeeds");
        let sum: f64 = report.stages.iter().map(|s| s.duration.as_secs()).sum();
        assert!((report.total_time().as_secs() - sum).abs() < 1e-9);
        // A lesson is tens of minutes of simulated time, not hours.
        assert!(report.total_time().as_mins() > 10.0);
        assert!(report.total_time().as_hours() < 3.0);
    }

    #[test]
    fn fallback_chain_is_strictly_slower() {
        let eff = |g: GpuKind| g.peak_tflops() * g.sustained_fraction();
        for preferred in [GpuKind::V100, GpuKind::A100, GpuKind::K80] {
            let chain = fallback_chain(preferred);
            assert_eq!(chain[0], preferred);
            for pair in chain.windows(2) {
                assert!(
                    eff(pair[0]) > eff(pair[1]),
                    "{} !> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
        // K80 is the floor: nothing to fall back to.
        assert_eq!(fallback_chain(GpuKind::K80).len(), 1);
    }

    #[test]
    fn retry_stage_respects_attempt_cap_and_deadline() {
        let policy = RetryPolicy::default();
        let mut obs = Obs::new();
        let err = retry_stage::<()>("doomed", &policy, 1, &mut obs, |_, _| {
            Err(StageFault::Retryable {
                why: "always fails".into(),
                charged: SimDuration::from_secs(1.0),
            })
        })
        .unwrap_err();
        match err {
            PipelineError::StageFailed {
                stage, attempts, ..
            } => {
                assert_eq!(stage, "doomed");
                assert_eq!(attempts, policy.max_attempts);
            }
            other => panic!("expected StageFailed, got {other}"),
        }
        let log = RunLog::from_trace(obs.trace(), vec![]);
        assert_eq!(log.attempts.len(), policy.max_attempts as usize);

        let tight = RetryPolicy::default().with_deadline(SimDuration::from_secs(0.5));
        let mut obs = Obs::new();
        let err = retry_stage::<()>("late", &tight, 1, &mut obs, |_, _| {
            Err(StageFault::Retryable {
                why: "slow".into(),
                charged: SimDuration::from_secs(10.0),
            })
        })
        .unwrap_err();
        assert!(matches!(err, PipelineError::DeadlineExceeded { .. }));
    }

    #[test]
    fn run_log_view_round_trips_attempts_exactly() {
        // The trace is the only record: charged/backoff durations and
        // outcome strings must survive the span→RunLog view bit-for-bit.
        let policy = RetryPolicy::default();
        let mut obs = Obs::new();
        let mut fails_left = 2u32;
        let (_, elapsed) = retry_stage::<()>("flaky", &policy, 7, &mut obs, |_, _| {
            if fails_left > 0 {
                fails_left -= 1;
                Err(StageFault::Retryable {
                    why: "transient".into(),
                    charged: SimDuration::from_secs(0.1 + 0.2), // not exactly representable
                })
            } else {
                Ok(((), SimDuration::from_secs(3.5)))
            }
        })
        .expect("third attempt succeeds");

        let log = RunLog::from_trace(obs.trace(), vec![]);
        assert_eq!(log.attempts.len(), 3);
        assert_eq!(log.failed_attempts(), 2);
        let total: f64 = log
            .attempts
            .iter()
            .map(|a| a.charged.as_secs() + a.backoff.as_secs())
            .sum();
        assert_eq!(total, elapsed.as_secs(), "durations must round-trip exactly");
        assert_eq!(log.attempts[0].stage, "flaky");
        assert_eq!(log.attempts[0].attempt, 1);
        assert_eq!(log.attempts[0].outcome, "transient");
        assert_eq!(log.attempts[0].charged, SimDuration::from_secs(0.1 + 0.2));
        assert_eq!(log.attempts[2].outcome, "ok");
        assert_eq!(log.attempts[2].backoff, SimDuration::ZERO);
        // The retry counter matches the failures; cursor advanced by the
        // full elapsed time.
        assert_eq!(obs.metrics().counter("pipeline.retries"), 2);
        assert_eq!(obs.now().as_secs(), elapsed.as_secs());
    }

    #[test]
    fn observed_run_exports_all_seven_stages_nested() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(17);
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let pipeline = Pipeline::new(track, cfg);
        let mut obs = Obs::new();
        let report = pipeline
            .run_observed(&mut FaultPlan::none(), &RetryPolicy::default(), &mut obs)
            .expect("fault-free observed run succeeds");

        // Root span + the seven stages nested directly under it.
        let trace = obs.trace();
        let root = trace.spans_named("pipeline").next().expect("root span");
        assert!(root.end.is_some());
        for stage in [
            "collect",
            "clean",
            "reserve",
            "provision+upload",
            "train",
            "deploy-model",
            "evaluate",
        ] {
            let span = trace
                .spans_named(stage)
                .next()
                .unwrap_or_else(|| panic!("missing span {stage}"));
            assert_eq!(span.parent, Some(autolearn_obs::SpanId(0)), "{stage} not under root");
        }
        // The run log reconstructed from the trace matches what run_chaos
        // would have recorded.
        assert_eq!(report.run_log.completed_stages.last().unwrap(), "evaluate");
        assert_eq!(report.run_log.gpu_used, "V100");
        // Stage metrics landed: seven observations, one per stage.
        let h = obs
            .metrics()
            .histogram("pipeline.stage_seconds")
            .expect("stage histogram");
        assert_eq!(h.count, 7);
        // Sim-time cursor ended at the total pipeline duration (the cursor
        // sums increments in a different order, so allow one ulp of drift).
        let drift = (obs.now().as_secs() - report.total_time().as_secs()).abs();
        assert!(drift < 1e-9, "cursor drifted {drift} from stage totals");
        // Exports work end-to-end and are Perfetto-shaped.
        let json = obs.export_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"checkpoint\""));
    }
}
