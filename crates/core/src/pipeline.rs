//! The end-to-end AutoLearn pipeline (Fig. 1).
//!
//! One call runs what a student does over an afternoon: collect data on the
//! car, clean it, reserve a Chameleon GPU node, deploy the CUDA image,
//! rsync the tub up, train, store the model in the object store, pull it
//! onto the car's container, and drive autonomous evaluation laps — with
//! every stage's simulated wall-clock accounted.

use crate::collect::{collect_session, CollectConfig, CollectionPath};
use crate::dataset::{records_to_dataset, tub_bytes_estimate};
use crate::modelpilot::ModelPilot;
use autolearn_cloud::hardware::{ComputeDevice, GpuKind, Site};
use autolearn_cloud::perf::{training_time, TrainingCostModel};
use autolearn_cloud::provision::ProvisioningPlan;
use autolearn_cloud::reservation::ReservationSystem;
use autolearn_net::{transfer_time, Path, TransferSpec};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{
    format_errors, validate_model, GraphError, GraphReport, TrainConfig, TrainReport, Trainer,
};
use autolearn_sim::{CarConfig, DriveConfig, Simulation};
use autolearn_track::Track;
use autolearn_tub::{CleanConfig, TubCleaner};
use autolearn_util::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub collection: CollectConfig,
    pub model_kind: ModelKind,
    pub model: ModelConfig,
    pub train: TrainConfig,
    /// GPU node type to reserve for training.
    pub gpu: GpuKind,
    /// Run tubclean before training.
    pub clean: bool,
    /// Autonomous evaluation laps.
    pub eval_laps: usize,
    pub eval_max_duration_s: f64,
}

impl PipelineConfig {
    /// The module's default lesson: simulator data, linear model, V100.
    pub fn lesson_default(seed: u64) -> PipelineConfig {
        PipelineConfig {
            collection: CollectConfig::new(CollectionPath::Simulator, 120.0, seed),
            model_kind: ModelKind::Linear,
            model: ModelConfig {
                height: 30,
                width: 40,
                channels: 1,
                seed,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 10,
                batch_size: 32,
                seed,
                ..Default::default()
            },
            gpu: GpuKind::V100,
            clean: true,
            eval_laps: 3,
            eval_max_duration_s: 180.0,
        }
    }
}

/// Simulated wall-clock spent in one stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    pub stage: String,
    pub duration: SimDuration,
}

/// Everything the pipeline produces.
pub struct PipelineReport {
    pub stages: Vec<StageTiming>,
    pub records_collected: usize,
    pub records_cleaned: usize,
    pub train_report: TrainReport,
    /// Evaluation metrics from the autonomous laps.
    pub eval_laps: usize,
    pub eval_autonomy: f64,
    pub eval_mean_speed: f64,
    pub eval_crashes: usize,
    pub model: CarModel,
}

impl PipelineReport {
    pub fn total_time(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    pub fn stage(&self, name: &str) -> Option<SimDuration> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| s.duration)
    }
}

/// The pipeline runner.
pub struct Pipeline {
    pub track: Track,
    pub config: PipelineConfig,
}

impl Pipeline {
    pub fn new(track: Track, config: PipelineConfig) -> Pipeline {
        Pipeline { track, config }
    }

    /// Statically validate the configured model graph (shape propagation
    /// over the zoo *plan* — no tensors allocated, no model built).
    /// [`Pipeline::run`] calls this first; callers who want a recoverable
    /// error instead of a panic call it themselves before `run`.
    pub fn preflight(&self) -> Result<GraphReport, Vec<GraphError>> {
        let spec = CarModel::plan(self.config.model_kind, &self.config.model);
        validate_model(&spec)
    }

    /// Run the whole loop. Host CPU does the math; simulated time is
    /// attributed per stage.
    pub fn run(&self) -> PipelineReport {
        let cfg = &self.config;
        if let Err(errs) = self.preflight() {
            // INVARIANT: a degenerate model config must be rejected before
            // any stage runs; recoverable callers use `preflight()` first.
            panic!("model plan rejected:\n{}", format_errors(&errs));
        }
        let mut stages = Vec::new();

        // 1. Collect (student drives for the configured duration).
        let collected = collect_session(&self.track, &cfg.collection);
        stages.push(StageTiming {
            stage: "collect".into(),
            duration: SimDuration::from_secs(collected.session.duration_s),
        });
        let records_collected = collected.records.len();

        // 2. Clean. The manual tubclean review plays the video back; charge
        // 1/4 of the session length for the student's review pass.
        let mut records = collected.records;
        if cfg.clean {
            let cleaner = TubCleaner::new(CleanConfig::default());
            let report = cleaner.analyse(&records);
            let flagged = report.flagged_ids();
            records.retain(|r| !flagged.contains(&r.id));
            stages.push(StageTiming {
                stage: "clean".into(),
                duration: SimDuration::from_secs(collected.session.duration_s / 4.0),
            });
        }
        let records_cleaned = records.len();

        // 3. Reserve the GPU node (on-demand; instant when capacity free).
        let mut reservations = ReservationSystem::new(Site::chameleon());
        let node_type = format!("gpu_{}", cfg.gpu.name().to_lowercase());
        reservations
            .on_demand("autolearn", &node_type, 1, SimTime::ZERO, 4.0 * 3600.0)
            .expect("chameleon has free capacity in the default scenario");

        // 4. Provision the CUDA image + rsync the tub up.
        let upload = transfer_time(
            &Path::car_to_cloud(),
            &TransferSpec::rsync(tub_bytes_estimate(&records)),
        );
        let plan = ProvisioningPlan::cuda_image(upload);
        stages.push(StageTiming {
            stage: "provision+upload".into(),
            duration: plan.total(),
        });

        // 5. Train (real math on host; device time attributed).
        let mut model = CarModel::build(cfg.model_kind, &cfg.model);
        let data = prepare_dataset(&records_to_dataset(&records, &cfg.model), model.input_spec());
        let trainer = Trainer::new(cfg.train.clone());
        let train_report = trainer
            .fit(&mut model, &data)
            // INVARIANT: preflight() above already validated this plan; the
            // live graph matching it is asserted by the zoo tests.
            .unwrap_or_else(|errs| panic!("model graph rejected:\n{}", format_errors(&errs)));
        let cost = TrainingCostModel::new(
            model.flops_per_inference(),
            train_report.examples_seen,
            cfg.train.batch_size as u64,
        );
        stages.push(StageTiming {
            stage: "train".into(),
            duration: training_time(&cost, &ComputeDevice::of_gpu(cfg.gpu)),
        });

        // 6. Ship the model: object store PUT from the GPU node, GET on the
        // car (model JSON ≈ 4 B/param + structure).
        let model_bytes = (model.param_count() * 4 + 4096) as u64;
        let ship = transfer_time(
            &Path::of_presets(&[autolearn_net::LinkPreset::Datacenter]),
            &TransferSpec::object_store(model_bytes),
        ) + transfer_time(
            &Path::car_to_cloud(),
            &TransferSpec::object_store(model_bytes),
        );
        stages.push(StageTiming {
            stage: "deploy-model".into(),
            duration: ship,
        });

        // 7. Evaluate: autonomous laps on the same kind of car that
        // collected the data.
        let (car, camera) = match cfg.collection.path {
            CollectionPath::PhysicalCar => (
                CarConfig::real_car(cfg.collection.seed ^ 0xe7a1),
                cfg.collection
                    .camera
                    .clone()
                    .with_noise(6.0, cfg.collection.seed ^ 0xe7a1),
            ),
            _ => (
                CarConfig::default(),
                cfg.collection.camera.clone(),
            ),
        };
        let mut sim = Simulation::new(
            self.track.clone(),
            car,
            camera,
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = ModelPilot::new(model);
        let eval = sim.run_laps(&mut pilot, cfg.eval_laps, cfg.eval_max_duration_s);
        stages.push(StageTiming {
            stage: "evaluate".into(),
            duration: SimDuration::from_secs(eval.duration_s),
        });

        PipelineReport {
            stages,
            records_collected,
            records_cleaned,
            train_report,
            eval_laps: eval.completed_laps(),
            eval_autonomy: eval.autonomy(),
            eval_mean_speed: eval.mean_speed(),
            eval_crashes: eval.crashes,
            model: pilot.into_model(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;

    fn quick_config(seed: u64) -> PipelineConfig {
        let mut cfg = PipelineConfig::lesson_default(seed);
        cfg.collection.duration_s = 60.0;
        cfg.train.epochs = 6;
        cfg.eval_laps = 2;
        cfg.eval_max_duration_s = 60.0;
        cfg
    }

    #[test]
    fn full_pipeline_trains_a_driving_model() {
        let track = circle_track(3.0, 0.8);
        let pipeline = Pipeline::new(track, quick_config(11));
        let report = pipeline.run();

        assert!(report.records_collected >= 1200);
        assert!(report.records_cleaned <= report.records_collected);
        assert!(report.train_report.best_val_loss.is_finite());
        // The trained linear model must actually drive: most of the
        // evaluation on-track.
        assert!(
            report.eval_autonomy > 0.85,
            "autonomy {}",
            report.eval_autonomy
        );
        assert!(report.eval_mean_speed > 0.2);

        // All stages accounted.
        for stage in ["collect", "clean", "provision+upload", "train", "deploy-model", "evaluate"] {
            assert!(report.stage(stage).is_some(), "missing stage {stage}");
        }
        // Provisioning dominates a short lesson, as every Chameleon user
        // knows.
        assert!(
            report.stage("provision+upload").unwrap().as_secs()
                > report.stage("train").unwrap().as_secs()
        );
    }

    #[test]
    fn preflight_rejects_degenerate_camera() {
        // A 4x4 camera cannot survive the zoo's conv stack; the pipeline
        // must reject the config statically, before collecting anything.
        let mut cfg = quick_config(14);
        cfg.model.height = 4;
        cfg.model.width = 4;
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), cfg);
        let errs = pipeline.preflight().expect_err("must reject 4x4 camera");
        assert!(!errs.is_empty());
    }

    #[test]
    fn preflight_accepts_the_lesson_default() {
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), quick_config(15));
        let report = pipeline.preflight().expect("lesson default validates");
        assert!(report.total_params > 0);
    }

    #[test]
    fn skipping_clean_keeps_all_records() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(12);
        cfg.clean = false;
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run();
        assert_eq!(report.records_cleaned, report.records_collected);
        assert!(report.stage("clean").is_none());
    }

    #[test]
    fn total_time_sums_stages() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(13);
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run();
        let sum: f64 = report.stages.iter().map(|s| s.duration.as_secs()).sum();
        assert!((report.total_time().as_secs() - sum).abs() < 1e-9);
        // A lesson is tens of minutes of simulated time, not hours.
        assert!(report.total_time().as_mins() > 10.0);
        assert!(report.total_time().as_hours() < 3.0);
    }
}
