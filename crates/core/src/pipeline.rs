//! The end-to-end AutoLearn pipeline (Fig. 1), fallible edition.
//!
//! One call runs what a student does over an afternoon: collect data on the
//! car, clean it, reserve a Chameleon GPU node, deploy the CUDA image,
//! rsync the tub up, train, store the model in the object store, pull it
//! onto the car's container, and drive autonomous evaluation laps — with
//! every stage's simulated wall-clock accounted.
//!
//! Every stage that touches the continuum is fallible: [`Pipeline::run`]
//! consults a [`FaultPlan`] at each network transfer, lease launch and
//! container start, retries failed attempts under a [`RetryPolicy`]
//! (exponential backoff charged to simulated time), and degrades rather
//! than dies where it can — falling back to a slower GPU when capacity is
//! exhausted, re-sending only the rsync delta after a mid-transfer fault,
//! resuming training from the last epoch boundary after a preemption.
//! Completed stages are checkpointed and never re-run; every attempt and
//! every injected fault lands in the report's [`RunLog`].

use crate::collect::{collect_session, CollectConfig, CollectionPath};
use crate::dataset::{records_to_dataset, tub_bytes_estimate};
use crate::modelpilot::ModelPilot;
use autolearn_cloud::chaos::{launch_lease, LaunchError, LAUNCH_OVERHEAD_S};
use autolearn_cloud::hardware::{ComputeDevice, GpuKind, Site};
use autolearn_cloud::perf::{training_time, TrainingCostModel};
use autolearn_cloud::provision::ProvisioningPlan;
use autolearn_cloud::reservation::{ReservationError, ReservationSystem};
use autolearn_edge::container::{ContainerRuntime, ImageSpec};
use autolearn_net::{transfer_time, Path, ResumableTransfer, TransferSpec};
use autolearn_nn::models::{prepare_dataset, CarModel, DonkeyModel, ModelConfig, ModelKind};
use autolearn_nn::{
    format_contract_errors, format_errors, standard_stages, validate_pipeline, ContractError,
    ContractReport, DType, FrameContract, GraphError, TrainConfig, TrainReport, Trainer,
};
use autolearn_sim::{CarConfig, DriveConfig, Simulation};
use autolearn_track::Track;
use autolearn_tub::{CleanConfig, TubCleaner};
use autolearn_util::fault::{FaultPlan, InjectedFault};
use autolearn_util::{derive_seed, Bytes, Epochs, RetryPolicy, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    pub collection: CollectConfig,
    pub model_kind: ModelKind,
    pub model: ModelConfig,
    pub train: TrainConfig,
    /// GPU node type to reserve for training.
    pub gpu: GpuKind,
    /// Run tubclean before training.
    pub clean: bool,
    /// Autonomous evaluation laps.
    pub eval_laps: usize,
    pub eval_max_duration_s: f64,
}

impl PipelineConfig {
    /// The module's default lesson: simulator data, linear model, V100.
    pub fn lesson_default(seed: u64) -> PipelineConfig {
        PipelineConfig {
            collection: CollectConfig::new(CollectionPath::Simulator, 120.0, seed),
            model_kind: ModelKind::Linear,
            model: ModelConfig {
                height: 30,
                width: 40,
                channels: 1,
                seed,
                ..Default::default()
            },
            train: TrainConfig {
                epochs: 10,
                batch_size: 32,
                seed,
                ..Default::default()
            },
            gpu: GpuKind::V100,
            clean: true,
            eval_laps: 3,
            eval_max_duration_s: 180.0,
        }
    }
}

/// Simulated wall-clock spent in one stage.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageTiming {
    pub stage: String,
    pub duration: SimDuration,
}

/// One attempt at a fallible stage, as recorded in the [`RunLog`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttemptRecord {
    pub stage: String,
    /// 1-based attempt number within the stage.
    pub attempt: u32,
    /// `"ok"`, or the failure description.
    pub outcome: String,
    /// Simulated time this attempt consumed (work + injected penalties).
    pub charged: SimDuration,
    /// Backoff charged after this attempt (zero on success or final try).
    pub backoff: SimDuration,
}

/// The complete recovery history of one pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunLog {
    /// Every attempt at every fallible stage, in execution order.
    pub attempts: Vec<AttemptRecord>,
    /// Every fault the plan injected, in injection order.
    pub faults: Vec<InjectedFault>,
    /// Stages that completed, in order — the checkpoint trail: a stage in
    /// this list was never re-entered.
    pub completed_stages: Vec<String>,
    /// The GPU that actually trained the model (may differ from the
    /// configured one after a capacity fallback).
    pub gpu_used: String,
}

impl RunLog {
    /// Attempts that failed (retries and terminal failures).
    pub fn failed_attempts(&self) -> usize {
        self.attempts.iter().filter(|a| a.outcome != "ok").count()
    }
}

/// Why a pipeline run could not complete.
#[derive(Debug, Clone)]
pub enum PipelineError {
    /// The model plan failed static validation; nothing ran.
    ModelRejected(Vec<GraphError>),
    /// The pipeline contract failed static validation (stage ordering,
    /// artifact flow, units or the tub→model handoff); nothing ran.
    ContractViolated(Vec<ContractError>),
    /// The reservation system refused the request for a non-transient
    /// reason (unknown node type, inverted window, genuine capacity).
    Reservation(ReservationError),
    /// A stage exhausted its retry budget.
    StageFailed {
        stage: String,
        attempts: u32,
        last_error: String,
    },
    /// A stage blew through its per-stage deadline.
    DeadlineExceeded {
        stage: String,
        elapsed: SimDuration,
        deadline: SimDuration,
    },
}

impl PipelineError {
    /// The stage the run died in, when the error is stage-scoped.
    pub fn stage(&self) -> Option<&str> {
        match self {
            PipelineError::StageFailed { stage, .. }
            | PipelineError::DeadlineExceeded { stage, .. } => Some(stage),
            _ => None,
        }
    }
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::ModelRejected(errs) => {
                write!(f, "model plan rejected:\n{}", format_errors(errs))
            }
            PipelineError::ContractViolated(errs) => {
                write!(
                    f,
                    "pipeline contract violated:\n{}",
                    format_contract_errors(errs)
                )
            }
            PipelineError::Reservation(e) => write!(f, "reservation refused: {e}"),
            PipelineError::StageFailed {
                stage,
                attempts,
                last_error,
            } => write!(f, "stage '{stage}' failed after {attempts} attempts: {last_error}"),
            PipelineError::DeadlineExceeded {
                stage,
                elapsed,
                deadline,
            } => write!(f, "stage '{stage}' blew its {deadline} deadline (spent {elapsed})"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// Everything the pipeline produces.
pub struct PipelineReport {
    pub stages: Vec<StageTiming>,
    pub records_collected: usize,
    pub records_cleaned: usize,
    pub train_report: TrainReport,
    /// Evaluation metrics from the autonomous laps.
    pub eval_laps: usize,
    pub eval_autonomy: f64,
    pub eval_mean_speed: f64,
    pub eval_crashes: usize,
    pub model: CarModel,
    /// The attempt/fault/checkpoint history of the run.
    pub run_log: RunLog,
}

impl PipelineReport {
    pub fn total_time(&self) -> SimDuration {
        self.stages
            .iter()
            .fold(SimDuration::ZERO, |acc, s| acc + s.duration)
    }

    pub fn stage(&self, name: &str) -> Option<SimDuration> {
        self.stages
            .iter()
            .find(|s| s.stage == name)
            .map(|s| s.duration)
    }
}

/// What one attempt of a fallible stage reported back to the retry driver.
enum StageFault {
    /// Worth another try: the attempt died for a transient reason, after
    /// consuming `charged` simulated time.
    Retryable { why: String, charged: SimDuration },
    /// Not worth retrying; abort the run with this error.
    Fatal(PipelineError),
}

/// Drive one fallible stage under `policy`: run attempts until one succeeds,
/// the attempt cap is hit, or the stage deadline is blown, charging
/// exponential backoff (with jitter derived from `seed`) between attempts
/// and recording every attempt in `log`. Returns the stage's value plus the
/// total simulated time the stage consumed.
fn retry_stage<T>(
    stage: &str,
    policy: &RetryPolicy,
    seed: u64,
    log: &mut RunLog,
    mut attempt_fn: impl FnMut(u32) -> Result<(T, SimDuration), StageFault>,
) -> Result<(T, SimDuration), PipelineError> {
    let mut elapsed = SimDuration::ZERO;
    let mut attempt = 1u32;
    let mut last_error = "never attempted".to_string();
    loop {
        if !policy.allows(attempt, elapsed) {
            return Err(if policy.deadline_exceeded(elapsed) {
                PipelineError::DeadlineExceeded {
                    stage: stage.to_string(),
                    elapsed,
                    deadline: policy.deadline.unwrap_or(SimDuration::ZERO),
                }
            } else {
                PipelineError::StageFailed {
                    stage: stage.to_string(),
                    attempts: attempt.saturating_sub(1),
                    last_error,
                }
            });
        }
        match attempt_fn(attempt) {
            Ok((value, charged)) => {
                elapsed += charged;
                log.attempts.push(AttemptRecord {
                    stage: stage.to_string(),
                    attempt,
                    outcome: "ok".to_string(),
                    charged,
                    backoff: SimDuration::ZERO,
                });
                return Ok((value, elapsed));
            }
            Err(StageFault::Fatal(e)) => return Err(e),
            Err(StageFault::Retryable { why, charged }) => {
                elapsed += charged;
                // Only charge backoff when another attempt is coming.
                let backoff = if policy.allows(attempt + 1, elapsed) {
                    policy.backoff(attempt, seed)
                } else {
                    SimDuration::ZERO
                };
                elapsed += backoff;
                log.attempts.push(AttemptRecord {
                    stage: stage.to_string(),
                    attempt,
                    outcome: why.clone(),
                    charged,
                    backoff,
                });
                last_error = why;
                attempt += 1;
            }
        }
    }
}

/// GPUs to fall back to when `preferred` has no capacity: every kind with
/// strictly lower sustained throughput, best first — degraded runs get
/// *slower*, never faster, so recovery always costs simulated time.
fn fallback_chain(preferred: GpuKind) -> Vec<GpuKind> {
    let eff = |g: GpuKind| g.peak_tflops() * g.sustained_fraction();
    let mut slower: Vec<GpuKind> = [
        GpuKind::A100,
        GpuKind::Mi100,
        GpuKind::V100NvLink,
        GpuKind::V100,
        GpuKind::Rtx6000,
        GpuKind::P100,
        GpuKind::M40,
        GpuKind::K80,
    ]
    .into_iter()
    .filter(|g| eff(*g) < eff(preferred))
    .collect();
    slower.sort_by(|a, b| {
        eff(*b)
            .partial_cmp(&eff(*a))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut chain = vec![preferred];
    chain.extend(slower);
    chain
}

/// The pipeline runner.
pub struct Pipeline {
    pub track: Track,
    pub config: PipelineConfig,
}

impl Pipeline {
    pub fn new(track: Track, config: PipelineConfig) -> Pipeline {
        Pipeline { track, config }
    }

    /// Statically validate the full pipeline contract before anything
    /// runs: the configured model graph (shape propagation over the zoo
    /// *plan* — no tensors allocated, no model built), the tub→model frame
    /// handoff, and the stage chain's artifact flow, ordering and units.
    /// [`Pipeline::run`] calls this first and surfaces failures as
    /// [`PipelineError::ContractViolated`].
    pub fn preflight(&self) -> Result<ContractReport, Vec<ContractError>> {
        let cfg = &self.config;
        let spec = CarModel::plan(cfg.model_kind, &cfg.model);
        let frames = FrameContract {
            channels: cfg.model.channels,
            height: cfg.model.height,
            width: cfg.model.width,
            dtype: DType::F32,
        };
        validate_pipeline(
            &standard_stages(cfg.clean),
            &spec,
            CarModel::frame_layout(cfg.model_kind),
            &frames,
        )
    }

    /// Run the whole loop on the happy path: no injected faults, default
    /// retry policy. Host CPU does the math; simulated time is attributed
    /// per stage.
    pub fn run(&self) -> Result<PipelineReport, PipelineError> {
        self.run_chaos(&mut FaultPlan::none(), &RetryPolicy::default())
    }

    /// Run the whole loop under fault injection: `plan` is consulted at
    /// every fallible operation, failed attempts are retried under
    /// `policy`, and the report's [`RunLog`] records what happened.
    pub fn run_chaos(
        &self,
        plan: &mut FaultPlan,
        policy: &RetryPolicy,
    ) -> Result<PipelineReport, PipelineError> {
        let cfg = &self.config;
        if let Err(errs) = self.preflight() {
            return Err(PipelineError::ContractViolated(errs));
        }
        let seed = cfg.collection.seed;
        let mut log = RunLog::default();
        let mut stages = Vec::new();
        let checkpoint = |log: &mut RunLog, stage: &str| {
            log.completed_stages.push(stage.to_string());
        };

        // 1. Collect (student drives for the configured duration; the car
        // is offline during collection, so no continuum faults apply).
        let collected = collect_session(&self.track, &cfg.collection);
        stages.push(StageTiming {
            stage: "collect".into(),
            duration: SimDuration::from_secs(collected.session.duration_s),
        });
        checkpoint(&mut log, "collect");
        let records_collected = collected.records.len();

        // 2. Clean. The manual tubclean review plays the video back; charge
        // 1/4 of the session length for the student's review pass.
        let mut records = collected.records;
        if cfg.clean {
            let cleaner = TubCleaner::new(CleanConfig::default());
            let report = cleaner.analyse(&records);
            let flagged = report.flagged_ids();
            records.retain(|r| !flagged.contains(&r.id));
            stages.push(StageTiming {
                stage: "clean".into(),
                duration: SimDuration::from_secs(collected.session.duration_s / 4.0),
            });
            checkpoint(&mut log, "clean");
        }
        let records_cleaned = records.len();

        // 3. Reserve the GPU node. An injected capacity window walks down
        // the fallback chain to a strictly slower GPU; a transient launch
        // failure burns the wasted lease time and retries.
        let mut reservations = ReservationSystem::new(Site::chameleon());
        let chain = fallback_chain(cfg.gpu);
        let mut chain_idx = 0usize;
        let ((gpu_used, launch), reserve_time) = retry_stage(
            "reserve",
            policy,
            derive_seed(seed, "retry-reserve"),
            &mut log,
            |_attempt| {
                let gpu = chain[chain_idx.min(chain.len() - 1)];
                let node_type = format!("gpu_{}", gpu.name().to_lowercase());
                match launch_lease(
                    &mut reservations,
                    "autolearn",
                    &node_type,
                    1,
                    SimTime::ZERO,
                    SimDuration::from_hours(4.0),
                    plan,
                ) {
                    Ok(launch) => {
                        let launch_time = launch.launch_time;
                        Ok(((gpu, launch), launch_time))
                    }
                    Err(LaunchError::Refused(e)) => {
                        Err(StageFault::Fatal(PipelineError::Reservation(e)))
                    }
                    Err(LaunchError::Transient { wasted }) => Err(StageFault::Retryable {
                        why: format!("transient launch failure on {node_type}"),
                        charged: wasted,
                    }),
                    Err(LaunchError::CapacityWindow { wasted, window }) => {
                        if chain_idx + 1 < chain.len() {
                            chain_idx += 1;
                            Err(StageFault::Retryable {
                                why: format!(
                                    "no {node_type} capacity, falling back to {}",
                                    chain[chain_idx]
                                ),
                                charged: wasted,
                            })
                        } else {
                            // Nothing slower to fall back to: wait the
                            // window out and try the same type again.
                            Err(StageFault::Retryable {
                                why: format!("no {node_type} capacity, waiting out window"),
                                charged: wasted + window,
                            })
                        }
                    }
                }
            },
        )?;
        let mut preempt = launch.preempt_at_fraction;
        stages.push(StageTiming {
            stage: "reserve".into(),
            duration: reserve_time,
        });
        checkpoint(&mut log, "reserve");
        log.gpu_used = gpu_used.name().to_string();

        // 4. Provision the CUDA image + rsync the tub up. The bare-metal
        // deploy steps are charged once; the upload is a resumable transfer
        // that re-sends only the delta after a mid-transfer fault.
        let fixed = ProvisioningPlan::cuda_image(SimDuration::ZERO).total();
        let mut upload = ResumableTransfer::new(TransferSpec::rsync(tub_bytes_estimate(&records)));
        let (_, upload_time) = retry_stage(
            "provision+upload",
            policy,
            derive_seed(seed, "retry-upload"),
            &mut log,
            |_attempt| match upload.attempt(&Path::car_to_cloud(), plan, "tub-upload") {
                Ok(d) => Ok(((), d)),
                Err((failure, charged)) => Err(StageFault::Retryable {
                    why: failure.to_string(),
                    charged,
                }),
            },
        )?;
        stages.push(StageTiming {
            stage: "provision+upload".into(),
            duration: fixed + upload_time,
        });
        checkpoint(&mut log, "provision+upload");

        // 5. Train (real math on host; device time attributed). A scheduled
        // preemption revokes the lease mid-training: the partial epoch is
        // lost, the node relaunches, and training resumes from the last
        // completed epoch boundary.
        let mut model = CarModel::build(cfg.model_kind, &cfg.model);
        let data = prepare_dataset(&records_to_dataset(&records, &cfg.model), model.input_spec());
        let trainer = Trainer::new(cfg.train.clone());
        let train_report = trainer
            .fit(&mut model, &data)
            .map_err(PipelineError::ModelRejected)?;
        let cost = TrainingCostModel::new(
            model.flops_per_inference(),
            train_report.examples_seen,
            cfg.train.batch_size as u64,
        );
        let base_train = training_time(&cost, &ComputeDevice::of_gpu(gpu_used));
        let train_time = match preempt.take() {
            None => {
                log.attempts.push(AttemptRecord {
                    stage: "train".into(),
                    attempt: 1,
                    outcome: "ok".into(),
                    charged: base_train,
                    backoff: SimDuration::ZERO,
                });
                base_train
            }
            Some(at_fraction) => {
                // Checkpoints land at epoch boundaries: resume re-runs the
                // interrupted epoch, after a fresh node launch.
                let planned = Epochs::new(cfg.train.epochs as u32).max_one();
                let banked = planned.completed_at(at_fraction);
                let kept = banked / planned;
                let lost = base_train * at_fraction;
                let relaunch = SimDuration::from_secs(LAUNCH_OVERHEAD_S);
                let resume = base_train * (1.0 - kept);
                log.attempts.push(AttemptRecord {
                    stage: "train".into(),
                    attempt: 1,
                    outcome: format!(
                        "preempted at {:.0}% of training, resuming from epoch {banked}",
                        at_fraction * 100.0,
                    ),
                    charged: lost + relaunch,
                    backoff: SimDuration::ZERO,
                });
                log.attempts.push(AttemptRecord {
                    stage: "train".into(),
                    attempt: 2,
                    outcome: "ok".into(),
                    charged: resume,
                    backoff: SimDuration::ZERO,
                });
                lost + relaunch + resume
            }
        };
        stages.push(StageTiming {
            stage: "train".into(),
            duration: train_time,
        });
        checkpoint(&mut log, "train");

        // 6. Deploy the model: object store PUT from the GPU node (the
        // datacenter fabric is not a fault site), resumable GET down to the
        // car, then the car's container (re)start — both fault-prone.
        let model_bytes = Bytes::new((model.param_count() * 4 + 4096) as u64);
        let put = transfer_time(
            &Path::of_presets(&[autolearn_net::LinkPreset::Datacenter]),
            &TransferSpec::object_store(model_bytes),
        );
        let mut get = ResumableTransfer::new(TransferSpec::object_store(model_bytes));
        let (_, get_time) = retry_stage(
            "deploy-model",
            policy,
            derive_seed(seed, "retry-deploy"),
            &mut log,
            |_attempt| match get.attempt(&Path::car_to_cloud(), plan, "model-download") {
                Ok(d) => Ok(((), d)),
                Err((failure, charged)) => Err(StageFault::Retryable {
                    why: failure.to_string(),
                    charged,
                }),
            },
        )?;
        let mut runtime = ContainerRuntime::new();
        let image = ImageSpec::autolearn();
        let (_, container_time) = retry_stage(
            "deploy-container",
            policy,
            derive_seed(seed, "retry-container"),
            &mut log,
            // The image stays cached across failed attempts, so retries
            // start warm — only the fault's own cost is paid again.
            |_attempt| match runtime.launch_with_faults(&image, &Path::car_to_cloud(), plan) {
                Ok((_container, d)) => Ok(((), d)),
                Err(err) => {
                    let wasted = match &err {
                        autolearn_edge::EdgeLaunchError::DeviceDisconnected { wasted, .. } => {
                            *wasted
                        }
                        autolearn_edge::EdgeLaunchError::ContainerCrashed { wasted } => *wasted,
                    };
                    Err(StageFault::Retryable {
                        why: err.to_string(),
                        charged: wasted,
                    })
                }
            },
        )?;
        stages.push(StageTiming {
            stage: "deploy-model".into(),
            duration: put + get_time + container_time,
        });
        checkpoint(&mut log, "deploy-model");

        // 7. Evaluate: autonomous laps on the same kind of car that
        // collected the data.
        let (car, camera) = match cfg.collection.path {
            CollectionPath::PhysicalCar => (
                CarConfig::real_car(cfg.collection.seed ^ 0xe7a1),
                cfg.collection
                    .camera
                    .clone()
                    .with_noise(6.0, cfg.collection.seed ^ 0xe7a1),
            ),
            _ => (
                CarConfig::default(),
                cfg.collection.camera.clone(),
            ),
        };
        let mut sim = Simulation::new(
            self.track.clone(),
            car,
            camera,
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = ModelPilot::new(model);
        let eval = sim.run_laps(&mut pilot, cfg.eval_laps, cfg.eval_max_duration_s);
        stages.push(StageTiming {
            stage: "evaluate".into(),
            duration: SimDuration::from_secs(eval.duration_s),
        });
        checkpoint(&mut log, "evaluate");

        log.faults = plan.injected().to_vec();
        Ok(PipelineReport {
            stages,
            records_collected,
            records_cleaned,
            train_report,
            eval_laps: eval.completed_laps(),
            eval_autonomy: eval.autonomy(),
            eval_mean_speed: eval.mean_speed(),
            eval_crashes: eval.crashes,
            model: pilot.into_model(),
            run_log: log,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;

    fn quick_config(seed: u64) -> PipelineConfig {
        let mut cfg = PipelineConfig::lesson_default(seed);
        cfg.collection.duration_s = 60.0;
        cfg.train.epochs = 6;
        cfg.eval_laps = 2;
        cfg.eval_max_duration_s = 60.0;
        cfg
    }

    #[test]
    fn full_pipeline_trains_a_driving_model() {
        let track = circle_track(3.0, 0.8);
        let pipeline = Pipeline::new(track, quick_config(11));
        let report = pipeline.run().expect("fault-free run succeeds");

        assert!(report.records_collected >= 1200);
        assert!(report.records_cleaned <= report.records_collected);
        assert!(report.train_report.best_val_loss.is_finite());
        // The trained linear model must actually drive: most of the
        // evaluation on-track.
        assert!(
            report.eval_autonomy > 0.85,
            "autonomy {}",
            report.eval_autonomy
        );
        assert!(report.eval_mean_speed > 0.2);

        // All stages accounted.
        for stage in [
            "collect",
            "clean",
            "reserve",
            "provision+upload",
            "train",
            "deploy-model",
            "evaluate",
        ] {
            assert!(report.stage(stage).is_some(), "missing stage {stage}");
        }
        // Provisioning dominates a short lesson, as every Chameleon user
        // knows.
        assert!(
            report.stage("provision+upload").unwrap().as_secs()
                > report.stage("train").unwrap().as_secs()
        );
        // Fault-free run: no faults, no failed attempts, configured GPU.
        assert!(report.run_log.faults.is_empty());
        assert_eq!(report.run_log.failed_attempts(), 0);
        assert_eq!(report.run_log.gpu_used, "V100");
        assert_eq!(report.run_log.completed_stages.last().unwrap(), "evaluate");
    }

    #[test]
    fn degenerate_model_yields_typed_error_not_panic() {
        // A 4x4 camera cannot survive the zoo's conv stack; the pipeline
        // must reject the config statically, before collecting anything.
        let mut cfg = quick_config(14);
        cfg.model.height = 4;
        cfg.model.width = 4;
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), cfg);
        let errs = pipeline.preflight().expect_err("must reject 4x4 camera");
        assert!(!errs.is_empty());
        match pipeline.run() {
            Err(PipelineError::ContractViolated(run_errs)) => {
                assert_eq!(run_errs.len(), errs.len())
            }
            other => panic!(
                "expected ContractViolated, got {:?}",
                other.map(|_| "report")
            ),
        }
    }

    #[test]
    fn preflight_chains_all_six_zoo_models() {
        for kind in ModelKind::all() {
            let mut cfg = quick_config(16);
            cfg.model_kind = kind;
            let pipeline = Pipeline::new(circle_track(3.0, 0.8), cfg);
            let report = pipeline
                .preflight()
                .unwrap_or_else(|e| panic!("{kind:?}: {}", format_contract_errors(&e)));
            assert_eq!(report.stages.len(), 7, "{kind:?}");
            assert!(report.total_params > 0, "{kind:?}");
            assert!(report.quantities_checked >= 10, "{kind:?}");
        }
    }

    #[test]
    fn preflight_accepts_the_lesson_default() {
        let pipeline = Pipeline::new(circle_track(3.0, 0.8), quick_config(15));
        let report = pipeline.preflight().expect("lesson default validates");
        assert!(report.total_params > 0);
    }

    #[test]
    fn skipping_clean_keeps_all_records() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(12);
        cfg.clean = false;
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run().expect("run succeeds");
        assert_eq!(report.records_cleaned, report.records_collected);
        assert!(report.stage("clean").is_none());
        assert!(!report.run_log.completed_stages.contains(&"clean".into()));
    }

    #[test]
    fn total_time_sums_stages() {
        let track = circle_track(3.0, 0.8);
        let mut cfg = quick_config(13);
        cfg.collection.duration_s = 30.0;
        cfg.train.epochs = 2;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 20.0;
        let report = Pipeline::new(track, cfg).run().expect("run succeeds");
        let sum: f64 = report.stages.iter().map(|s| s.duration.as_secs()).sum();
        assert!((report.total_time().as_secs() - sum).abs() < 1e-9);
        // A lesson is tens of minutes of simulated time, not hours.
        assert!(report.total_time().as_mins() > 10.0);
        assert!(report.total_time().as_hours() < 3.0);
    }

    #[test]
    fn fallback_chain_is_strictly_slower() {
        let eff = |g: GpuKind| g.peak_tflops() * g.sustained_fraction();
        for preferred in [GpuKind::V100, GpuKind::A100, GpuKind::K80] {
            let chain = fallback_chain(preferred);
            assert_eq!(chain[0], preferred);
            for pair in chain.windows(2) {
                assert!(
                    eff(pair[0]) > eff(pair[1]),
                    "{} !> {}",
                    pair[0],
                    pair[1]
                );
            }
        }
        // K80 is the floor: nothing to fall back to.
        assert_eq!(fallback_chain(GpuKind::K80).len(), 1);
    }

    #[test]
    fn retry_stage_respects_attempt_cap_and_deadline() {
        let policy = RetryPolicy::default();
        let mut log = RunLog::default();
        let err = retry_stage::<()>("doomed", &policy, 1, &mut log, |_| {
            Err(StageFault::Retryable {
                why: "always fails".into(),
                charged: SimDuration::from_secs(1.0),
            })
        })
        .unwrap_err();
        match err {
            PipelineError::StageFailed {
                stage, attempts, ..
            } => {
                assert_eq!(stage, "doomed");
                assert_eq!(attempts, policy.max_attempts);
            }
            other => panic!("expected StageFailed, got {other}"),
        }
        assert_eq!(log.attempts.len(), policy.max_attempts as usize);

        let tight = RetryPolicy::default().with_deadline(SimDuration::from_secs(0.5));
        let mut log = RunLog::default();
        let err = retry_stage::<()>("late", &tight, 1, &mut log, |_| {
            Err(StageFault::Retryable {
                why: "slow".into(),
                charged: SimDuration::from_secs(10.0),
            })
        })
        .unwrap_err();
        assert!(matches!(err, PipelineError::DeadlineExceeded { .. }));
    }
}
