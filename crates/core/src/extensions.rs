//! The extension assignments of §3.3 "Training Additional Models":
//! colour-based stop/go classification, edge-detection line following, and
//! GPS path following.

use autolearn_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use autolearn_nn::loss::{one_hot, softmax_rows, Loss};
use autolearn_nn::{Adam, Optimizer, Sequential, Tensor};
use autolearn_sim::{Controls, Observation, Pilot};
use autolearn_track::{Track, Vec2};
use autolearn_util::rng::derive_rng;
use autolearn_util::Image;
use rand::Rng;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Colour stop/go ("camera identifies color of object placed in front of it;
// red means stop, green means go").
// ---------------------------------------------------------------------------

/// Class labels for the traffic-signal exercise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Signal {
    Stop,
    Go,
    None,
}

impl Signal {
    pub fn index(self) -> usize {
        match self {
            Signal::Stop => 0,
            Signal::Go => 1,
            Signal::None => 2,
        }
    }

    pub fn from_index(i: usize) -> Signal {
        match i {
            0 => Signal::Stop,
            1 => Signal::Go,
            _ => Signal::None,
        }
    }
}

/// Synthesise a camera frame with a coloured object in front of the car.
pub fn signal_scene(signal: Signal, seed: u64) -> Image {
    let mut rng = derive_rng(seed, "signal-scene");
    let mut img = Image::new(32, 24, 3);
    // Grey floor background with noise.
    for px in img.data.iter_mut() {
        *px = 90 + rng.gen_range(0..30u8);
    }
    // Coloured blob for stop/go scenes.
    if signal != Signal::None {
        let (cx, cy) = (rng.gen_range(8..24i32), rng.gen_range(6..18i32));
        let r = rng.gen_range(3..6i32);
        let color = match signal {
            Signal::Stop => [200 + rng.gen_range(0..40u8), 20, 30],
            Signal::Go => [20, 180 + rng.gen_range(0..50u8), 40],
            Signal::None => unreachable!(),
        };
        for y in 0..24i32 {
            for x in 0..32i32 {
                if (x - cx).pow(2) + (y - cy).pow(2) <= r * r {
                    img.set_pixel(x as usize, y as usize, color);
                }
            }
        }
    }
    img
}

/// Colour features of a frame: per-channel mean and max. The max channel
/// separates a small saturated blob from the grey background even when the
/// blob barely moves the mean.
fn rgb_features(img: &Image) -> Tensor {
    let mut sums = [0.0f32; 3];
    let mut maxs = [0.0f32; 3];
    let px_count = (img.width * img.height) as f32;
    for y in 0..img.height {
        for x in 0..img.width {
            for c in 0..3 {
                let v = f32::from(img.get(x, y, c)) / 255.0;
                sums[c] += v;
                maxs[c] = maxs[c].max(v);
            }
        }
    }
    let mut features = Vec::with_capacity(6);
    features.extend(sums.map(|s| s / px_count));
    features.extend(maxs);
    Tensor::from_vec(&[1, 6], features)
}

/// A tiny colour classifier (colour features → 3 classes).
pub struct ColorClassifier {
    net: Sequential,
}

impl ColorClassifier {
    pub fn new(seed: u64) -> ColorClassifier {
        let mut rng = derive_rng(seed, "color-clf");
        ColorClassifier {
            net: Sequential::new()
                .push(Dense::new(6, 16, &mut rng))
                .push(ActivationLayer::new(Activation::Relu))
                .push(Dense::new(16, 3, &mut rng)),
        }
    }

    /// Train on synthetic scenes; returns final training accuracy.
    pub fn train(&mut self, samples: usize, epochs: usize, seed: u64) -> f64 {
        let mut rng = derive_rng(seed, "color-data");
        let scenes: Vec<(Tensor, usize)> = (0..samples)
            .map(|i| {
                let signal = Signal::from_index(rng.gen_range(0..3));
                (
                    rgb_features(&signal_scene(signal, seed ^ i as u64)),
                    signal.index(),
                )
            })
            .collect();
        let mut opt = Adam::new(5e-3);
        for _ in 0..epochs {
            for (x, label) in &scenes {
                let logits = self.net.forward(x, true);
                let target = one_hot(&[*label], 3);
                let (_, grad) = Loss::SoftmaxCrossEntropy.compute(&logits, &target);
                let _ = self.net.backward(&grad);
                let mut params = self.net.params_mut();
                opt.step(&mut params);
            }
        }
        let correct = scenes
            .iter()
            .filter(|(x, label)| self.classify_features(x).index() == *label)
            .count();
        correct as f64 / scenes.len() as f64
    }

    fn classify_features(&mut self, features: &Tensor) -> Signal {
        let logits = self.net.forward(features, false);
        Signal::from_index(softmax_rows(&logits).argmax_per_example()[0])
    }

    pub fn classify(&mut self, img: &Image) -> Signal {
        self.classify_features(&rgb_features(img))
    }

    /// The lesson's control rule: red stop, green go.
    pub fn controls_for(&mut self, img: &Image, cruise: Controls) -> Controls {
        match self.classify(img) {
            Signal::Stop => Controls::new(cruise.steering, 0.0),
            _ => cruise,
        }
    }
}

// ---------------------------------------------------------------------------
// Edge-detection line following ("camera used to identify the edge of the
// track or a center line and keep the car following that").
// ---------------------------------------------------------------------------

/// A purely visual pilot: no ground truth, classic CV. In the synthetic
/// camera's grayscale, asphalt (~70) is much darker than both the
/// off-track floor (~150) and the tape (~148), so the drivable region is
/// the dark band; steer toward its centroid in the lower half of the frame.
pub struct VisionLinePilot {
    pub steering_gain: f64,
    pub throttle: f64,
    /// Intensity threshold separating asphalt from everything else.
    pub dark_threshold: u8,
}

impl Default for VisionLinePilot {
    fn default() -> Self {
        VisionLinePilot {
            steering_gain: 2.2,
            throttle: 0.35,
            dark_threshold: 110,
        }
    }
}

impl Pilot for VisionLinePilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let img = obs.image;
        let gray = img.to_grayscale();
        let mut weighted = 0.0f64;
        let mut count = 0.0f64;
        // Lower half of the frame: the road immediately ahead.
        for y in gray.height / 2..gray.height {
            for x in 0..gray.width {
                if gray.get(x, y, 0) < self.dark_threshold {
                    weighted += x as f64;
                    count += 1.0;
                }
            }
        }
        if count < 4.0 {
            // Lost the road: slow straight creep (a student would stop).
            return Controls::new(0.0, 0.15);
        }
        let centroid = weighted / count / (gray.width as f64 - 1.0); // 0..1
        // Centroid right of centre (image x grows right) → steer right
        // (negative steering, since positive steering is left).
        let err = centroid - 0.5;
        Controls::new(-self.steering_gain * err, self.throttle)
    }

    fn name(&self) -> String {
        "vision-line".to_string()
    }
}

// ---------------------------------------------------------------------------
// Obstacle detection (§3.3: "obstacle detection" among the extension
// exercises): watch the road ahead for obstacle-coloured pixels and brake.
// ---------------------------------------------------------------------------

/// Wraps any pilot with a vision-based emergency brake: if the fraction of
/// obstacle-coloured pixels in the centre-bottom of the frame exceeds the
/// threshold, throttle goes to zero (and steering nudges around the
/// blockage).
pub struct ObstacleBrake<P: Pilot> {
    pub inner: P,
    /// Fraction of watched pixels that triggers the brake.
    pub trigger: f64,
    /// Steer offset applied while braking (swerve direction).
    pub swerve: f64,
}

impl<P: Pilot> ObstacleBrake<P> {
    pub fn new(inner: P) -> ObstacleBrake<P> {
        ObstacleBrake {
            inner,
            trigger: 0.02,
            swerve: 0.5,
        }
    }

    /// Fraction of obstacle-red pixels in the centre watch box.
    ///
    /// The watch box is the *vertical middle band* of the frame: with the
    /// camera's 20° down-pitch, the bottom rows only see ~0.1-0.3 m ahead
    /// (too late to brake), while the middle band covers ~0.3 m to a few
    /// meters — the braking-distance window.
    pub fn obstacle_fraction(img: &Image) -> f64 {
        let (y0, y1) = (img.height / 4, 3 * img.height / 4);
        let (x0, x1) = (img.width / 4, 3 * img.width / 4);
        let mut hits = 0usize;
        let mut total = 0usize;
        for y in y0..y1 {
            for x in x0..x1 {
                let hit = if img.channels == 3 {
                    let r = img.get(x, y, 0);
                    let g = img.get(x, y, 1);
                    let b = img.get(x, y, 2);
                    r > 150 && g < 90 && b < 90
                } else {
                    // Grayscale fallback: obstacle red ≈ 86 sits between
                    // asphalt (~70) and tape/off (~148).
                    (80..=95).contains(&img.get(x, y, 0))
                };
                if hit {
                    hits += 1;
                }
                total += 1;
            }
        }
        hits as f64 / total.max(1) as f64
    }
}

impl<P: Pilot> Pilot for ObstacleBrake<P> {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let base = self.inner.control(obs);
        let frac = Self::obstacle_fraction(obs.image);
        if frac > self.trigger {
            // Brake hard and begin to steer around.
            Controls::new(base.steering + self.swerve, 0.0)
        } else {
            base
        }
    }

    fn notify_reset(&mut self) {
        self.inner.notify_reset();
    }

    fn name(&self) -> String {
        format!("obstacle-brake({})", self.inner.name())
    }
}

// ---------------------------------------------------------------------------
// GPS path following ("record a path with GPS and have the car follow it").
// ---------------------------------------------------------------------------

/// Pure-pursuit follower over a recorded waypoint path. Ground truth plays
/// the role of the GPS fix (same information a GPS+IMU would give).
pub struct PurePursuitPilot {
    path: Vec<Vec2>,
    pub lookahead_m: f64,
    pub throttle: f64,
    track: Track,
}

impl PurePursuitPilot {
    /// `path` is the recorded GPS trace (must be a loop around `track`,
    /// which is used only to get the car's position fix from the ground
    /// truth station).
    pub fn new(path: Vec<Vec2>, track: Track) -> PurePursuitPilot {
        assert!(path.len() >= 8, "need a recorded path");
        PurePursuitPilot {
            path,
            lookahead_m: 0.6,
            throttle: 0.4,
            track,
        }
    }

    fn position_fix(&self, obs: &Observation<'_>) -> (Vec2, f64) {
        // GPS fix: reconstruct world pose from the ground-truth projection.
        let p = obs.ground_truth.expect("pure pursuit needs a GPS fix");
        let pos = self.track.offset_point(p.s, p.lateral);
        // Car heading = track tangent at s minus the reported error.
        let heading = self.track.heading_at(p.s) - p.heading;
        (pos, heading)
    }
}

impl Pilot for PurePursuitPilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let (pos, heading) = self.position_fix(obs);
        // Nearest path point, then walk forward to the lookahead.
        let mut idx = self
            .path
            .iter()
            .enumerate()
            .map(|(i, p)| (i, p.dist_sq(pos)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(0, |(i, _)| i);
        let mut travelled = 0.0;
        while travelled < self.lookahead_m {
            let next = (idx + 1) % self.path.len();
            travelled += self.path[idx].dist(self.path[next]);
            idx = next;
        }
        let target = self.path[idx];
        // Pure pursuit: steer proportional to the heading to the target.
        let to_target = target - pos;
        let angle_err = autolearn_track::geometry::wrap_angle(to_target.angle() - heading);
        Controls::new(1.8 * angle_err, self.throttle)
    }

    fn name(&self) -> String {
        "pure-pursuit".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
    use autolearn_track::circle_track;

    #[test]
    fn color_classifier_learns_stop_go() {
        let mut clf = ColorClassifier::new(3);
        let acc = clf.train(150, 30, 3);
        assert!(acc > 0.9, "training accuracy {acc}");
        // Fresh unseen scenes.
        let mut correct = 0;
        for i in 0..30 {
            let sig = Signal::from_index(i % 3);
            if clf.classify(&signal_scene(sig, 10_000 + i as u64)) == sig {
                correct += 1;
            }
        }
        assert!(correct >= 25, "held-out accuracy {correct}/30");
    }

    #[test]
    fn stop_signal_cuts_throttle() {
        let mut clf = ColorClassifier::new(4);
        clf.train(150, 30, 4);
        let cruise = Controls::new(0.1, 0.5);
        let stop = clf.controls_for(&signal_scene(Signal::Stop, 77), cruise);
        let go = clf.controls_for(&signal_scene(Signal::Go, 78), cruise);
        assert_eq!(stop.throttle, 0.0);
        assert_eq!(go.throttle, 0.5);
    }

    #[test]
    fn vision_pilot_follows_track_without_ground_truth() {
        let track = circle_track(3.0, 0.8);
        let mut sim = Simulation::new(
            track,
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = VisionLinePilot::default();
        let session = sim.run(&mut pilot, 30.0);
        assert!(
            session.autonomy() > 0.85,
            "vision autonomy {}",
            session.autonomy()
        );
        assert!(session.distance_m > 8.0, "moved {}", session.distance_m);
    }

    #[test]
    fn pure_pursuit_follows_recorded_path() {
        let track = circle_track(3.0, 0.8);
        // "Record a GPS path": the centerline sampled every ~0.3 m.
        let mut path = Vec::new();
        let mut s = 0.0;
        while s < track.length() {
            path.push(track.point_at(s));
            s += 0.3;
        }
        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = PurePursuitPilot::new(path, track);
        let session = sim.run(&mut pilot, 30.0);
        assert_eq!(session.crashes, 0);
        assert!(session.autonomy() > 0.95, "autonomy {}", session.autonomy());
        // Stays close to the recorded line.
        let mean_abs_lateral: f64 = session
            .frames
            .iter()
            .map(|f| f.proj.lateral.abs())
            .sum::<f64>()
            / session.frames.len() as f64;
        assert!(mean_abs_lateral < 0.15, "lateral {mean_abs_lateral}");
    }

    #[test]
    fn obstacle_brake_reduces_collisions() {
        use autolearn_sim::LinePilot;
        // RGB camera so the red obstacle is chromatically detectable.
        let cam = CameraConfig {
            width: 40,
            height: 30,
            channels: 3,
            ..Default::default()
        };
        let run = |braked: bool| {
            let track = circle_track(3.0, 0.8);
            let mut sim = Simulation::new(
                track,
                CarConfig::default(),
                cam.clone(),
                DriveConfig {
                    store_images: false,
                    ..Default::default()
                },
            );
            let start_s = sim.track.project(sim.vehicle.state.pos).s;
            sim.add_obstacle(sim.track.wrap_station(start_s + 4.0), 0.0, 0.15);
            let inner = LinePilot::new(autolearn_sim::LinePilotConfig {
                steering_jitter: 0.0,
                ..Default::default()
            });
            if braked {
                let mut pilot = ObstacleBrake::new(inner);
                sim.run(&mut pilot, 25.0).crashes
            } else {
                let mut pilot = inner;
                sim.run(&mut pilot, 25.0).crashes
            }
        };
        let blind = run(false);
        let sighted = run(true);
        assert!(blind > 0, "baseline must hit the obstacle");
        assert!(
            sighted < blind,
            "obstacle brake must help: {sighted} vs {blind} collisions"
        );
    }

    #[test]
    fn obstacle_fraction_detects_red_blob() {
        let mut img = Image::new(20, 20, 3);
        // Grey background.
        for px in img.data.iter_mut() {
            *px = 100;
        }
        assert_eq!(ObstacleBrake::<VisionLinePilot>::obstacle_fraction(&img), 0.0);
        // Red patch dead ahead (middle band of the frame).
        for y in 8..14 {
            for x in 8..12 {
                img.set_pixel(x, y, [210, 40, 30]);
            }
        }
        assert!(ObstacleBrake::<VisionLinePilot>::obstacle_fraction(&img) > 0.05);
    }

    #[test]
    fn signal_scenes_have_distinct_colors() {
        let stop = signal_scene(Signal::Stop, 1);
        let go = signal_scene(Signal::Go, 1);
        let none = signal_scene(Signal::None, 1);
        let red = |img: &Image| rgb_features(img).data()[0];
        let green = |img: &Image| rgb_features(img).data()[1];
        assert!(red(&stop) > red(&none));
        assert!(green(&go) > green(&none));
    }
}
