//! The educational materials themselves (§3.5, "Educational materials").
//!
//! *"The AutoLearn educational materials include documentation supporting
//! different roles and different settings. For directed learning, we
//! provide documentation for educators including course objectives,
//! explanations of what hardware to buy and alternatives, proposed project
//! extensions, and a one-page TA checklist. To support students, our
//! GitBook is documented with extensive comments ... Finally, we provide a
//! special documentation pathway for digital self-learners that contains a
//! combination of teacher's and student's documentation modules."*
//!
//! This module models that documentation set as structured data so the
//! pathways can be generated, validated, and (in the Trovi artifact)
//! published per audience.

use crate::pathway::LearningPathway;
use serde::{Deserialize, Serialize};

/// Who a document is written for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Audience {
    Educator,
    Student,
    SelfLearner,
}

/// One document in the materials set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    pub title: String,
    pub audience: Audience,
    pub sections: Vec<String>,
}

impl Document {
    fn new(title: &str, audience: Audience, sections: &[&str]) -> Document {
        Document {
            title: title.to_string(),
            audience,
            sections: sections.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// A checklist item with completion state (the "one-page TA checklist").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChecklistItem {
    pub task: String,
    pub done: bool,
}

/// The one-page TA checklist the paper ships for classroom sessions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaChecklist {
    pub items: Vec<ChecklistItem>,
}

impl TaChecklist {
    pub fn standard() -> TaChecklist {
        let tasks = [
            "verify Chameleon project allocation has service units",
            "advance-reserve GPU nodes for the class slot",
            "charge car batteries / check spares",
            "BYOD-register every car and confirm daemon heartbeat",
            "pre-pull the AutoLearn container image on each car",
            "lay out the tape track, measure line lengths",
            "stage sample datasets in the object store",
            "test the Jupyter SSH tunnel from a student laptop",
            "print the competition scoring sheet",
        ];
        TaChecklist {
            items: tasks
                .iter()
                .map(|t| ChecklistItem {
                    task: t.to_string(),
                    done: false,
                })
                .collect(),
        }
    }

    pub fn complete(&mut self, index: usize) {
        if let Some(item) = self.items.get_mut(index) {
            item.done = true;
        }
    }

    pub fn remaining(&self) -> usize {
        self.items.iter().filter(|i| !i.done).count()
    }

    pub fn ready_for_class(&self) -> bool {
        self.remaining() == 0
    }
}

/// The complete materials set.
pub struct Materials;

impl Materials {
    /// Every document in the package.
    pub fn documents() -> Vec<Document> {
        use Audience::*;
        vec![
            Document::new(
                "Course objectives and outcomes",
                Educator,
                &[
                    "learning outcomes (hardware, UNIX, cloud/edge, simulation, ML)",
                    "prerequisites",
                    "grading and competition rubric",
                ],
            ),
            Document::new(
                "Hardware purchase guide",
                Educator,
                &[
                    "recommended ~$200 car kits (Waveshare PiRacer and alternatives)",
                    "accessories and spares",
                    "track materials (orange tape, dimensions)",
                ],
            ),
            Document::new(
                "Proposed project extensions",
                Educator,
                &[
                    "model comparison competitions",
                    "GPS path following",
                    "obstacle detection",
                    "color stop/go classification",
                    "edge detection line following",
                    "edge vs cloud inference",
                    "reinforcement learning",
                    "digital twin modeling",
                ],
            ),
            Document::new(
                "TA checklist",
                Educator,
                &["see TaChecklist::standard()"],
            ),
            Document::new(
                "Car setup and driving guide",
                Student,
                &[
                    "assembling the kit",
                    "BYOD registration",
                    "launching the AutoLearn container",
                    "driving for data collection (joystick / web controller)",
                    "cleaning data with tubclean",
                ],
            ),
            Document::new(
                "Training in the cloud",
                Student,
                &[
                    "reserving a GPU node",
                    "deploying the CUDA image",
                    "rsync-ing your tub",
                    "choosing among the six models",
                    "reading training curves",
                ],
            ),
            Document::new(
                "Evaluation and competition",
                Student,
                &[
                    "deploying your model to the car",
                    "measuring speed and errors",
                    "the scoring formula",
                ],
            ),
            Document::new(
                "Self-learner pathway",
                SelfLearner,
                &[
                    "streamlined teacher+student combination",
                    "simulator-only setup (no hardware)",
                    "sample datasets",
                    "publishing your fork on Trovi",
                ],
            ),
        ]
    }

    /// Documents relevant to one audience.
    pub fn for_audience(audience: Audience) -> Vec<Document> {
        Self::documents()
            .into_iter()
            .filter(|d| d.audience == audience)
            .collect()
    }

    /// Which audience a pathway's primary documentation targets.
    pub fn audience_for_pathway(pathway: LearningPathway) -> Audience {
        match pathway {
            LearningPathway::Regular => Audience::Student,
            LearningPathway::Classroom => Audience::Educator,
            LearningPathway::Digital => Audience::SelfLearner,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_audience_has_documents() {
        for a in [Audience::Educator, Audience::Student, Audience::SelfLearner] {
            assert!(
                !Materials::for_audience(a).is_empty(),
                "no documents for {a:?}"
            );
        }
    }

    #[test]
    fn extensions_doc_lists_the_papers_extensions() {
        let docs = Materials::for_audience(Audience::Educator);
        let ext = docs
            .iter()
            .find(|d| d.title.contains("extensions"))
            .expect("extensions doc");
        for topic in [
            "GPS path following",
            "obstacle detection",
            "reinforcement learning",
            "digital twin",
        ] {
            assert!(
                ext.sections.iter().any(|s| s.contains(topic)),
                "missing extension {topic}"
            );
        }
    }

    #[test]
    fn ta_checklist_completes() {
        let mut cl = TaChecklist::standard();
        assert!(!cl.ready_for_class());
        let n = cl.items.len();
        for i in 0..n {
            cl.complete(i);
        }
        assert!(cl.ready_for_class());
        assert_eq!(cl.remaining(), 0);
        // Out-of-range completion is a no-op.
        cl.complete(999);
    }

    #[test]
    fn pathway_audience_mapping() {
        assert_eq!(
            Materials::audience_for_pathway(LearningPathway::Digital),
            Audience::SelfLearner
        );
        assert_eq!(
            Materials::audience_for_pathway(LearningPathway::Classroom),
            Audience::Educator
        );
    }
}
