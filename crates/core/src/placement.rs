//! Inference placement: in-situ vs in-the-cloud vs hybrid.
//!
//! §3.3's evaluation extensions ask students to "attempt to run inference
//! models in the cloud, constructing hybrid edge cloud inference models" —
//! the trade-off the Zheng SC'23 poster explores end to end. The physics is
//! simple and brutal: the drive loop runs at 20 Hz, and every millisecond
//! of perceive→act latency is distance travelled blind.
//!
//! * **Edge**: inference on the car's Pi. No network, but the Pi is slow,
//!   which caps the model size that holds 20 Hz.
//! * **Cloud**: every frame crosses the network to a GPU; inference is
//!   nearly free but the frame pays an RTT (+ jitter + retransmits).
//! * **Hybrid**: the frame goes to the cloud with a deadline; if the reply
//!   would miss it, the edge model's (already computed) answer is used.
//!   Latency is therefore `min(deadline, rtt)`-shaped but never worse than
//!   the edge path.

use autolearn_cloud::hardware::ComputeDevice;
use autolearn_cloud::perf::inference_latency;
use autolearn_net::Path;
use autolearn_util::Bytes;
use serde::{Deserialize, Serialize};

/// Where inference runs.
#[derive(Debug, Clone)]
pub enum InferencePlacement {
    Edge {
        device: ComputeDevice,
    },
    Cloud {
        gpu: ComputeDevice,
        path: Path,
        /// Camera frame bytes shipped per tick.
        frame_bytes: u64,
    },
    Hybrid {
        edge_device: ComputeDevice,
        gpu: ComputeDevice,
        path: Path,
        frame_bytes: u64,
        /// Cloud-reply deadline, s; replies later than this are dropped in
        /// favour of the edge answer.
        deadline_s: f64,
    },
}

/// Summary latency statistics for a placement at a given model size.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PlacementLatency {
    pub mean_s: f64,
    pub p95_s: f64,
    /// Fraction of ticks where the cloud reply made the deadline
    /// (1.0 for pure edge, by convention).
    pub cloud_hit_rate: f64,
}

impl InferencePlacement {
    pub fn name(&self) -> &'static str {
        match self {
            InferencePlacement::Edge { .. } => "edge",
            InferencePlacement::Cloud { .. } => "cloud",
            InferencePlacement::Hybrid { .. } => "hybrid",
        }
    }

    /// Monte-Carlo the per-tick perceive→act latency for a model with
    /// `edge_flops` / `cloud_flops` per inference (they differ when the
    /// hybrid runs a small edge model and a large cloud model).
    pub fn latency(
        &self,
        edge_flops: u64,
        cloud_flops: u64,
        samples: usize,
        seed: u64,
    ) -> PlacementLatency {
        match self {
            InferencePlacement::Edge { device } => {
                let l = inference_latency(edge_flops, device).as_secs();
                PlacementLatency {
                    mean_s: l,
                    p95_s: l,
                    cloud_hit_rate: 1.0,
                }
            }
            InferencePlacement::Cloud {
                gpu,
                path,
                frame_bytes,
            } => {
                let infer = inference_latency(cloud_flops, gpu).as_secs();
                let mut rtts = path.rtt_sampler(seed);
                let ser = (Bytes::new(*frame_bytes) / path.bottleneck_bandwidth()).as_secs();
                let lats: Vec<f64> = (0..samples)
                    .map(|_| rtts.sample().as_secs() + ser + infer)
                    .collect();
                summarise(&lats, 1.0)
            }
            InferencePlacement::Hybrid {
                edge_device,
                gpu,
                path,
                frame_bytes,
                deadline_s,
            } => {
                let edge_l = inference_latency(edge_flops, edge_device).as_secs();
                let cloud_infer = inference_latency(cloud_flops, gpu).as_secs();
                let ser = (Bytes::new(*frame_bytes) / path.bottleneck_bandwidth()).as_secs();
                let mut rtts = path.rtt_sampler(seed);
                let mut hits = 0usize;
                let lats: Vec<f64> = (0..samples)
                    .map(|_| {
                        let cloud_l = rtts.sample().as_secs() + ser + cloud_infer;
                        if cloud_l <= *deadline_s {
                            hits += 1;
                            cloud_l.max(edge_l)
                        } else {
                            // Fall back to the edge answer, which was ready
                            // at edge_l — the loop applies whatever answer
                            // is newest at actuation time.
                            edge_l
                        }
                    })
                    .collect();
                summarise(&lats, hits as f64 / samples as f64)
            }
        }
    }
}

fn summarise(lats: &[f64], cloud_hit_rate: f64) -> PlacementLatency {
    let mean = lats.iter().sum::<f64>() / lats.len() as f64;
    PlacementLatency {
        mean_s: mean,
        p95_s: autolearn_util::percentile(lats, 95.0),
        cloud_hit_rate,
    }
}

/// The maximum speed at which the closed loop can hold the lane, given the
/// total control latency and the track's tightest curvature. Derivation:
/// during one latency period the car travels blind; requiring the blind
/// arc's lateral drift to stay within half the lane margin gives
/// `v ≤ sqrt(margin / (k * T^2))`-shaped scaling; we use the standard
/// small-angle bound v = sqrt(2 * margin / (k * T²)) capped by the car's
/// top speed.
pub fn max_safe_speed(
    latency_s: f64,
    tick_s: f64,
    max_curvature: f64,
    lane_margin_m: f64,
    top_speed: f64,
) -> f64 {
    let t = latency_s + tick_s; // effective reaction time
    if t <= 0.0 || max_curvature <= 0.0 {
        return top_speed;
    }
    let v = (2.0 * lane_margin_m / (max_curvature * t * t)).sqrt();
    v.min(top_speed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_net::LinkPreset;

    fn pi() -> ComputeDevice {
        ComputeDevice::raspberry_pi4()
    }

    fn v100() -> ComputeDevice {
        ComputeDevice::of_gpu(autolearn_cloud::hardware::GpuKind::V100)
    }

    const SMALL: u64 = 2_000_000; // linear-ish model
    const LARGE: u64 = 100_000_000; // 3D-ish model

    #[test]
    fn edge_latency_is_deterministic_compute() {
        let p = InferencePlacement::Edge { device: pi() };
        let l = p.latency(SMALL, SMALL, 100, 1);
        assert_eq!(l.mean_s, l.p95_s);
        assert!(l.mean_s < 0.01, "small model on Pi: {}", l.mean_s);
        assert_eq!(l.cloud_hit_rate, 1.0);
    }

    #[test]
    fn cloud_pays_rtt_but_inference_is_free() {
        let edge = InferencePlacement::Edge { device: pi() };
        let cloud = InferencePlacement::Cloud {
            gpu: v100(),
            path: Path::car_to_cloud(),
            frame_bytes: 1200,
        };
        // Small model: edge wins (RTT dominates).
        let le = edge.latency(SMALL, SMALL, 500, 2);
        let lc = cloud.latency(SMALL, SMALL, 500, 2);
        assert!(lc.mean_s > le.mean_s, "cloud {} vs edge {}", lc.mean_s, le.mean_s);
        // Huge model: cloud wins (Pi compute dominates).
        let le_big = edge.latency(LARGE * 10, LARGE * 10, 500, 3);
        let lc_big = cloud.latency(LARGE * 10, LARGE * 10, 500, 3);
        assert!(lc_big.mean_s < le_big.mean_s);
    }

    #[test]
    fn hybrid_never_worse_than_edge_and_uses_cloud_when_fast() {
        let fast_path = Path::of_presets(&[LinkPreset::FabricManaged]);
        let hybrid = InferencePlacement::Hybrid {
            edge_device: pi(),
            gpu: v100(),
            path: fast_path,
            frame_bytes: 1200,
            deadline_s: 0.045,
        };
        let l = hybrid.latency(SMALL, LARGE, 500, 4);
        // On a fast managed link the cloud almost always makes the deadline.
        assert!(l.cloud_hit_rate > 0.95, "hit rate {}", l.cloud_hit_rate);
        assert!(l.p95_s <= 0.05);

        // On a lossy slow path, hybrid falls back to edge latency.
        let slow = InferencePlacement::Hybrid {
            edge_device: pi(),
            gpu: v100(),
            path: Path::new(vec![autolearn_net::Link {
                name: "awful".into(),
                latency_s: 0.2,
                bandwidth_bps: 1e6,
                jitter_s: 0.05,
                loss: 0.1,
            }]),
            frame_bytes: 1200,
            deadline_s: 0.045,
        };
        let ls = slow.latency(SMALL, LARGE, 500, 5);
        assert!(ls.cloud_hit_rate < 0.05);
        let edge_l = InferencePlacement::Edge { device: pi() }
            .latency(SMALL, SMALL, 1, 0)
            .mean_s;
        assert!((ls.mean_s - edge_l).abs() < 1e-6, "fallback must cost edge latency");
    }

    #[test]
    fn max_safe_speed_decreases_with_latency() {
        let k = 1.0; // 1 m bend
        let margin = 0.1;
        let v0 = max_safe_speed(0.0, 0.05, k, margin, 3.5);
        let v1 = max_safe_speed(0.3, 0.05, k, margin, 3.5);
        let v2 = max_safe_speed(0.6, 0.05, k, margin, 3.5);
        assert!(v0 > v1 && v1 > v2, "{v0} {v1} {v2}");
        // Zero curvature → top speed regardless of latency.
        assert_eq!(max_safe_speed(1.0, 0.05, 0.0, 0.3, 3.5), 3.5);
        // Tiny latency → capped at top speed.
        assert_eq!(max_safe_speed(0.0, 0.001, 0.1, 0.3, 3.5), 3.5);
    }

    #[test]
    fn crossover_exists_in_model_size() {
        // Sweep model size: edge beats cloud for small models, loses for
        // large — the poster's headline trade-off.
        let cloud = InferencePlacement::Cloud {
            gpu: v100(),
            path: Path::car_to_cloud(),
            frame_bytes: 1200,
        };
        let edge = InferencePlacement::Edge { device: pi() };
        let mut crossed = false;
        let mut prev_edge_wins = true;
        for flops in [1u64, 10, 100, 1000, 10_000].map(|m| m * 1_000_000) {
            let e = edge.latency(flops, flops, 200, 6).mean_s;
            let c = cloud.latency(flops, flops, 200, 6).mean_s;
            let edge_wins = e < c;
            if prev_edge_wins && !edge_wins {
                crossed = true;
            }
            prev_edge_wins = edge_wins;
        }
        assert!(crossed, "no edge→cloud crossover found in sweep");
    }
}
