//! Learning pathways and the competition scoring.
//!
//! §4: the module "can be followed in three different pathways, i.e.
//! regular, classroom, and digital path, based on student's interests,
//! background or goals"; §3.4 describes how each phase offers alternatives
//! (sample data vs collecting, car vs simulator). §3.3 suggests students
//! "compete to train models yielding a combination of fastest speed with
//! fewest errors".

use serde::{Deserialize, Serialize};

/// The three documented pathways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LearningPathway {
    /// Self-paced with a physical car.
    Regular,
    /// Instructor-led course: cars shared via CHI@Edge, cloud reserved for
    /// the class slot.
    Classroom,
    /// Fully digital: simulator + sample datasets, no hardware at all.
    Digital,
}

/// Which of Fig. 1's three component groups a stage belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Component {
    Artifacts,
    Computation,
    Extensions,
}

/// One stage of a pathway.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModuleStage {
    pub name: String,
    pub component: Component,
    pub requires_car: bool,
    pub requires_cloud: bool,
}

impl ModuleStage {
    fn new(name: &str, component: Component, car: bool, cloud: bool) -> ModuleStage {
        ModuleStage {
            name: name.to_string(),
            component,
            requires_car: car,
            requires_cloud: cloud,
        }
    }
}

impl LearningPathway {
    pub fn all() -> [LearningPathway; 3] {
        [
            LearningPathway::Regular,
            LearningPathway::Classroom,
            LearningPathway::Digital,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            LearningPathway::Regular => "regular",
            LearningPathway::Classroom => "classroom",
            LearningPathway::Digital => "digital",
        }
    }

    /// The stages of this pathway, in order.
    pub fn stages(self) -> Vec<ModuleStage> {
        use Component::*;
        match self {
            LearningPathway::Regular => vec![
                ModuleStage::new("assemble car kit", Artifacts, true, false),
                ModuleStage::new("BYOD-register the car", Artifacts, true, true),
                ModuleStage::new("drive + collect data", Computation, true, false),
                ModuleStage::new("tubclean review", Computation, false, false),
                ModuleStage::new("reserve GPU + train", Computation, false, true),
                ModuleStage::new("deploy + evaluate on car", Computation, true, true),
                ModuleStage::new("extension project", Extensions, true, true),
            ],
            LearningPathway::Classroom => vec![
                ModuleStage::new("instructor reserves class slot", Artifacts, false, true),
                ModuleStage::new("teams drive shared cars", Computation, true, false),
                ModuleStage::new("tubclean review", Computation, false, false),
                ModuleStage::new("train on reserved nodes", Computation, false, true),
                ModuleStage::new("evaluation race", Computation, true, false),
                ModuleStage::new("competition scoring", Extensions, false, false),
            ],
            LearningPathway::Digital => vec![
                ModuleStage::new("launch Trovi artifact", Artifacts, false, true),
                ModuleStage::new("sample dataset or simulator", Computation, false, false),
                ModuleStage::new("train (cloud or laptop)", Computation, false, false),
                ModuleStage::new("evaluate in simulator", Computation, false, false),
                ModuleStage::new("digital-twin exploration", Extensions, false, false),
            ],
        }
    }

    /// §3.4: "using available datasets and a simulator does not require a
    /// car".
    pub fn requires_car(self) -> bool {
        self.stages().iter().any(|s| s.requires_car)
    }
}

/// Competition score: "fastest speed with fewest errors". Speed counts only
/// inasmuch as the car stayed in control — autonomy squared discounts
/// off-track driving, and each error (crash or excursion) costs dearly.
pub fn competition_score(mean_speed: f64, autonomy: f64, errors_per_lap: f64) -> f64 {
    mean_speed * autonomy.clamp(0.0, 1.0).powi(2) / (1.0 + errors_per_lap)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digital_path_needs_no_car() {
        assert!(!LearningPathway::Digital.requires_car());
        assert!(LearningPathway::Regular.requires_car());
        assert!(LearningPathway::Classroom.requires_car());
    }

    #[test]
    fn all_pathways_cover_all_components() {
        for p in LearningPathway::all() {
            let stages = p.stages();
            assert!(stages.iter().any(|s| s.component == Component::Artifacts));
            assert!(stages.iter().any(|s| s.component == Component::Computation));
            assert!(
                stages.iter().any(|s| s.component == Component::Extensions),
                "{} lacks extensions",
                p.name()
            );
        }
    }

    #[test]
    fn classroom_uses_cloud_reservation_first() {
        let stages = LearningPathway::Classroom.stages();
        assert!(stages[0].requires_cloud);
        assert!(stages[0].name.contains("reserves"));
    }

    #[test]
    fn score_rewards_speed_and_punishes_errors() {
        // Fast but sloppy loses to slightly slower but clean.
        let sloppy = competition_score(2.5, 0.85, 3.0);
        let clean = competition_score(2.0, 1.0, 0.0);
        assert!(clean > sloppy, "clean {clean} vs sloppy {sloppy}");
        // All else equal, faster wins.
        assert!(competition_score(2.2, 1.0, 0.0) > competition_score(2.0, 1.0, 0.0));
        // Zero autonomy zeroes the score.
        assert_eq!(competition_score(3.0, 0.0, 0.0), 0.0);
    }

    #[test]
    fn pathway_names() {
        assert_eq!(LearningPathway::all().len(), 3);
        assert_eq!(LearningPathway::Digital.name(), "digital");
    }
}
