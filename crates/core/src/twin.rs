//! Digital-twin comparison.
//!
//! §3.3/§3.4: *"combining the simulator and real-life validation can lead
//! to interesting exploration of digital twin modeling"* — run the same
//! trained model in the clean simulator and on the noisy "real" car, and
//! quantify how well the twin predicts reality.

use crate::modelpilot::ModelPilot;
use autolearn_nn::models::{CarModel, SavedModel};
use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, SessionResult, Simulation};
use autolearn_track::Track;
use serde::{Deserialize, Serialize};

/// Twin-fidelity metrics for one model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TwinReport {
    pub sim_autonomy: f64,
    pub real_autonomy: f64,
    pub sim_mean_speed: f64,
    pub real_mean_speed: f64,
    pub sim_laps: usize,
    pub real_laps: usize,
    /// Mean absolute difference between the sim and real lateral-offset
    /// traces, sampled by tick (m). The twin gap.
    pub lateral_divergence_m: f64,
}

impl TwinReport {
    /// Relative speed error of the twin's prediction.
    pub fn speed_gap(&self) -> f64 {
        if self.real_mean_speed.abs() < 1e-9 {
            return 0.0;
        }
        (self.sim_mean_speed - self.real_mean_speed).abs() / self.real_mean_speed
    }
}

fn lateral_trace(session: &SessionResult) -> Vec<f64> {
    session.frames.iter().map(|f| f.proj.lateral).collect()
}

/// Run `model` in both worlds on `track` and compare.
pub fn twin_compare(model: &mut CarModel, track: &Track, duration_s: f64, seed: u64) -> TwinReport {
    let snapshot = SavedModel::capture(model);

    let run = |car: CarConfig, camera: CameraConfig| -> SessionResult {
        let mut sim = Simulation::new(
            track.clone(),
            car,
            camera,
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = ModelPilot::new(snapshot.restore());
        sim.run(&mut pilot, duration_s)
    };

    let sim_session = run(CarConfig::default(), CameraConfig::small());
    let real_session = run(
        CarConfig::real_car(seed),
        CameraConfig::small().with_noise(6.0, seed),
    );

    let a = lateral_trace(&sim_session);
    let b = lateral_trace(&real_session);
    let n = a.len().min(b.len());
    let lateral_divergence_m = if n == 0 {
        0.0
    } else {
        (0..n).map(|i| (a[i] - b[i]).abs()).sum::<f64>() / n as f64
    };

    TwinReport {
        sim_autonomy: sim_session.autonomy(),
        real_autonomy: real_session.autonomy(),
        sim_mean_speed: sim_session.mean_speed(),
        real_mean_speed: real_session.mean_speed(),
        sim_laps: sim_session.completed_laps(),
        real_laps: real_session.completed_laps(),
        lateral_divergence_m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_session, CollectConfig, CollectionPath};
    use crate::dataset::records_to_dataset;
    use autolearn_nn::models::{prepare_dataset, DonkeyModel, ModelConfig, ModelKind};
    use autolearn_nn::{TrainConfig, Trainer};
    use autolearn_track::circle_track;

    fn trained_model(track: &Track, seed: u64) -> CarModel {
        let cfg = ModelConfig {
            height: 30,
            width: 40,
            channels: 1,
            seed,
            ..Default::default()
        };
        let mut model = CarModel::build(ModelKind::Linear, &cfg);
        let collected = collect_session(
            track,
            &CollectConfig::new(CollectionPath::Simulator, 60.0, seed),
        );
        let data = prepare_dataset(
            &records_to_dataset(&collected.records, &cfg),
            model.input_spec(),
        );
        Trainer::new(TrainConfig {
            epochs: 6,
            batch_size: 32,
            seed,
            ..Default::default()
        })
        .fit(&mut model, &data)
        .expect("zoo graph validates");
        model
    }

    #[test]
    fn twin_runs_and_reports_gap() {
        let track = circle_track(3.0, 0.8);
        let mut model = trained_model(&track, 21);
        let report = twin_compare(&mut model, &track, 30.0, 21);

        // The sim-trained model should drive the clean sim well.
        assert!(report.sim_autonomy > 0.9, "sim autonomy {}", report.sim_autonomy);
        // The noisy world is never *better* behaved than the clean twin by
        // a wide margin, and a twin gap exists.
        assert!(report.lateral_divergence_m > 0.0);
        assert!(
            report.lateral_divergence_m < 1.0,
            "divergence {} suspiciously large",
            report.lateral_divergence_m
        );
        assert!(report.speed_gap() < 0.5);
    }

    #[test]
    fn twin_of_identical_worlds_is_exact() {
        // Sanity: comparing the clean sim against itself (seed noise off)
        // would give zero divergence; we approximate by checking the twin
        // gap exceeds the self-gap.
        let track = circle_track(3.0, 0.8);
        let mut model = trained_model(&track, 22);
        let snapshot = SavedModel::capture(&mut model);
        let run = || {
            let mut sim = Simulation::new(
                track.clone(),
                CarConfig::default(),
                CameraConfig::small(),
                DriveConfig {
                    store_images: false,
                    ..Default::default()
                },
            );
            let mut pilot = ModelPilot::new(snapshot.restore());
            lateral_trace(&sim.run(&mut pilot, 10.0))
        };
        let (a, b) = (run(), run());
        let self_gap: f64 =
            a.iter().zip(&b).map(|(x, y)| (x - y).abs()).sum::<f64>() / a.len() as f64;
        assert!(self_gap < 1e-12, "clean sim must be deterministic");
    }
}
