//! Driving the car with a trained model.

use crate::dataset::image_to_input;
use autolearn_nn::models::{CarModel, DonkeyModel, InputSpec};
use autolearn_nn::Tensor;
use autolearn_sim::{Controls, Observation, Pilot};
use std::collections::VecDeque;

/// A [`Pilot`] backed by a trained [`CarModel`]. Maintains the frame and
/// control history that sequence/memory models require, and ignores the
/// ground truth entirely — it drives by camera, like the real car.
pub struct ModelPilot {
    model: CarModel,
    frame_history: VecDeque<Tensor>,
    control_history: VecDeque<(f32, f32)>,
}

impl ModelPilot {
    pub fn new(model: CarModel) -> ModelPilot {
        ModelPilot {
            model,
            frame_history: VecDeque::new(),
            control_history: VecDeque::new(),
        }
    }

    pub fn model(&self) -> &CarModel {
        &self.model
    }

    pub fn model_mut(&mut self) -> &mut CarModel {
        &mut self.model
    }

    /// Recover the model (e.g. to save it after evaluation).
    pub fn into_model(self) -> CarModel {
        self.model
    }

    /// Build the model inputs for the current frame, given its history
    /// requirements. Returns `None` while the frame history is still
    /// filling (the car coasts for the first few ticks).
    fn build_inputs(&mut self, frame: Tensor) -> Option<Vec<Tensor>> {
        match self.model.input_spec() {
            InputSpec::Frames => Some(vec![Tensor::stack(&[frame])]),
            InputSpec::Sequence(t) => {
                self.frame_history.push_back(frame);
                while self.frame_history.len() > t {
                    self.frame_history.pop_front();
                }
                if self.frame_history.len() < t {
                    return None;
                }
                let frames: Vec<Tensor> = self.frame_history.iter().cloned().collect();
                // [T, C, H, W] → add batch axis.
                let seq = Tensor::stack(&frames);
                let mut shape = vec![1];
                shape.extend_from_slice(seq.shape());
                Some(vec![seq.reshape(&shape)])
            }
            InputSpec::FramesWithHistory(m) => {
                let mut hist = vec![0.0f32; 2 * m];
                for (k, &(s, t)) in self.control_history.iter().rev().enumerate().take(m) {
                    hist[2 * k] = s;
                    hist[2 * k + 1] = t;
                }
                Some(vec![
                    Tensor::stack(&[frame]),
                    Tensor::from_vec(&[1, 2 * m], hist),
                ])
            }
        }
    }
}

impl Pilot for ModelPilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let frame = image_to_input(obs.image, self.model.config());
        let Some(inputs) = self.build_inputs(frame) else {
            // History still filling: creep forward gently.
            return Controls::new(0.0, 0.25);
        };
        let (steering, throttle) = self.model.predict(&inputs)[0];
        self.control_history.push_back((steering, throttle));
        while self.control_history.len() > 16 {
            self.control_history.pop_front();
        }
        Controls::new(f64::from(steering), f64::from(throttle))
    }

    fn notify_reset(&mut self) {
        self.frame_history.clear();
        self.control_history.clear();
    }

    fn name(&self) -> String {
        format!("model-pilot({})", self.model.kind())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_nn::models::{ModelConfig, ModelKind};
    use autolearn_util::Image;

    fn cfg() -> ModelConfig {
        ModelConfig {
            height: 30,
            width: 40,
            channels: 1,
            seq_len: 3,
            history: 2,
            dropout: 0.0,
            ..Default::default()
        }
    }

    fn obs(img: &Image) -> Observation<'_> {
        Observation {
            image: img,
            measured_speed: 1.0,
            last_controls: Controls::COAST,
            ground_truth: None,
            t: 0.0,
        }
    }

    #[test]
    fn frame_models_drive_immediately() {
        let mut pilot = ModelPilot::new(CarModel::build(ModelKind::Linear, &cfg()));
        let img = Image::new(40, 30, 1);
        let c = pilot.control(&obs(&img));
        assert!((-1.0..=1.0).contains(&c.steering));
        assert!((0.0..=1.0).contains(&c.throttle));
    }

    #[test]
    fn sequence_models_coast_until_history_fills() {
        let mut pilot = ModelPilot::new(CarModel::build(ModelKind::Rnn, &cfg()));
        let img = Image::new(40, 30, 1);
        // First two ticks: creep.
        let c1 = pilot.control(&obs(&img));
        let c2 = pilot.control(&obs(&img));
        assert_eq!((c1.steering, c1.throttle), (0.0, 0.25));
        assert_eq!((c2.steering, c2.throttle), (0.0, 0.25));
        // Third tick: the model drives.
        let c3 = pilot.control(&obs(&img));
        assert!(c3.throttle != 0.25 || c3.steering != 0.0);
    }

    #[test]
    fn memory_model_uses_control_history() {
        let mut pilot = ModelPilot::new(CarModel::build(ModelKind::Memory, &cfg()));
        let img = Image::new(40, 30, 1);
        let first = pilot.control(&obs(&img));
        // Second call has non-zero history; output may differ even for the
        // same frame (weights couple history into the features).
        let second = pilot.control(&obs(&img));
        // At minimum it must stay in range and not panic.
        assert!((-1.0..=1.0).contains(&second.steering));
        let _ = first;
    }

    #[test]
    fn reset_clears_history() {
        let mut pilot = ModelPilot::new(CarModel::build(ModelKind::Rnn, &cfg()));
        let img = Image::new(40, 30, 1);
        for _ in 0..3 {
            let _ = pilot.control(&obs(&img));
        }
        pilot.notify_reset();
        let c = pilot.control(&obs(&img));
        assert_eq!((c.steering, c.throttle), (0.0, 0.25), "must refill history");
    }

    #[test]
    fn threed_pilot_drives_after_warmup() {
        let mut pilot = ModelPilot::new(CarModel::build(ModelKind::ThreeD, &cfg()));
        let img = Image::new(40, 30, 1);
        let mut last = Controls::COAST;
        for _ in 0..4 {
            last = pilot.control(&obs(&img));
        }
        assert!((0.0..=1.0).contains(&last.throttle));
    }
}
