//! Tub records → training tensors.

use autolearn_nn::models::ModelConfig;
use autolearn_nn::{Dataset, Tensor};
use autolearn_tub::Record;
use autolearn_util::{Bytes, Image};

/// Convert an image to the `[C, H, W]` f32 tensor a model expects,
/// resizing and collapsing channels as needed.
pub fn image_to_input(image: &Image, cfg: &ModelConfig) -> Tensor {
    let img = if cfg.channels == 1 && image.channels != 1 {
        image.to_grayscale()
    } else {
        image.clone()
    };
    let img = if img.width != cfg.width || img.height != cfg.height {
        img.resize(cfg.width, cfg.height)
    } else {
        img
    };
    // HWC u8 → CHW f32 in [0, 1].
    let mut data = vec![0.0f32; cfg.channels * cfg.height * cfg.width];
    for y in 0..cfg.height {
        for x in 0..cfg.width {
            for c in 0..cfg.channels {
                data[c * cfg.height * cfg.width + y * cfg.width + x] =
                    f32::from(img.get(x, y, c)) / 255.0;
            }
        }
    }
    Tensor::from_vec(&[cfg.channels, cfg.height, cfg.width], data)
}

/// Build a supervised frame dataset from tub records (records without an
/// image are skipped). Use `autolearn_nn::models::prepare_dataset` to adapt
/// the result to sequence/memory models.
pub fn records_to_dataset(records: &[Record], cfg: &ModelConfig) -> Dataset {
    let mut frames = Vec::with_capacity(records.len());
    let mut steering = Vec::with_capacity(records.len());
    let mut throttle = Vec::with_capacity(records.len());
    for r in records {
        if let Some(img) = &r.image {
            frames.push(image_to_input(img, cfg));
            steering.push(r.steering);
            throttle.push(r.throttle);
        }
    }
    assert!(!frames.is_empty(), "no records with images");
    Dataset::new(Tensor::stack(&frames), steering, throttle)
}

/// Mirror augmentation: append a horizontally-flipped copy of every record
/// with the steering sign negated (throttle unchanged). Doubles the
/// dataset and symmetrises the steering distribution — the standard
/// DonkeyCar trick for ovals driven in one direction.
pub fn mirror_augment(records: &[Record]) -> Vec<Record> {
    let mut out = Vec::with_capacity(records.len() * 2);
    out.extend_from_slice(records);
    let base_id = records.iter().map(|r| r.id).max().map_or(0, |m| m + 1);
    for (k, r) in records.iter().enumerate() {
        let mut m = r.clone();
        m.id = base_id + k as u64;
        m.steering = -r.steering;
        m.image = r.image.as_ref().map(|img| img.flip_horizontal());
        out.push(m);
    }
    out
}

/// Approximate on-disk size of a tub with these records, for the network
/// transfer model: raw image bytes + ~150 B of catalog JSON per record.
pub fn tub_bytes_estimate(records: &[Record]) -> Bytes {
    records
        .iter()
        .map(|r| {
            Bytes::new(
                150 + r
                    .image
                    .as_ref()
                    .map(|i| i.len() as u64 + 12)
                    .unwrap_or(0),
            )
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_with_gradient(id: u64, w: usize, h: usize, c: usize) -> Record {
        let mut img = Image::new(w, h, c);
        for y in 0..h {
            for x in 0..w {
                for ch in 0..c {
                    img.set(x, y, ch, ((x * 255) / w.max(1)) as u8);
                }
            }
        }
        Record::new(id, 0.1, 0.5, id * 50, img)
    }

    fn cfg() -> ModelConfig {
        ModelConfig {
            height: 30,
            width: 40,
            channels: 1,
            ..Default::default()
        }
    }

    #[test]
    fn image_conversion_shape_and_range() {
        let r = record_with_gradient(0, 40, 30, 1);
        let t = image_to_input(r.image.as_ref().unwrap(), &cfg());
        assert_eq!(t.shape(), &[1, 30, 40]);
        assert!(t.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        // Left column dark, right column bright.
        assert!(t.data()[0] < t.data()[39]);
    }

    #[test]
    fn rgb_downscales_to_gray_config() {
        let r = record_with_gradient(0, 160, 120, 3);
        let t = image_to_input(r.image.as_ref().unwrap(), &cfg());
        assert_eq!(t.shape(), &[1, 30, 40]);
    }

    #[test]
    fn dataset_aligns_targets() {
        let records: Vec<Record> = (0..10).map(|i| record_with_gradient(i, 40, 30, 1)).collect();
        let d = records_to_dataset(&records, &cfg());
        assert_eq!(d.len(), 10);
        assert_eq!(d.inputs()[0].shape(), &[10, 1, 30, 40]);
        assert!((d.steering()[3] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn records_without_images_skipped() {
        let mut records: Vec<Record> =
            (0..5).map(|i| record_with_gradient(i, 40, 30, 1)).collect();
        records[2].image = None;
        let d = records_to_dataset(&records, &cfg());
        assert_eq!(d.len(), 4);
    }

    #[test]
    fn mirror_augment_doubles_and_negates() {
        let records: Vec<Record> = (0..5)
            .map(|i| {
                let mut r = record_with_gradient(i, 8, 6, 1);
                r.steering = 0.1 * (i as f32 + 1.0);
                r
            })
            .collect();
        let aug = mirror_augment(&records);
        assert_eq!(aug.len(), 10);
        // Ids stay unique.
        let mut ids: Vec<u64> = aug.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 10);
        // Mirrored half negates steering and flips the image.
        for k in 0..5 {
            assert_eq!(aug[5 + k].steering, -records[k].steering);
            assert_eq!(aug[5 + k].throttle, records[k].throttle);
            let orig = records[k].image.as_ref().unwrap();
            let flip = aug[5 + k].image.as_ref().unwrap();
            assert_eq!(flip.get(0, 0, 0), orig.get(7, 0, 0));
        }
        // Steering now symmetric: mean zero (up to f32 summation error).
        let mean: f32 = aug.iter().map(|r| r.steering).sum::<f32>() / 10.0;
        assert!(mean.abs() < 1e-7, "mean {mean}");
    }

    #[test]
    fn mirror_augment_of_empty_is_empty() {
        assert!(mirror_augment(&[]).is_empty());
    }

    #[test]
    fn byte_estimate_scales_with_resolution() {
        let small: Vec<Record> = (0..10).map(|i| record_with_gradient(i, 40, 30, 1)).collect();
        let large: Vec<Record> = (0..10).map(|i| record_with_gradient(i, 160, 120, 3)).collect();
        assert!(tub_bytes_estimate(&large) > tub_bytes_estimate(&small) * 10);
        // 40x30x1 + 12 + 150 = 1362 per record.
        assert_eq!(tub_bytes_estimate(&small), Bytes::new(10 * 1362));
    }
}
