//! AutoLearn: the edge-to-cloud educational module.
//!
//! This crate is the paper's primary contribution — the module that wires
//! the substrates (`autolearn-{track,sim,tub,nn,cloud,edge,net,trovi}`)
//! into the complete learning loop of Fig. 1:
//!
//! ```text
//!   collect (sample / simulator / physical car)   [collect]
//!     → clean (tubclean)                          [collect]
//!     → train in the cloud (reserve → provision → rsync → train)
//!                                                 [pipeline]
//!     → evaluate on the car (autonomous laps)     [pipeline, modelpilot]
//! ```
//!
//! plus the extension modules §3.3/§3.4 recommend to students:
//!
//! * [`placement`] — in-situ vs in-the-cloud vs hybrid inference (the
//!   Zheng SC'23 poster experiment), analytically,
//! * [`remotepilot`] — the same trade-off as an actual dataflow inside the
//!   drive loop (in-flight requests, stale-reply fallback),
//! * [`twin`] — digital-twin comparison between the clean simulator and
//!   the noisy "real" car,
//! * [`rl`] — reinforcement learning on the simulator (REINFORCE),
//! * [`extensions`] — color stop/go detection, edge-detection line
//!   following, GPS path following, obstacle-detection braking,
//! * [`pathway`] — the regular / classroom / digital learning pathways and
//!   the student-competition scoring ("fastest speed with fewest errors"),
//! * [`materials`] — the per-audience documentation set and TA checklist,
//! * [`lesson`] — a Trovi-launched digital lesson executed end to end
//!   (cells counted exactly as §5's metrics count them).

pub mod collect;
pub mod dataset;
pub mod extensions;
pub mod lesson;
pub mod materials;
pub mod modelpilot;
pub mod pathway;
pub mod pipeline;
pub mod placement;
pub mod remotepilot;
pub mod rl;
pub mod twin;

pub use collect::{collect_session, sample_dataset, CollectConfig, CollectionPath};
pub use dataset::{mirror_augment, records_to_dataset, tub_bytes_estimate};
pub use modelpilot::ModelPilot;
pub use pathway::{competition_score, LearningPathway, ModuleStage};
pub use pipeline::{
    AttemptRecord, Pipeline, PipelineConfig, PipelineError, PipelineReport, RunLog, StageTiming,
};
pub use placement::{InferencePlacement, PlacementLatency};
pub use remotepilot::{RemoteInferencePilot, RemoteStats};
pub use twin::{twin_compare, TwinReport};
