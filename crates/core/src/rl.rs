//! Reinforcement-learning extension (§3.3/§3.4: "experiment with
//! reinforcement learning providing the opportunity for more advanced
//! assignments").
//!
//! A REINFORCE policy gradient on the simulator: the policy is a small
//! network over oracle track features (lateral offset, heading error,
//! curvature, speed) emitting a Gaussian steering mean; throttle is fixed.
//! Reward per tick is forward progress minus off-track/crash penalties.

use autolearn_nn::layers::{Activation, ActivationLayer, Dense, Layer};
use autolearn_nn::{Adam, Optimizer, Sequential, Tensor};
use autolearn_sim::{CameraConfig, CarConfig, Controls, DriveConfig, Observation, Pilot, Simulation};
use autolearn_track::Track;
use autolearn_util::rng::derive_rng;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// RL hyper-parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlConfig {
    pub episodes: usize,
    pub episode_s: f64,
    pub learning_rate: f32,
    /// Exploration std-dev of the Gaussian steering policy.
    pub sigma: f32,
    /// Reward discount.
    pub gamma: f64,
    pub throttle: f64,
    pub seed: u64,
}

impl Default for RlConfig {
    fn default() -> Self {
        RlConfig {
            episodes: 30,
            episode_s: 20.0,
            learning_rate: 3e-3,
            sigma: 0.25,
            gamma: 0.98,
            throttle: 0.45,
            seed: 0,
        }
    }
}

/// The steering policy network: 4 features → tanh mean in [-1, 1].
pub struct Policy {
    net: Sequential,
}

impl Policy {
    pub fn new(seed: u64) -> Policy {
        let mut rng = derive_rng(seed, "rl-policy");
        let net = Sequential::new()
            .push(Dense::new(4, 16, &mut rng))
            .push(ActivationLayer::new(Activation::Tanh))
            .push(Dense::new(16, 1, &mut rng))
            .push(ActivationLayer::new(Activation::Tanh));
        Policy { net }
    }

    fn features(obs: &Observation<'_>) -> Tensor {
        let p = obs.ground_truth.expect("RL uses oracle features");
        Tensor::from_vec(
            &[1, 4],
            vec![
                p.lateral as f32,
                p.heading as f32, // pre-subtracted heading error
                p.curvature as f32,
                obs.measured_speed as f32 / 3.5,
            ],
        )
    }

    pub fn mean(&mut self, features: &Tensor) -> f32 {
        self.net.forward(features, false).data()[0]
    }
}

/// One step of an episode trace.
struct Step {
    features: Tensor,
    action: f32,
    reward: f64,
}

/// A pilot that samples from the policy and records the trace.
struct RlPilot<'a> {
    policy: &'a mut Policy,
    sigma: f32,
    throttle: f64,
    rng: StdRng,
    trace: Vec<Step>,
    last_off: bool,
}

impl Pilot for RlPilot<'_> {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        let features = Policy::features(obs);
        let mean = self.policy.mean(&features);
        // Box–Muller sample around the mean.
        let u1: f32 = self.rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.rng.gen_range(0.0..1.0);
        let noise = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        let action = (mean + self.sigma * noise).clamp(-1.0, 1.0);

        // Reward for the *previous* action lands one tick late; the runner
        // fixes rewards up from the session result instead, so here we only
        // store the decision.
        self.trace.push(Step {
            features,
            action,
            reward: 0.0,
        });
        self.last_off = obs.ground_truth.map(|p| !p.on_track).unwrap_or(false);
        Controls::new(f64::from(action), self.throttle)
    }

    fn name(&self) -> String {
        "reinforce".to_string()
    }
}

/// Training report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RlReport {
    /// Undiscounted return per episode.
    pub returns: Vec<f64>,
    pub crashes_per_episode: Vec<usize>,
}

impl RlReport {
    pub fn mean_return_first(&self, n: usize) -> f64 {
        mean(&self.returns[..n.min(self.returns.len())])
    }

    pub fn mean_return_last(&self, n: usize) -> f64 {
        let len = self.returns.len();
        mean(&self.returns[len.saturating_sub(n)..])
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Train a steering policy with REINFORCE on `track`.
pub fn train_reinforce(track: &Track, cfg: &RlConfig, policy: &mut Policy) -> RlReport {
    let mut opt = Adam::new(cfg.learning_rate);
    let mut returns = Vec::with_capacity(cfg.episodes);
    let mut crashes = Vec::with_capacity(cfg.episodes);
    let dt = 1.0 / 20.0;

    for episode in 0..cfg.episodes {
        let mut sim = Simulation::new(
            track.clone(),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let mut pilot = RlPilot {
            policy,
            sigma: cfg.sigma,
            throttle: cfg.throttle,
            rng: derive_rng(cfg.seed, &format!("episode-{episode}")),
            trace: Vec::new(),
            last_off: false,
        };
        let session = sim.run(&mut pilot, cfg.episode_s);
        let mut trace = pilot.trace;

        // Per-tick rewards from the session: progress minus penalties.
        for (step, frame) in trace.iter_mut().zip(&session.frames) {
            let mut r = frame.state.speed * dt;
            if frame.off_track {
                r -= 0.25;
            }
            if frame.crashed {
                r -= 3.0;
            }
            step.reward = r;
        }
        let ep_return: f64 = trace.iter().map(|s| s.reward).sum();
        returns.push(ep_return);
        crashes.push(session.crashes);

        // Reward-to-go with baseline.
        let mut g = 0.0f64;
        let mut togo = vec![0.0f64; trace.len()];
        for i in (0..trace.len()).rev() {
            g = trace[i].reward + cfg.gamma * g;
            togo[i] = g;
        }
        let baseline = mean(&togo);
        let std = (togo.iter().map(|v| (v - baseline).powi(2)).sum::<f64>()
            / togo.len().max(1) as f64)
            .sqrt()
            .max(1e-6);

        // Policy-gradient step: dlogπ/dmean = (a - mean)/σ²; ascend.
        let sigma_sq = cfg.sigma * cfg.sigma;
        let scale = 1.0 / trace.len().max(1) as f32;
        for (i, step) in trace.iter().enumerate() {
            let advantage = ((togo[i] - baseline) / std) as f32;
            let mean_out = policy.net.forward(&step.features, true);
            let dmean = -(step.action - mean_out.data()[0]) / sigma_sq * advantage * scale;
            let grad = Tensor::from_vec(&[1, 1], vec![dmean]);
            let _ = policy.net.backward(&grad);
        }
        let mut params = policy.net.params_mut();
        opt.step(&mut params);
    }

    RlReport {
        returns,
        crashes_per_episode: crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;

    #[test]
    fn reinforce_improves_over_random_policy() {
        let track = circle_track(2.5, 0.8);
        let cfg = RlConfig {
            episodes: 24,
            episode_s: 15.0,
            seed: 5,
            ..Default::default()
        };
        let mut policy = Policy::new(5);
        let report = train_reinforce(&track, &cfg, &mut policy);
        assert_eq!(report.returns.len(), 24);
        let first = report.mean_return_first(6);
        let last = report.mean_return_last(6);
        assert!(
            last > first,
            "no improvement: first {first:.2} vs last {last:.2}"
        );
    }

    #[test]
    fn trained_policy_steers_sensibly() {
        // After training, left-of-center features should command
        // right steering and vice versa.
        let track = circle_track(2.5, 0.8);
        let cfg = RlConfig {
            episodes: 32,
            episode_s: 15.0,
            seed: 6,
            ..Default::default()
        };
        let mut policy = Policy::new(6);
        let _ = train_reinforce(&track, &cfg, &mut policy);
        let left = Tensor::from_vec(&[1, 4], vec![0.3, 0.0, 0.4, 0.3]);
        let right = Tensor::from_vec(&[1, 4], vec![-0.3, 0.0, 0.4, 0.3]);
        let ml = policy.mean(&left);
        let mr = policy.mean(&right);
        assert!(
            ml < mr,
            "policy must steer right ({ml}) when left of line vs ({mr})"
        );
    }

    #[test]
    fn features_shape() {
        use autolearn_track::TrackProjection;
        use autolearn_util::Image;
        let img = Image::new(2, 2, 1);
        let obs = Observation {
            image: &img,
            measured_speed: 1.0,
            last_controls: Controls::COAST,
            ground_truth: Some(TrackProjection {
                s: 0.0,
                lateral: 0.1,
                heading: -0.05,
                curvature: 0.3,
                on_track: true,
            }),
            t: 0.0,
        };
        let f = Policy::features(&obs);
        assert_eq!(f.shape(), &[1, 4]);
        assert!((f.data()[0] - 0.1).abs() < 1e-6);
    }
}
