//! Closed-loop remote inference: the actual mechanism behind the
//! edge/cloud/hybrid placements of [`crate::placement`].
//!
//! [`RemoteInferencePilot`] runs inside the 20 Hz drive loop and models the
//! real dataflow: every frame is (optionally) answered immediately by the
//! on-board model *and* dispatched to a cloud model whose reply arrives
//! after a sampled network round-trip plus GPU inference time. At each
//! tick the pilot acts on the freshest answer available — a sufficiently
//! recent cloud reply if one has arrived, otherwise the edge answer
//! (hybrid), or the last cloud reply however stale (pure cloud).

use crate::dataset::image_to_input;
use autolearn_cloud::hardware::ComputeDevice;
use autolearn_cloud::perf::inference_latency;
use autolearn_net::link::RttSampler;
use autolearn_net::Path;
use autolearn_nn::models::{CarModel, DonkeyModel};
use autolearn_nn::Tensor;
use autolearn_sim::{Controls, Observation, Pilot};
use std::collections::VecDeque;

/// Statistics the pilot gathers about who actually drove.
#[derive(Debug, Clone, Copy, Default)]
pub struct RemoteStats {
    pub ticks: usize,
    /// Ticks decided by a fresh cloud reply.
    pub cloud_ticks: usize,
    /// Ticks decided by the edge model (hybrid fallback).
    pub edge_ticks: usize,
    /// Ticks that had to reuse a stale command (pure cloud, reply late).
    pub stale_ticks: usize,
}

impl RemoteStats {
    pub fn cloud_fraction(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.cloud_ticks as f64 / self.ticks as f64
        }
    }
}

/// A pilot whose decisions may cross the network.
pub struct RemoteInferencePilot {
    /// On-board model; `None` = pure cloud placement.
    edge_model: Option<CarModel>,
    cloud_model: CarModel,
    rtts: RttSampler,
    cloud_infer_s: f64,
    edge_infer_s: f64,
    /// A cloud reply whose *frame* is older than this is ignored in favour
    /// of the edge answer (hybrid mode). Pure-cloud mode reuses stale
    /// replies anyway.
    pub staleness_limit_s: f64,
    /// (reply arrival time, frame capture time, controls).
    pending: VecDeque<(f64, f64, Controls)>,
    /// (frame capture time, controls) of the newest arrived reply.
    last_cloud: Option<(f64, Controls)>,
    pub stats: RemoteStats,
}

impl RemoteInferencePilot {
    /// Hybrid placement: edge model always answers; cloud refines when the
    /// network allows.
    pub fn hybrid(
        edge_model: CarModel,
        cloud_model: CarModel,
        path: &Path,
        gpu: &ComputeDevice,
        edge_device: &ComputeDevice,
        seed: u64,
    ) -> RemoteInferencePilot {
        let cloud_infer = inference_latency(cloud_model.flops_per_inference(), gpu).as_secs();
        let edge_infer =
            inference_latency(edge_model.flops_per_inference(), edge_device).as_secs();
        RemoteInferencePilot {
            edge_model: Some(edge_model),
            cloud_model,
            rtts: path.rtt_sampler(seed),
            cloud_infer_s: cloud_infer,
            edge_infer_s: edge_infer,
            staleness_limit_s: 0.1,
            pending: VecDeque::new(),
            last_cloud: None,
            stats: RemoteStats::default(),
        }
    }

    /// Pure cloud placement: every decision crosses the network; late
    /// replies mean acting on stale commands.
    pub fn cloud_only(
        cloud_model: CarModel,
        path: &Path,
        gpu: &ComputeDevice,
        seed: u64,
    ) -> RemoteInferencePilot {
        let cloud_infer = inference_latency(cloud_model.flops_per_inference(), gpu).as_secs();
        RemoteInferencePilot {
            edge_model: None,
            cloud_model,
            rtts: path.rtt_sampler(seed),
            cloud_infer_s: cloud_infer,
            edge_infer_s: 0.0,
            staleness_limit_s: 0.1,
            pending: VecDeque::new(),
            last_cloud: None,
            stats: RemoteStats::default(),
        }
    }

    fn predict(model: &mut CarModel, frame: &Tensor) -> Controls {
        let input = Tensor::stack(std::slice::from_ref(frame));
        let (s, t) = model.predict(&[input])[0];
        Controls::new(f64::from(s), f64::from(t))
    }
}

impl Pilot for RemoteInferencePilot {
    fn control(&mut self, obs: &Observation<'_>) -> Controls {
        self.stats.ticks += 1;
        let t = obs.t;
        let frame = image_to_input(obs.image, self.cloud_model.config());

        // Dispatch this frame to the cloud; reply lands after RTT + GPU.
        let reply_at = t + self.rtts.sample().as_secs() + self.cloud_infer_s;
        let cloud_answer = Self::predict(&mut self.cloud_model, &frame);
        self.pending.push_back((reply_at, t, cloud_answer));

        // Collect any replies that have arrived by now.
        while let Some(&(ready, frame_t, c)) = self.pending.front() {
            if ready <= t {
                self.last_cloud = Some((frame_t, c));
                self.pending.pop_front();
            } else {
                break;
            }
        }

        // Freshness is the age of the *frame* the reply answers, not the
        // reply's arrival time: a slow network delivers a steady stream of
        // replies that are all about the distant past.
        let fresh_cloud = self
            .last_cloud
            .filter(|(frame_t, _)| t - frame_t <= self.staleness_limit_s);

        match (&mut self.edge_model, fresh_cloud) {
            // Fresh cloud reply wins (it may come from a bigger model).
            (_, Some((_, c))) => {
                self.stats.cloud_ticks += 1;
                c
            }
            // Hybrid fallback: the edge model answers within the tick as
            // long as its compute fits the 50 ms budget.
            (Some(edge), None) if self.edge_infer_s < 0.05 => {
                self.stats.edge_ticks += 1;
                Self::predict(edge, &frame)
            }
            // Pure cloud with nothing fresh: reuse the last command, stale
            // or not — the car does *something* every tick.
            _ => {
                self.stats.stale_ticks += 1;
                self.last_cloud.map(|(_, c)| c).unwrap_or(Controls::COAST)
            }
        }
    }

    fn notify_reset(&mut self) {
        self.pending.clear();
        self.last_cloud = None;
    }

    fn name(&self) -> String {
        if self.edge_model.is_some() {
            "remote-hybrid".to_string()
        } else {
            "remote-cloud".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::{collect_session, CollectConfig, CollectionPath};
    use crate::dataset::records_to_dataset;
    use autolearn_cloud::hardware::GpuKind;
    use autolearn_net::Link;
    use autolearn_nn::models::{prepare_dataset, ModelConfig, ModelKind};
    use autolearn_nn::{TrainConfig, Trainer};
    use autolearn_sim::{CameraConfig, CarConfig, DriveConfig, Simulation};
    use autolearn_track::circle_track;

    fn trained(seed: u64) -> CarModel {
        let track = circle_track(3.0, 0.8);
        let cfg = ModelConfig {
            height: 30,
            width: 40,
            channels: 1,
            seed,
            ..Default::default()
        };
        let mut model = CarModel::build(ModelKind::Linear, &cfg);
        let collected = collect_session(
            &track,
            &CollectConfig::new(CollectionPath::Simulator, 60.0, seed),
        );
        let data = prepare_dataset(
            &records_to_dataset(&collected.records, &cfg),
            model.input_spec(),
        );
        Trainer::new(TrainConfig {
            epochs: 6,
            seed,
            ..Default::default()
        })
        .fit(&mut model, &data)
        .expect("zoo graph validates");
        model
    }

    fn drive(pilot: &mut RemoteInferencePilot) -> (f64, RemoteStats) {
        let mut sim = Simulation::new(
            circle_track(3.0, 0.8),
            CarConfig::default(),
            CameraConfig::small(),
            DriveConfig {
                store_images: false,
                ..Default::default()
            },
        );
        let session = sim.run(pilot, 20.0);
        (session.autonomy(), pilot.stats)
    }

    fn fast_path() -> Path {
        Path::new(vec![Link::fabric_with_latency(0.002)])
    }

    fn slow_path() -> Path {
        Path::new(vec![Link::fabric_with_latency(0.15)])
    }

    #[test]
    fn hybrid_uses_cloud_on_fast_network() {
        let gpu = ComputeDevice::of_gpu(GpuKind::V100);
        let pi = ComputeDevice::raspberry_pi4();
        let mut pilot =
            RemoteInferencePilot::hybrid(trained(1), trained(1), &fast_path(), &gpu, &pi, 1);
        let (autonomy, stats) = drive(&mut pilot);
        assert!(autonomy > 0.9, "autonomy {autonomy}");
        assert!(
            stats.cloud_fraction() > 0.8,
            "cloud fraction {}",
            stats.cloud_fraction()
        );
    }

    #[test]
    fn hybrid_falls_back_to_edge_on_slow_network() {
        let gpu = ComputeDevice::of_gpu(GpuKind::V100);
        let pi = ComputeDevice::raspberry_pi4();
        let mut pilot =
            RemoteInferencePilot::hybrid(trained(2), trained(2), &slow_path(), &gpu, &pi, 2);
        pilot.staleness_limit_s = 0.05;
        let (autonomy, stats) = drive(&mut pilot);
        // Replies take 300+ ms: almost every tick is the edge model, and
        // driving stays good because the edge model is competent.
        assert!(stats.edge_ticks > stats.cloud_ticks * 3, "{stats:?}");
        assert!(autonomy > 0.9, "autonomy {autonomy}");
    }

    #[test]
    fn cloud_only_on_fast_network_drives_fine() {
        let gpu = ComputeDevice::of_gpu(GpuKind::V100);
        let mut pilot = RemoteInferencePilot::cloud_only(trained(1), &fast_path(), &gpu, 3);
        let (autonomy, stats) = drive(&mut pilot);
        // Remote control always lags one tick behind on-board inference; a
        // fast network keeps driving close to the on-board baseline.
        assert!(autonomy > 0.85, "autonomy {autonomy}");
        assert!(stats.cloud_fraction() > 0.8);
    }

    #[test]
    fn cloud_only_goes_stale_on_slow_network() {
        let gpu = ComputeDevice::of_gpu(GpuKind::V100);
        let mut fast = RemoteInferencePilot::cloud_only(trained(4), &fast_path(), &gpu, 4);
        let (auto_fast, _) = drive(&mut fast);
        let mut slow = RemoteInferencePilot::cloud_only(trained(4), &slow_path(), &gpu, 4);
        let (auto_slow, stats) = drive(&mut slow);
        assert!(stats.stale_ticks > 0, "{stats:?}");
        assert!(
            auto_slow <= auto_fast + 1e-9,
            "stale commands cannot improve driving: {auto_slow} vs {auto_fast}"
        );
    }

    #[test]
    fn reset_clears_in_flight_requests() {
        let gpu = ComputeDevice::of_gpu(GpuKind::V100);
        let pi = ComputeDevice::raspberry_pi4();
        let mut pilot =
            RemoteInferencePilot::hybrid(trained(5), trained(5), &slow_path(), &gpu, &pi, 5);
        let img = autolearn_util::Image::new(40, 30, 1);
        let obs = Observation {
            image: &img,
            measured_speed: 1.0,
            last_controls: Controls::COAST,
            ground_truth: None,
            t: 0.0,
        };
        let _ = pilot.control(&obs);
        assert!(!pilot.pending.is_empty());
        pilot.notify_reset();
        assert!(pilot.pending.is_empty());
        assert!(pilot.last_cloud.is_none());
    }
}
