//! A complete digital lesson: the Trovi artifact and the computation it
//! packages, executed together.
//!
//! §3.5: Chameleon's Jupyter integration lets the module "combine
//! experimental environment creation, experiment body, and analysis in one
//! set of notebooks", and §5 measures engagement by cell executions. This
//! module binds the two: running the lesson launches the artifact on the
//! hub, executes its notebook cells (which is what Trovi's metrics count),
//! and drives the actual pipeline those cells stand for.

use crate::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineReport};
use autolearn_obs::Obs;
use autolearn_track::Track;
use autolearn_trovi::{Artifact, TroviHub};
use autolearn_util::{FaultPlan, RetryPolicy, SimTime};
use serde::{Deserialize, Serialize};

/// What a lesson run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LessonReport {
    pub cells_executed: usize,
    pub eval_autonomy: f64,
    pub eval_laps: usize,
    /// The hub's rolled-up metrics for the artifact after this run.
    pub launch_clicks: usize,
    pub users_executed: usize,
}

/// Run the digital-pathway lesson for `user`: view + launch the AutoLearn
/// artifact on `hub`, execute every code cell of its latest version, and
/// run the pipeline the notebooks describe. Publishes the artifact first if
/// the hub doesn't carry it yet. A pipeline failure (rejected model,
/// refused reservation) surfaces as a typed error instead of a crashed
/// lesson.
pub fn run_digital_lesson(
    hub: &mut TroviHub,
    user: &str,
    track: &Track,
    config: PipelineConfig,
    at: SimTime,
) -> Result<(LessonReport, PipelineReport), PipelineError> {
    let mut obs = Obs::new();
    run_digital_lesson_traced(
        hub,
        user,
        track,
        config,
        at,
        &mut FaultPlan::none(),
        &RetryPolicy::default(),
        &mut obs,
    )
}

/// [`run_digital_lesson`], but telemetry-first: the sim-time cursor starts
/// at `at`, faults come from `plan`, retries follow `policy`, and the whole
/// seven-stage loop lands in `obs` as one trace (export it afterwards with
/// [`Obs::export_chrome_trace`]). This is the entry point `trace.sh` and the
/// golden-trace determinism tests drive.
#[allow(clippy::too_many_arguments)]
pub fn run_digital_lesson_traced(
    hub: &mut TroviHub,
    user: &str,
    track: &Track,
    config: PipelineConfig,
    at: SimTime,
    plan: &mut FaultPlan,
    policy: &RetryPolicy,
    obs: &mut Obs,
) -> Result<(LessonReport, PipelineReport), PipelineError> {
    let slug = "autolearn-edge-to-cloud";
    obs.set_now(at);
    if hub.get(slug).is_none() {
        hub.publish(Artifact::autolearn_example());
    }

    hub.view(user, slug, at);
    hub.launch(user, slug, at);

    // Execute every code cell of every notebook in the latest version —
    // the student stepping through the lesson top to bottom.
    let cell_targets: Vec<(usize, usize)> = {
        let artifact = hub.get(slug).expect("just published");
        let latest = artifact.latest().expect("has versions");
        latest
            .notebooks
            .iter()
            .enumerate()
            .flat_map(|(ni, nb)| (0..nb.cells.len()).map(move |ci| (ni, ci)))
            .collect()
    };
    let mut cells_executed = 0;
    for (ni, ci) in cell_targets {
        if hub.execute_cell(user, slug, ni, ci, at) {
            cells_executed += 1;
        }
    }

    // The computation those cells stand for.
    let pipeline_report = Pipeline::new(track.clone(), config).run_observed(plan, policy, obs)?;

    let metrics = hub.events.metrics_for(slug);
    Ok((
        LessonReport {
            cells_executed,
            eval_autonomy: pipeline_report.eval_autonomy,
            eval_laps: pipeline_report.eval_laps,
            launch_clicks: metrics.launch_clicks,
            users_executed: metrics.users_executed,
        },
        pipeline_report,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::CollectionPath;
    use autolearn_track::circle_track;

    fn quick_config() -> PipelineConfig {
        let mut cfg = PipelineConfig::lesson_default(41);
        cfg.collection.duration_s = 40.0;
        cfg.collection.path = CollectionPath::Simulator;
        cfg.train.epochs = 4;
        cfg.eval_laps = 1;
        cfg.eval_max_duration_s = 30.0;
        cfg
    }

    #[test]
    fn lesson_executes_cells_and_pipeline() {
        let mut hub = TroviHub::new();
        let track = circle_track(3.0, 0.8);
        let (lesson, pipeline) =
            run_digital_lesson(&mut hub, "selflearner", &track, quick_config(), SimTime::ZERO)
                .expect("lesson pipeline succeeds");

        // Every *code* cell executed (markdown cells don't count — that is
        // Trovi's definition).
        assert!(lesson.cells_executed >= 5, "{}", lesson.cells_executed);
        assert_eq!(lesson.launch_clicks, 1);
        assert_eq!(lesson.users_executed, 1);
        assert!(pipeline.records_collected > 0);
        assert_eq!(lesson.eval_laps, pipeline.eval_laps);
    }

    #[test]
    fn two_students_roll_up_in_hub_metrics() {
        let mut hub = TroviHub::new();
        let track = circle_track(3.0, 0.8);
        let (a, _) = run_digital_lesson(&mut hub, "alice", &track, quick_config(), SimTime::ZERO)
            .expect("alice's lesson succeeds");
        let (b, _) = run_digital_lesson(&mut hub, "bob", &track, quick_config(), SimTime::ZERO)
            .expect("bob's lesson succeeds");
        assert_eq!(a.users_executed, 1);
        assert_eq!(b.users_executed, 2);
        assert_eq!(b.launch_clicks, 2);
    }
}
