//! Data collection: the three paths of Fig. 2.
//!
//! *"AutoLearn provides three different data collection paths. Sample
//! datasets, data collected through the Unity game platform via simulation,
//! and through the real physical car."* All three produce the same thing —
//! an ordered list of tub [`Record`]s — which is the point of the module's
//! "mix and match" design.

use autolearn_sim::{
    CameraConfig, CarConfig, DriveConfig, LinePilot, LinePilotConfig, SessionResult,
    Simulation,
};
use autolearn_track::Track;
use autolearn_tub::{DriveMode, Record};
use serde::{Deserialize, Serialize};

/// Which of the paper's three collection paths to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollectionPath {
    /// Pre-packaged sample dataset (the beginner path: no car needed).
    SampleDataset,
    /// The DonkeyCar simulator: clean physics, clean camera.
    Simulator,
    /// The physical car on the tape track: actuator noise, camera noise,
    /// and a sloppier human driver.
    PhysicalCar,
}

impl CollectionPath {
    pub fn name(self) -> &'static str {
        match self {
            CollectionPath::SampleDataset => "sample-dataset",
            CollectionPath::Simulator => "simulator",
            CollectionPath::PhysicalCar => "physical-car",
        }
    }

    pub fn all() -> [CollectionPath; 3] {
        [
            CollectionPath::SampleDataset,
            CollectionPath::Simulator,
            CollectionPath::PhysicalCar,
        ]
    }
}

/// Collection session configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CollectConfig {
    pub path: CollectionPath,
    /// Driving time, seconds of simulated session.
    pub duration_s: f64,
    /// Camera used for recording (defaults to the 40x30 grayscale training
    /// camera; switch to `CameraConfig::default()` for DonkeyCar's 160x120).
    pub camera: CameraConfig,
    /// Fixed-throttle race mode (§3.3's "setting the throttle as constant").
    pub constant_throttle: Option<f64>,
    pub seed: u64,
}

impl CollectConfig {
    pub fn new(path: CollectionPath, duration_s: f64, seed: u64) -> CollectConfig {
        CollectConfig {
            path,
            duration_s,
            camera: CameraConfig::small(),
            constant_throttle: None,
            seed,
        }
    }
}

/// Result of a collection session: records plus the session telemetry.
pub struct Collected {
    pub records: Vec<Record>,
    pub session: SessionResult,
}

/// Run a manual-driving session on `track` and return tub records.
pub fn collect_session(track: &Track, cfg: &CollectConfig) -> Collected {
    let (car, camera, pilot_cfg) = match cfg.path {
        CollectionPath::Simulator | CollectionPath::SampleDataset => (
            CarConfig {
                seed: cfg.seed,
                ..CarConfig::default()
            },
            cfg.camera.clone(),
            LinePilotConfig {
                seed: cfg.seed,
                constant_throttle: cfg.constant_throttle,
                ..Default::default()
            },
        ),
        CollectionPath::PhysicalCar => (
            CarConfig::real_car(cfg.seed),
            cfg.camera.clone().with_noise(6.0, cfg.seed),
            LinePilotConfig {
                constant_throttle: cfg.constant_throttle,
                ..LinePilotConfig::sloppy(cfg.seed)
            },
        ),
    };

    let mut sim = Simulation::new(
        track.clone(),
        car,
        camera,
        DriveConfig {
            store_images: true,
            ..Default::default()
        },
    );
    let mut pilot = LinePilot::new(pilot_cfg);
    let session = sim.run(&mut pilot, cfg.duration_s);
    let records = frames_to_records(&session);
    Collected { records, session }
}

fn frames_to_records(session: &SessionResult) -> Vec<Record> {
    session
        .frames
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let mut r = Record::new(
                i as u64,
                f.controls.steering as f32,
                f.controls.throttle as f32,
                (f.t * 1000.0).round() as u64,
                f.image.clone().expect("collection stores images"),
            );
            r.mode = DriveMode::User;
            r.off_track = f.off_track;
            r.crashed = f.crashed;
            r
        })
        .collect()
}

/// The packaged sample dataset for a track: a deterministic clean-simulator
/// session sized like the paper's samples ("10-50K records" — default 10k
/// at 20 Hz ≈ 500 s of driving; pass a different `records` count to sweep).
pub fn sample_dataset(track: &Track, records: usize, seed: u64) -> Vec<Record> {
    let duration = records as f64 / 20.0;
    let cfg = CollectConfig::new(CollectionPath::SampleDataset, duration, seed);
    let mut collected = collect_session(track, &cfg);
    collected.records.truncate(records);
    collected.records
}

#[cfg(test)]
mod tests {
    use super::*;
    use autolearn_track::circle_track;
    use autolearn_tub::TubStats;

    fn track() -> Track {
        circle_track(3.0, 0.8)
    }

    #[test]
    fn simulator_collection_produces_clean_records() {
        let cfg = CollectConfig::new(CollectionPath::Simulator, 20.0, 1);
        let c = collect_session(&track(), &cfg);
        assert_eq!(c.records.len(), 400); // 20 s at 20 Hz
        assert_eq!(c.session.crashes, 0);
        let stats = TubStats::compute(&c.records, 15);
        assert_eq!(stats.crash_count, 0);
        // Driving a CCW circle: steering biased left (positive).
        assert!(stats.steering_mean > 0.0);
        // Images present and correctly sized.
        let img = c.records[0].image.as_ref().unwrap();
        assert_eq!((img.width, img.height, img.channels), (40, 30, 1));
    }

    #[test]
    fn physical_car_data_is_noisier() {
        let sim_cfg = CollectConfig::new(CollectionPath::Simulator, 30.0, 2);
        let car_cfg = CollectConfig::new(CollectionPath::PhysicalCar, 30.0, 2);
        let sim = collect_session(&track(), &sim_cfg);
        let car = collect_session(&track(), &car_cfg);
        let s1 = TubStats::compute(&sim.records, 15);
        let s2 = TubStats::compute(&car.records, 15);
        assert!(
            s2.steering_std > s1.steering_std,
            "car steering std {} <= sim {}",
            s2.steering_std,
            s1.steering_std
        );
    }

    #[test]
    fn physical_car_sometimes_leaves_track() {
        // With a sloppy driver on a tight track over enough time, off-track
        // flags appear — the raw material for the tubclean lesson.
        let cfg = CollectConfig::new(CollectionPath::PhysicalCar, 120.0, 7);
        let c = collect_session(&circle_track(1.6, 0.55), &cfg);
        let off = c.records.iter().filter(|r| r.off_track).count();
        assert!(off > 0, "expected some off-track records");
    }

    #[test]
    fn constant_throttle_mode() {
        let mut cfg = CollectConfig::new(CollectionPath::Simulator, 5.0, 3);
        cfg.constant_throttle = Some(0.42);
        let c = collect_session(&track(), &cfg);
        // After warm-up every record carries the fixed throttle.
        assert!(c.records[20..].iter().all(|r| (r.throttle - 0.42).abs() < 1e-6));
    }

    #[test]
    fn sample_dataset_is_deterministic_and_sized() {
        let a = sample_dataset(&track(), 300, 9);
        let b = sample_dataset(&track(), 300, 9);
        assert_eq!(a.len(), 300);
        assert_eq!(a[5].steering, b[5].steering);
        assert_eq!(
            a[250].image.as_ref().unwrap().data,
            b[250].image.as_ref().unwrap().data
        );
    }

    #[test]
    fn paths_have_names() {
        assert_eq!(CollectionPath::all().len(), 3);
        assert_eq!(CollectionPath::PhysicalCar.name(), "physical-car");
    }
}
