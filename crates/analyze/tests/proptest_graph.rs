//! Property tests for the static model-graph validator: random Sequential
//! chains that are consistent by construction must validate, and a single
//! corrupted dimension anywhere in the chain must be caught.

use autolearn_analyze::graph::{validate_model, LayerSpec, ModelSpec};
use proptest::prelude::*;

/// A dense chain threaded through `dims`, with deterministic "decoration"
/// (activation / dropout / batchnorm) between the matmuls so the chain
/// exercises the pass-through layers too.
fn dense_chain(dims: &[usize]) -> Vec<LayerSpec> {
    let mut layers = Vec::new();
    for (i, pair) in dims.windows(2).enumerate() {
        layers.push(LayerSpec::Dense {
            input: pair[0],
            output: pair[1],
        });
        match i % 3 {
            0 => layers.push(LayerSpec::Activation {
                kind: "relu".into(),
            }),
            1 => layers.push(LayerSpec::Dropout { rate: 0.25 }),
            _ => layers.push(LayerSpec::BatchNorm1d { features: pair[1] }),
        }
    }
    layers
}

fn model(input: Vec<usize>, layers: Vec<LayerSpec>, feat: usize) -> ModelSpec {
    ModelSpec {
        name: "prop".into(),
        input,
        layers,
        aux_width: None,
        merge: Vec::new(),
        heads: vec![(
            "steering".into(),
            vec![
                LayerSpec::Dense {
                    input: feat,
                    output: 1,
                },
                LayerSpec::Activation {
                    kind: "tanh".into(),
                },
            ],
        )],
        declared_params: None,
        declared_feature_dim: Some(feat),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any dense chain whose dimensions agree by construction validates,
    /// and the report's feature dim is the chain's final width.
    #[test]
    fn consistent_chains_validate(dims in prop::collection::vec(1usize..64, 2..7), batch in 1usize..8) {
        let feat = *dims.last().unwrap();
        let spec = model(vec![batch, dims[0]], dense_chain(&dims), feat);
        let report = validate_model(&spec).expect("consistent chain must validate");
        prop_assert_eq!(report.feature_dim, feat);
        prop_assert_eq!(report.total_params, spec.total_params());
    }

    /// Corrupting any single Dense input width breaks validation — the
    /// validator may not silently accept a mismatched chain.
    #[test]
    fn corrupted_chains_are_rejected(
        dims in prop::collection::vec(1usize..64, 2..7),
        which in 0usize..5,
        bump in 1usize..17,
    ) {
        let feat = *dims.last().unwrap();
        let mut layers = dense_chain(&dims);
        // Pick the `which`-th Dense (wrapping) and widen its input.
        let dense_idxs: Vec<usize> = layers
            .iter()
            .enumerate()
            .filter(|(_, l)| matches!(l, LayerSpec::Dense { .. }))
            .map(|(i, _)| i)
            .collect();
        let target = dense_idxs[which % dense_idxs.len()];
        if let LayerSpec::Dense { input, .. } = &mut layers[target] {
            *input += bump;
        }
        let spec = model(vec![1, dims[0]], layers, feat);
        prop_assert!(validate_model(&spec).is_err());
    }

    /// A Chain wrapper propagates shapes exactly like its flattened layers.
    #[test]
    fn chain_is_transparent(dims in prop::collection::vec(1usize..32, 2..6)) {
        let layers = dense_chain(&dims);
        let input = vec![2usize, dims[0]];
        let folded = layers
            .iter()
            .try_fold(input.clone(), |s, l| l.output_shape(&s));
        let chained = LayerSpec::Chain(layers.clone()).output_shape(&input);
        prop_assert_eq!(folded, chained);
    }

    /// Conv stacks: geometry that fits validates; a kernel larger than the
    /// image it receives is always rejected.
    #[test]
    fn conv_geometry_is_checked(h in 1usize..40, w in 1usize..40, k in 1usize..8) {
        let layers = vec![
            LayerSpec::Conv2D { in_channels: 1, filters: 4, kernel: k, stride: 1 },
            LayerSpec::Flatten,
        ];
        let fits = h >= k && w >= k;
        let out = LayerSpec::Chain(layers).output_shape(&[1, 1, h, w]);
        prop_assert_eq!(out.is_ok(), fits, "h={} w={} k={} -> {:?}", h, w, k, out);
        if let Ok(shape) = out {
            prop_assert_eq!(shape, vec![1, 4 * (h - k + 1) * (w - k + 1)]);
        }
    }

    /// Parameter arithmetic is additive over chain composition.
    #[test]
    fn params_are_additive(dims in prop::collection::vec(1usize..32, 2..6)) {
        let layers = dense_chain(&dims);
        let by_sum: u64 = layers.iter().map(LayerSpec::param_count).sum();
        prop_assert_eq!(LayerSpec::Chain(layers).param_count(), by_sum);
    }
}
