//! Static pipeline contract pass.
//!
//! Every stage of the continuum pipeline declares a [`StageSpec`]: which
//! artifact kinds it consumes and produces, and the unit of every quantity
//! it reports. [`validate_pipeline`] checks the whole chain — collect →
//! clean → reserve → provision+upload → train → deploy → evaluate —
//! *statically*, before a single simulated second is spent:
//!
//! * **artifact flow / ordering** — a stage may only consume artifacts some
//!   strictly earlier stage produced, and no artifact may be produced
//!   twice. Reordering the chain (train before the tub upload, say) is a
//!   contract error, not a runtime surprise.
//! * **units** — reported quantity names carry their unit in a suffix
//!   convention (`_s`, `_bytes`, `_bps`, `epochs`, `records`); a declared
//!   [`Unit`] that contradicts the name (seconds where bytes are expected)
//!   is rejected. This is the static twin of the runtime newtypes in
//!   `autolearn_util::units`.
//! * **shapes and dtype** — the model graph is validated symbolically via
//!   [`validate_model`], and the tub→model tensor handoff is checked: the
//!   frame dimensions the camera/tub produce must match the frame slice of
//!   the model's input layout, and frames must cross the boundary as `f32`.
//!
//! The pass is pure data → data: no I/O, no dependencies, callable from
//! `autolearn-core`'s `Pipeline::preflight` and from tests.

use crate::graph::{validate_model, ModelSpec};
use std::fmt;

/// An artifact kind flowing between pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Raw tub records straight off the car.
    RawTub,
    /// Tub after the tubclean review pass.
    CleanTub,
    /// An admitted GPU lease on the testbed.
    GpuLease,
    /// The tub, rsynced up to the GPU node.
    RemoteTub,
    /// Trained model weights on the GPU node.
    TrainedWeights,
    /// The model, downloaded and running in the car's container.
    DeployedModel,
    /// Autonomous-lap evaluation metrics.
    EvalReport,
}

impl ArtifactKind {
    /// Stable name used in error messages.
    pub fn label(self) -> &'static str {
        match self {
            ArtifactKind::RawTub => "raw-tub",
            ArtifactKind::CleanTub => "clean-tub",
            ArtifactKind::GpuLease => "gpu-lease",
            ArtifactKind::RemoteTub => "remote-tub",
            ArtifactKind::TrainedWeights => "trained-weights",
            ArtifactKind::DeployedModel => "deployed-model",
            ArtifactKind::EvalReport => "eval-report",
        }
    }
}

impl fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Physical unit of a reported quantity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Simulated seconds.
    Seconds,
    /// Payload sizes.
    Bytes,
    /// Transfer rates.
    BytesPerSec,
    /// Training-epoch counts.
    Epochs,
    /// Tub-record counts.
    Records,
    /// Ratios, counts of abstract things, unitless scores.
    Dimensionless,
}

impl Unit {
    /// Stable name used in error messages.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Seconds => "seconds",
            Unit::Bytes => "bytes",
            Unit::BytesPerSec => "bytes/s",
            Unit::Epochs => "epochs",
            Unit::Records => "records",
            Unit::Dimensionless => "dimensionless",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The unit a quantity name *implies* under the workspace's suffix
/// convention, or `None` when the name makes no unit claim.
///
/// `_bps` is checked before `_s` so rate names are not mistaken for
/// durations.
pub fn canonical_unit(name: &str) -> Option<Unit> {
    if name.ends_with("_bps") {
        Some(Unit::BytesPerSec)
    } else if name.ends_with("_bytes") || name == "bytes" {
        Some(Unit::Bytes)
    } else if name.ends_with("_s") || name.ends_with("_secs") || name.ends_with("_duration") {
        Some(Unit::Seconds)
    } else if name.ends_with("epochs") {
        Some(Unit::Epochs)
    } else if name.ends_with("records") {
        Some(Unit::Records)
    } else {
        None
    }
}

/// One quantity a stage reports, with its declared unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantitySpec {
    /// Quantity name; its suffix implies the canonical unit.
    pub name: String,
    /// The unit the stage claims to report this quantity in.
    pub unit: Unit,
}

/// The static contract of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSpec {
    /// Stage name as it appears in run logs (`"collect"`, `"train"`, ...).
    pub name: String,
    /// Artifacts this stage needs; each must be produced strictly earlier.
    pub consumes: Vec<ArtifactKind>,
    /// Artifacts this stage makes available to later stages.
    pub produces: Vec<ArtifactKind>,
    /// Quantities this stage reports, with declared units.
    pub reports: Vec<QuantitySpec>,
}

impl StageSpec {
    /// An empty stage contract named `name`; chain the builder methods.
    pub fn new(name: &str) -> StageSpec {
        StageSpec {
            name: name.to_string(),
            consumes: Vec::new(),
            produces: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Declare a consumed artifact.
    pub fn consumes(mut self, kind: ArtifactKind) -> StageSpec {
        self.consumes.push(kind);
        self
    }

    /// Declare a produced artifact.
    pub fn produces(mut self, kind: ArtifactKind) -> StageSpec {
        self.produces.push(kind);
        self
    }

    /// Declare a reported quantity and its unit.
    pub fn reports(mut self, name: &str, unit: Unit) -> StageSpec {
        self.reports.push(QuantitySpec {
            name: name.to_string(),
            unit,
        });
        self
    }
}

/// Scalar dtype of tensors crossing the tub→model boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DType {
    /// Raw camera bytes, 0..=255.
    U8,
    /// Normalised floats, the only dtype the models accept.
    F32,
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DType::U8 => "u8",
            DType::F32 => "f32",
        })
    }
}

/// Where the camera frame lives inside the model's input tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameLayout {
    /// `[batch, channels, height, width]` — the single-frame models.
    Bchw,
    /// `[batch, time, channels, height, width]` — the RNN.
    Btchw,
    /// `[batch, channels, time, height, width]` — the 3D-conv model.
    Bcthw,
}

impl FrameLayout {
    /// Tensor rank this layout requires.
    pub fn rank(self) -> usize {
        match self {
            FrameLayout::Bchw => 4,
            FrameLayout::Btchw | FrameLayout::Bcthw => 5,
        }
    }

    /// The `(channels, height, width)` slice of `input` under this layout,
    /// or `None` when the rank is wrong.
    pub fn frame_dims(self, input: &[usize]) -> Option<(usize, usize, usize)> {
        match self {
            FrameLayout::Bchw if input.len() == 4 => Some((input[1], input[2], input[3])),
            FrameLayout::Btchw if input.len() == 5 => Some((input[2], input[3], input[4])),
            FrameLayout::Bcthw if input.len() == 5 => Some((input[1], input[3], input[4])),
            _ => None,
        }
    }
}

/// What the camera/tub side of the handoff actually produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameContract {
    /// Colour channels per frame.
    pub channels: usize,
    /// Frame height, pixels.
    pub height: usize,
    /// Frame width, pixels.
    pub width: usize,
    /// Dtype the frames cross the boundary as.
    pub dtype: DType,
}

/// One contract violation: where it was found and what is wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractError {
    /// The stage, quantity or model location the error anchors to.
    pub location: String,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for ContractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.location, self.message)
    }
}

/// Render contract errors one per line for logs and panics.
pub fn format_contract_errors(errors: &[ContractError]) -> String {
    errors
        .iter()
        .map(ContractError::to_string)
        .collect::<Vec<_>>()
        .join("\n")
}

/// What a clean [`validate_pipeline`] pass established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContractReport {
    /// Stage names, in validated order.
    pub stages: Vec<String>,
    /// Every artifact the chain produces, in production order.
    pub artifacts: Vec<ArtifactKind>,
    /// How many reported quantities had their units checked.
    pub quantities_checked: usize,
    /// Feature width of the validated model graph.
    pub feature_dim: usize,
    /// Trainable parameters of the validated model graph.
    pub total_params: u64,
}

/// The canonical seven-stage AutoLearn chain, as `Pipeline::run` executes
/// it. When `clean` is false the review pass is skipped and the raw tub is
/// uploaded directly.
pub fn standard_stages(clean: bool) -> Vec<StageSpec> {
    let mut stages = vec![StageSpec::new("collect")
        .produces(ArtifactKind::RawTub)
        .reports("session_s", Unit::Seconds)
        .reports("collected_records", Unit::Records)];
    let upload_input = if clean {
        stages.push(
            StageSpec::new("clean")
                .consumes(ArtifactKind::RawTub)
                .produces(ArtifactKind::CleanTub)
                .reports("review_s", Unit::Seconds)
                .reports("kept_records", Unit::Records),
        );
        ArtifactKind::CleanTub
    } else {
        ArtifactKind::RawTub
    };
    stages.push(
        StageSpec::new("reserve")
            .produces(ArtifactKind::GpuLease)
            .reports("launch_s", Unit::Seconds),
    );
    stages.push(
        StageSpec::new("provision+upload")
            .consumes(upload_input)
            .consumes(ArtifactKind::GpuLease)
            .produces(ArtifactKind::RemoteTub)
            .reports("tub_bytes", Unit::Bytes)
            .reports("upload_s", Unit::Seconds)
            .reports("goodput_bps", Unit::BytesPerSec),
    );
    stages.push(
        StageSpec::new("train")
            .consumes(ArtifactKind::RemoteTub)
            .consumes(ArtifactKind::GpuLease)
            .produces(ArtifactKind::TrainedWeights)
            .reports("train_s", Unit::Seconds)
            .reports("planned_epochs", Unit::Epochs),
    );
    stages.push(
        StageSpec::new("deploy-model")
            .consumes(ArtifactKind::TrainedWeights)
            .produces(ArtifactKind::DeployedModel)
            .reports("model_bytes", Unit::Bytes)
            .reports("deploy_s", Unit::Seconds),
    );
    stages.push(
        StageSpec::new("evaluate")
            .consumes(ArtifactKind::DeployedModel)
            .produces(ArtifactKind::EvalReport)
            .reports("eval_s", Unit::Seconds)
            .reports("autonomy", Unit::Dimensionless),
    );
    stages
}

/// Validate the whole pipeline contract statically.
///
/// Checks, in order: stage names are unique; artifact flow is well-ordered
/// (consumed only after produced, produced at most once); every reported
/// quantity's declared unit agrees with the unit its name implies; the
/// model graph is internally consistent ([`validate_model`]); and the
/// tub→model handoff matches — `frames` must be `f32` and its
/// `(channels, height, width)` must equal the frame slice of the model's
/// input under `layout`.
///
/// All violations are accumulated and returned together.
pub fn validate_pipeline(
    stages: &[StageSpec],
    model: &ModelSpec,
    layout: FrameLayout,
    frames: &FrameContract,
) -> Result<ContractReport, Vec<ContractError>> {
    let mut errors = Vec::new();
    if stages.is_empty() {
        errors.push(ContractError {
            location: "pipeline".to_string(),
            message: "no stages declared".to_string(),
        });
    }

    // Stage-name uniqueness.
    for (i, stage) in stages.iter().enumerate() {
        if stages[..i].iter().any(|s| s.name == stage.name) {
            errors.push(ContractError {
                location: format!("stage '{}'", stage.name),
                message: "stage name declared twice".to_string(),
            });
        }
    }

    // Artifact flow: consumption strictly after production, no duplicate
    // producers. `produced` stays in production order for the report.
    let mut produced: Vec<ArtifactKind> = Vec::new();
    for stage in stages {
        for kind in &stage.consumes {
            if !produced.contains(kind) {
                errors.push(ContractError {
                    location: format!("stage '{}'", stage.name),
                    message: format!(
                        "consumes '{kind}' which no earlier stage produces \
                         (stage ordering violation)"
                    ),
                });
            }
        }
        for kind in &stage.produces {
            if produced.contains(kind) {
                errors.push(ContractError {
                    location: format!("stage '{}'", stage.name),
                    message: format!("produces '{kind}' which an earlier stage already produced"),
                });
            } else {
                produced.push(*kind);
            }
        }
    }
    // Dead artifacts: produced, never consumed, and not the terminal
    // report — a symptom of a stage wired to nothing.
    for kind in &produced {
        let consumed = stages.iter().any(|s| s.consumes.contains(kind));
        if !consumed && *kind != ArtifactKind::EvalReport {
            errors.push(ContractError {
                location: format!("artifact '{kind}'"),
                message: "produced but never consumed by any stage".to_string(),
            });
        }
    }

    // Units: declared unit must agree with the name's canonical unit.
    let mut quantities_checked = 0usize;
    for stage in stages {
        for (i, q) in stage.reports.iter().enumerate() {
            if stage.reports[..i].iter().any(|p| p.name == q.name) {
                errors.push(ContractError {
                    location: format!("stage '{}', quantity '{}'", stage.name, q.name),
                    message: "quantity reported twice in one stage".to_string(),
                });
            }
            quantities_checked += 1;
            if let Some(expected) = canonical_unit(&q.name) {
                if expected != q.unit {
                    errors.push(ContractError {
                        location: format!("stage '{}', quantity '{}'", stage.name, q.name),
                        message: format!(
                            "declared unit {} but the name implies {} (unit mismatch)",
                            q.unit, expected
                        ),
                    });
                }
            }
        }
    }

    // Dtype across the tub→model boundary.
    if frames.dtype != DType::F32 {
        errors.push(ContractError {
            location: "tub→model handoff".to_string(),
            message: format!(
                "frames cross the boundary as {} but the models consume f32; \
                 normalise before the forward pass (dtype mismatch)",
                frames.dtype
            ),
        });
    }

    // Model graph: symbolic shape propagation, then the frame-slice check.
    let mut feature_dim = 0usize;
    let mut total_params = 0u64;
    match validate_model(model) {
        Ok(report) => {
            feature_dim = report.feature_dim;
            total_params = report.total_params;
        }
        Err(graph_errors) => {
            errors.extend(graph_errors.into_iter().map(|e| ContractError {
                location: format!("model '{}', {}", model.name, e.location),
                message: e.message,
            }));
        }
    }
    match layout.frame_dims(&model.input) {
        None => errors.push(ContractError {
            location: format!("model '{}'", model.name),
            message: format!(
                "input rank {} does not match the declared {layout:?} layout (rank {})",
                model.input.len(),
                layout.rank()
            ),
        }),
        Some((c, h, w)) => {
            if (c, h, w) != (frames.channels, frames.height, frames.width) {
                errors.push(ContractError {
                    location: format!("model '{}'", model.name),
                    message: format!(
                        "expects {c}x{h}x{w} frames but the tub produces {}x{}x{} \
                         (shape mismatch)",
                        frames.channels, frames.height, frames.width
                    ),
                });
            }
        }
    }

    if errors.is_empty() {
        Ok(ContractReport {
            stages: stages.iter().map(|s| s.name.clone()).collect(),
            artifacts: produced,
            quantities_checked,
            feature_dim,
            total_params,
        })
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::LayerSpec;

    /// A minimal valid single-frame model: 3x8x8 frames through a conv and
    /// a dense feature layer.
    fn tiny_model(c: usize, h: usize, w: usize) -> ModelSpec {
        let conv = LayerSpec::Conv2D {
            in_channels: c,
            filters: 4,
            kernel: 3,
            stride: 1,
        };
        let flat = LayerSpec::Chain(vec![conv.clone(), LayerSpec::Flatten])
            .output_shape(&[1, c, h, w])
            .map(|s| s[1])
            .unwrap_or(0);
        ModelSpec {
            name: "tiny".to_string(),
            input: vec![1, c, h, w],
            layers: vec![
                conv,
                LayerSpec::Flatten,
                LayerSpec::Dense {
                    input: flat,
                    output: 16,
                },
            ],
            aux_width: None,
            merge: Vec::new(),
            heads: vec![(
                "steering".to_string(),
                vec![LayerSpec::Dense {
                    input: 16,
                    output: 1,
                }],
            )],
            declared_params: None,
            declared_feature_dim: None,
        }
    }

    fn frames(c: usize, h: usize, w: usize) -> FrameContract {
        FrameContract {
            channels: c,
            height: h,
            width: w,
            dtype: DType::F32,
        }
    }

    #[test]
    fn standard_chain_validates_clean() {
        let report = validate_pipeline(
            &standard_stages(true),
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect("standard chain is contract-clean");
        assert_eq!(report.stages.len(), 7);
        assert_eq!(*report.artifacts.last().unwrap(), ArtifactKind::EvalReport);
        assert!(report.quantities_checked >= 10);
        assert_eq!(report.feature_dim, 16);
        assert!(report.total_params > 0);
    }

    #[test]
    fn skipping_clean_still_validates() {
        let report = validate_pipeline(
            &standard_stages(false),
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect("clean-less chain is contract-clean");
        assert_eq!(report.stages.len(), 6);
        assert!(!report.stages.contains(&"clean".to_string()));
    }

    #[test]
    fn unit_mismatch_is_rejected() {
        // Seconds declared where the name demands bytes.
        let mut stages = standard_stages(true);
        let upload = stages
            .iter_mut()
            .find(|s| s.name == "provision+upload")
            .unwrap();
        let q = upload
            .reports
            .iter_mut()
            .find(|q| q.name == "tub_bytes")
            .unwrap();
        q.unit = Unit::Seconds;
        let errors = validate_pipeline(
            &stages,
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect_err("seconds-for-bytes must be rejected");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].location.contains("tub_bytes"), "{}", errors[0]);
        assert!(errors[0].message.contains("unit mismatch"), "{}", errors[0]);
        assert!(errors[0].message.contains("seconds"), "{}", errors[0]);
        assert!(errors[0].message.contains("bytes"), "{}", errors[0]);
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        // Model trained for 3x8x8 frames, tub produces 1x4x4.
        let errors = validate_pipeline(
            &standard_stages(true),
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(1, 4, 4),
        )
        .expect_err("frame-shape mismatch must be rejected");
        assert!(
            errors.iter().any(|e| e.message.contains("shape mismatch")),
            "{}",
            format_contract_errors(&errors)
        );
        assert!(errors.iter().any(|e| e.message.contains("1x4x4")));
    }

    #[test]
    fn stage_ordering_violation_is_rejected() {
        // Train hoisted before the tub ever reaches the GPU node.
        let mut stages = standard_stages(true);
        let train_idx = stages.iter().position(|s| s.name == "train").unwrap();
        let train = stages.remove(train_idx);
        stages.insert(0, train);
        let errors = validate_pipeline(
            &stages,
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect_err("train-before-upload must be rejected");
        assert!(
            errors.iter().any(|e| e.location.contains("'train'")
                && e.message.contains("stage ordering violation")
                && e.message.contains("remote-tub")),
            "{}",
            format_contract_errors(&errors)
        );
    }

    #[test]
    fn u8_frames_are_rejected() {
        let mut f = frames(3, 8, 8);
        f.dtype = DType::U8;
        let errors = validate_pipeline(
            &standard_stages(true),
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &f,
        )
        .expect_err("u8 handoff must be rejected");
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("dtype mismatch"), "{}", errors[0]);
    }

    #[test]
    fn duplicate_producer_is_rejected() {
        let mut stages = standard_stages(true);
        stages[2] = stages[2].clone().produces(ArtifactKind::RawTub);
        let errors = validate_pipeline(
            &stages,
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect_err("double production must be rejected");
        assert!(errors
            .iter()
            .any(|e| e.message.contains("already produced")));
    }

    #[test]
    fn dead_artifact_is_rejected() {
        // An extra producer whose artifact nothing consumes.
        let mut stages = standard_stages(false);
        stages[0] = stages[0].clone().produces(ArtifactKind::CleanTub);
        let errors = validate_pipeline(
            &stages,
            &tiny_model(3, 8, 8),
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect_err("dead artifact must be rejected");
        assert!(errors
            .iter()
            .any(|e| e.message.contains("never consumed") && e.location.contains("clean-tub")));
    }

    #[test]
    fn model_graph_errors_surface_as_contract_errors() {
        let mut model = tiny_model(3, 8, 8);
        // Break the dense feature layer's input width.
        if let LayerSpec::Dense { input, .. } = &mut model.layers[2] {
            *input += 1;
        }
        let errors = validate_pipeline(
            &standard_stages(true),
            &model,
            FrameLayout::Bchw,
            &frames(3, 8, 8),
        )
        .expect_err("inconsistent graph must be rejected");
        assert!(errors.iter().any(|e| e.location.contains("model 'tiny'")));
    }

    #[test]
    fn sequence_layouts_slice_the_right_dims() {
        assert_eq!(
            FrameLayout::Btchw.frame_dims(&[1, 5, 3, 8, 8]),
            Some((3, 8, 8))
        );
        assert_eq!(
            FrameLayout::Bcthw.frame_dims(&[1, 3, 5, 8, 8]),
            Some((3, 8, 8))
        );
        assert_eq!(FrameLayout::Bchw.frame_dims(&[1, 5, 3, 8, 8]), None);
    }

    #[test]
    fn canonical_units_follow_the_suffix_convention() {
        assert_eq!(canonical_unit("upload_s"), Some(Unit::Seconds));
        assert_eq!(canonical_unit("tub_bytes"), Some(Unit::Bytes));
        assert_eq!(canonical_unit("goodput_bps"), Some(Unit::BytesPerSec));
        assert_eq!(canonical_unit("planned_epochs"), Some(Unit::Epochs));
        assert_eq!(canonical_unit("kept_records"), Some(Unit::Records));
        assert_eq!(canonical_unit("autonomy"), None);
    }
}
