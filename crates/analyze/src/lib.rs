//! `autolearn-analyze`: workspace static analysis.
//!
//! Two subsystems, both dependency-free:
//!
//! * [`lint`] — a source lint engine over the workspace's `.rs` files
//!   with a pluggable [`lint::rules::Rule`] trait, an allowlist
//!   (`crates/analyze/allow.toml` + inline `analyze::allow(...)`
//!   comments) and human / JSON reports. Run it with
//!   `cargo run -p autolearn-analyze -- --workspace` or
//!   `scripts/analyze.sh`.
//! * [`graph`] — a static model-graph validator that propagates shapes
//!   symbolically through a [`graph::ModelSpec`] without allocating
//!   tensors. `autolearn-nn`'s trainer and `autolearn-core`'s pipeline
//!   call [`validate_model`] before any training step runs.
//! * [`contract`] — a static pipeline contract pass over the whole
//!   continuum chain: stage ordering, artifact flow, units of reported
//!   quantities and the tub→model tensor handoff are all checked by
//!   [`contract::validate_pipeline`] before any simulated time is spent.
//!   `autolearn-core`'s `Pipeline::preflight` runs it on every config.
//!
//! This crate must stay at the bottom of the workspace dependency graph
//! (everything may depend on it; it depends on nothing), so keep it free
//! of even the vendored shims.

/// Static pipeline contract pass (stages, artifacts, units, shapes).
pub mod contract;
/// Static model-graph validator (symbolic shape propagation).
pub mod graph;
/// Workspace source lint engine.
pub mod lint;

pub use contract::{validate_pipeline, ContractError, ContractReport, StageSpec};
pub use graph::{validate_model, GraphError, GraphReport, LayerSpec, ModelSpec};
pub use lint::{Linter, LintOutcome};
