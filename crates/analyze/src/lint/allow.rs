//! Checked-in allowlist for lint findings.
//!
//! The file format is a small, hand-parsed subset of TOML (this crate is
//! dependency-free): an array of `[[allow]]` tables with string values.
//!
//! ```toml
//! [[allow]]
//! rule = "no-unwrap-in-lib"      # or "*" for every rule
//! path = "shims/*"               # exact path, or prefix glob with a trailing *
//! reason = "vendored shims mirror upstream APIs"
//! ```
//!
//! Every entry must carry a non-empty `reason`; allowlisting without a
//! justification defeats the point of the audit trail.

use super::rules::Finding;

/// One allowlist entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AllowEntry {
    /// Rule id this entry silences, or `*` for all rules.
    pub rule: String,
    /// Workspace-relative path; a trailing `*` makes it a prefix match.
    pub path: String,
    /// Why the findings are acceptable (required).
    pub reason: String,
}

impl AllowEntry {
    /// Does this entry cover `f`?
    pub fn matches(&self, f: &Finding) -> bool {
        let rule_ok = self.rule == "*" || self.rule == f.rule;
        let path_ok = match self.path.strip_suffix('*') {
            Some(prefix) => f.path.starts_with(prefix),
            None => f.path == self.path,
        };
        rule_ok && path_ok
    }
}

/// The parsed allowlist.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// First entry covering `f`, if any.
    pub fn covering(&self, f: &Finding) -> Option<&AllowEntry> {
        self.entries.iter().find(|e| e.matches(f))
    }

    /// Parse the allowlist text; returns an error message naming the
    /// offending line on malformed input.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        let mut current: Option<AllowEntry> = None;

        for (i, raw) in text.lines().enumerate() {
            let line = strip_line_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(e) = current.take() {
                    finish(e, &mut entries)?;
                }
                current = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                });
                continue;
            }
            let Some((key, value)) = parse_assignment(line) else {
                return Err(format!("allowlist line {}: cannot parse `{raw}`", i + 1));
            };
            let Some(entry) = current.as_mut() else {
                return Err(format!(
                    "allowlist line {}: `{key}` outside an [[allow]] table",
                    i + 1
                ));
            };
            match key {
                "rule" => entry.rule = value,
                "path" => entry.path = value,
                "reason" => entry.reason = value,
                other => {
                    return Err(format!("allowlist line {}: unknown key `{other}`", i + 1));
                }
            }
        }
        if let Some(e) = current.take() {
            finish(e, &mut entries)?;
        }
        Ok(Allowlist { entries })
    }
}

fn finish(e: AllowEntry, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    if e.rule.is_empty() || e.path.is_empty() {
        return Err(format!("allowlist entry missing rule or path: {e:?}"));
    }
    if e.reason.trim().is_empty() {
        return Err(format!(
            "allowlist entry for {} on {} has no reason",
            e.rule, e.path
        ));
    }
    entries.push(e);
    Ok(())
}

/// Strip a `#`-comment that is not inside a quoted string.
fn strip_line_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `key = "value"`.
fn parse_assignment(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let rest = rest.trim();
    let value = rest.strip_prefix('"')?.strip_suffix('"')?;
    Some((key.trim(), value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            crate_name: "x".to_string(),
            line: 1,
            message: String::new(),
            excerpt: String::new(),
        }
    }

    #[test]
    fn parses_entries_and_matches_globs() {
        let text = r#"
# seeded allowlist
[[allow]]
rule = "no-unwrap-in-lib"
path = "shims/*"
reason = "vendored shims"

[[allow]]
rule = "*"
path = "crates/nn/src/tensor.rs"
reason = "kernel file"
"#;
        let allow = Allowlist::parse(text).expect("parses");
        assert_eq!(allow.entries.len(), 2);
        assert!(allow
            .covering(&finding("no-unwrap-in-lib", "shims/rand/src/lib.rs"))
            .is_some());
        assert!(allow
            .covering(&finding("no-unwrap-in-lib", "crates/tub/src/tub.rs"))
            .is_none());
        assert!(allow
            .covering(&finding("panic-audit", "crates/nn/src/tensor.rs"))
            .is_some());
    }

    #[test]
    fn reason_is_mandatory() {
        let text = "[[allow]]\nrule = \"x\"\npath = \"y\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let text = "[[allow]]\nrule = \"x\"\npath = \"y\"\nreason = \"z\"\nbogus = \"w\"\n";
        assert!(Allowlist::parse(text).is_err());
    }
}
