//! Baseline ratchet: compare a lint run against a committed snapshot.
//!
//! CI commits the analyzer's `--json` output as `analyze-baseline.json`.
//! A later run *regresses* when any `(rule, crate)` active-finding count —
//! or any per-rule allowlisted count — exceeds the snapshot: new debt is
//! rejected even while old, allowlisted debt is tolerated. When counts
//! shrink the caller rewrites the snapshot, so the baseline only ever
//! ratchets downward.
//!
//! The JSON parser here is hand-rolled: this crate sits at the bottom of
//! the dependency graph and deliberately uses no serde (see crate docs).

use std::collections::BTreeMap;

use super::LintOutcome;

/// Counts extracted from one lint run or one committed snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// Active findings: rule id → crate name → count.
    pub rules: BTreeMap<String, BTreeMap<String, usize>>,
    /// Allowlisted findings: rule id → count.
    pub allowlisted_by_rule: BTreeMap<String, usize>,
}

impl Baseline {
    /// Snapshot the counts of a finished lint run.
    pub fn from_outcome(outcome: &LintOutcome) -> Baseline {
        let mut rules: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for f in &outcome.active {
            *rules
                .entry(f.rule.to_string())
                .or_default()
                .entry(f.crate_name.clone())
                .or_default() += 1;
        }
        let mut allowlisted_by_rule: BTreeMap<String, usize> = BTreeMap::new();
        for f in &outcome.allowlisted {
            *allowlisted_by_rule.entry(f.rule.to_string()).or_default() += 1;
        }
        Baseline {
            rules,
            allowlisted_by_rule,
        }
    }

    /// Parse a committed snapshot (the analyzer's own `--json` output).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let Json::Object(top) = value else {
            return Err("baseline: top-level value must be an object".to_string());
        };

        let mut baseline = Baseline::default();
        if let Some(Json::Object(rules)) = top.get("rules") {
            for (rule, crates) in rules {
                let Json::Object(crates) = crates else {
                    return Err(format!("baseline: rules.{rule} must be an object"));
                };
                let entry = baseline.rules.entry(rule.clone()).or_default();
                for (krate, count) in crates {
                    entry.insert(krate.clone(), count.as_count(rule)?);
                }
            }
        }
        if let Some(Json::Object(allow)) = top.get("allowlisted_by_rule") {
            for (rule, count) in allow {
                baseline
                    .allowlisted_by_rule
                    .insert(rule.clone(), count.as_count(rule)?);
            }
        }
        Ok(baseline)
    }
}

/// Outcome of a current-vs-baseline comparison.
#[derive(Debug, Default)]
pub struct Comparison {
    /// Human-readable descriptions of every count that grew. Empty means
    /// the run is no worse than the snapshot.
    pub regressions: Vec<String>,
    /// True when at least one count shrank (or a key vanished) — the
    /// caller should rewrite the snapshot to lock in the improvement.
    pub improved: bool,
}

/// Compare a fresh run against the committed snapshot.
pub fn compare(current: &Baseline, baseline: &Baseline) -> Comparison {
    let mut cmp = Comparison::default();

    for (rule, crates) in &current.rules {
        for (krate, &count) in crates {
            let base = baseline
                .rules
                .get(rule)
                .and_then(|c| c.get(krate))
                .copied()
                .unwrap_or(0);
            if count > base {
                cmp.regressions.push(format!(
                    "rule `{rule}` in crate `{krate}`: {count} active findings (baseline {base})"
                ));
            }
        }
    }
    for (rule, &count) in &current.allowlisted_by_rule {
        let base = baseline.allowlisted_by_rule.get(rule).copied().unwrap_or(0);
        if count > base {
            cmp.regressions.push(format!(
                "rule `{rule}`: {count} allowlisted findings (baseline {base}) — \
                 fix the code instead of growing the allowlist"
            ));
        }
    }

    let current_count = |rule: &str, krate: &str| {
        current
            .rules
            .get(rule)
            .and_then(|c| c.get(krate))
            .copied()
            .unwrap_or(0)
    };
    cmp.improved = baseline.rules.iter().any(|(rule, crates)| {
        crates
            .iter()
            .any(|(krate, &base)| current_count(rule, krate) < base)
    }) || baseline.allowlisted_by_rule.iter().any(|(rule, &base)| {
        current.allowlisted_by_rule.get(rule).copied().unwrap_or(0) < base
    });
    cmp
}

/// Minimal JSON value — just enough to read the analyzer's own output.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Object(BTreeMap<String, Json>),
    Array(Vec<Json>),
    String(String),
    Number(f64),
    Bool(bool),
    Null,
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("baseline: trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// This value as a non-negative finding count.
    fn as_count(&self, key: &str) -> Result<usize, String> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as usize),
            other => Err(format!("baseline: count for `{key}` must be a non-negative integer, got {other:?}")),
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("baseline: unexpected byte {:?} at {}", *c as char, *pos)),
        None => Err("baseline: unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("baseline: invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while let Some(c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            *pos += 1;
        } else {
            break;
        }
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Number)
        .ok_or_else(|| format!("baseline: invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("baseline: unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| "baseline: invalid \\u escape".to_string())?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("baseline: invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(&c) => {
                // The analyzer only emits ASCII, but read UTF-8 correctly
                // anyway: collect the full multi-byte sequence.
                let len = match c {
                    c if c < 0x80 => 1,
                    c if c >= 0xF0 => 4,
                    c if c >= 0xE0 => 3,
                    _ => 2,
                };
                let chunk = bytes
                    .get(*pos..*pos + len)
                    .and_then(|b| std::str::from_utf8(b).ok())
                    .ok_or_else(|| "baseline: invalid UTF-8 in string".to_string())?;
                out.push_str(chunk);
                *pos += len;
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("baseline: expected object key at byte {}", *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("baseline: expected `:` at byte {}", *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Object(map));
            }
            _ => return Err(format!("baseline: expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            _ => return Err(format!("baseline: expected `,` or `]` at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::report::render_json;
    use super::super::source::SourceFile;
    use super::super::Linter;
    use super::*;

    fn outcome_with_finding() -> LintOutcome {
        let src = "pub fn f() { x.unwrap(); }\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", "autolearn-x", src);
        Linter::new().run_files(vec![file])
    }

    #[test]
    fn round_trips_through_render_json() {
        let outcome = outcome_with_finding();
        let parsed = Baseline::parse(&render_json(&outcome)).expect("own JSON parses");
        assert_eq!(parsed, Baseline::from_outcome(&outcome));
        assert!(parsed.rules.contains_key("no-unwrap-in-lib"));
    }

    #[test]
    fn equal_counts_are_neither_regression_nor_improvement() {
        let snapshot = Baseline::from_outcome(&outcome_with_finding());
        let cmp = compare(&snapshot, &snapshot);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(!cmp.improved);
    }

    #[test]
    fn count_above_baseline_is_a_regression() {
        let current = Baseline::from_outcome(&outcome_with_finding());
        let cmp = compare(&current, &Baseline::default());
        assert!(
            cmp.regressions.iter().any(|r| r.contains("no-unwrap-in-lib")),
            "{:?}",
            cmp.regressions
        );
        assert!(!cmp.improved);
    }

    #[test]
    fn count_below_baseline_shrinks_the_snapshot()  {
        let snapshot = Baseline::from_outcome(&outcome_with_finding());
        let cmp = compare(&Baseline::default(), &snapshot);
        assert!(cmp.regressions.is_empty(), "{:?}", cmp.regressions);
        assert!(cmp.improved);
    }

    #[test]
    fn allowlist_growth_is_a_regression() {
        let mut current = Baseline::default();
        current
            .allowlisted_by_rule
            .insert("no-unwrap-in-lib".to_string(), 3);
        let mut snapshot = Baseline::default();
        snapshot
            .allowlisted_by_rule
            .insert("no-unwrap-in-lib".to_string(), 2);
        let cmp = compare(&current, &snapshot);
        assert_eq!(cmp.regressions.len(), 1);
        assert!(cmp.regressions[0].contains("allowlist"));
    }

    #[test]
    fn malformed_snapshots_are_rejected() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"rules\": {\"r\": {\"c\": -1}}}").is_err());
        assert!(Baseline::parse("{\"rules\": 7}").is_ok_and(|b| b.rules.is_empty()));
        assert!(Baseline::parse("{} trailing").is_err());
    }

    #[test]
    fn parser_handles_escapes_arrays_and_literals() {
        let v = Json::parse(r#"{"a\n\"b": [1, true, null, "x"], "n": -2.5e1}"#).unwrap();
        let Json::Object(map) = v else { panic!("object") };
        assert!(map.contains_key("a\n\"b"));
        assert_eq!(map.get("n"), Some(&Json::Number(-25.0)));
    }
}
