//! Report rendering: human-readable text and a machine-readable JSON
//! summary (counts per rule per crate). JSON is emitted by hand — this
//! crate is dependency-free by design, so it cannot use the serde shims.

use std::collections::BTreeMap;

use super::rules::Finding;
use super::LintOutcome;

/// Human-readable report: findings grouped by rule, then `file:line`.
pub fn render_human(outcome: &LintOutcome) -> String {
    let mut out = String::new();
    if outcome.active.is_empty() {
        out.push_str(&format!(
            "analyze: clean — {} files across {} crates, 0 active findings ({} allowlisted)\n",
            outcome.files_scanned,
            outcome.crates.len(),
            outcome.allowlisted.len()
        ));
        return out;
    }

    let mut by_rule: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in &outcome.active {
        by_rule.entry(f.rule).or_default().push(f);
    }
    for (rule, findings) in &by_rule {
        out.push_str(&format!("{rule} ({} findings)\n", findings.len()));
        for f in findings {
            out.push_str(&format!("  {}:{}  {}\n", f.path, f.line, f.message));
            if !f.excerpt.is_empty() {
                out.push_str(&format!("      > {}\n", truncate(&f.excerpt, 100)));
            }
        }
    }
    out.push_str(&format!(
        "analyze: {} active findings across {} rules ({} files scanned, {} allowlisted)\n",
        outcome.active.len(),
        by_rule.len(),
        outcome.files_scanned,
        outcome.allowlisted.len()
    ));
    out
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max).collect();
        format!("{cut}...")
    }
}

/// Machine-readable JSON summary:
///
/// ```json
/// {
///   "files_scanned": 120,
///   "active": 3,
///   "allowlisted": 41,
///   "rules": { "no-unwrap-in-lib": { "autolearn-tub": 2, "autolearn-net": 1 } }
/// }
/// ```
pub fn render_json(outcome: &LintOutcome) -> String {
    let mut rules: BTreeMap<&str, BTreeMap<&str, usize>> = BTreeMap::new();
    for f in &outcome.active {
        *rules
            .entry(f.rule)
            .or_default()
            .entry(f.crate_name.as_str())
            .or_default() += 1;
    }
    let mut allow_rules: BTreeMap<&str, usize> = BTreeMap::new();
    for f in &outcome.allowlisted {
        *allow_rules.entry(f.rule).or_default() += 1;
    }

    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", outcome.files_scanned));
    out.push_str(&format!("  \"active\": {},\n", outcome.active.len()));
    out.push_str(&format!(
        "  \"allowlisted\": {},\n",
        outcome.allowlisted.len()
    ));

    out.push_str("  \"rules\": {");
    let mut first_rule = true;
    for (rule, crates) in &rules {
        if !first_rule {
            out.push(',');
        }
        first_rule = false;
        out.push_str(&format!("\n    {}: {{", json_string(rule)));
        let mut first_crate = true;
        for (krate, count) in crates {
            if !first_crate {
                out.push(',');
            }
            first_crate = false;
            out.push_str(&format!("\n      {}: {count}", json_string(krate)));
        }
        out.push_str("\n    }");
    }
    out.push_str(if rules.is_empty() { "},\n" } else { "\n  },\n" });

    out.push_str("  \"allowlisted_by_rule\": {");
    let mut first = true;
    for (rule, count) in &allow_rules {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {}: {count}", json_string(rule)));
    }
    out.push_str(if allow_rules.is_empty() { "}\n" } else { "\n  }\n" });
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping (rule ids / crate names / paths are
/// ASCII, but escape defensively anyway).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::super::source::SourceFile;
    use super::super::Linter;
    use super::*;

    fn outcome_with_finding() -> LintOutcome {
        let src = "pub fn f() { x.unwrap(); }\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", "autolearn-x", src);
        Linter::new().run_files(vec![file])
    }

    #[test]
    fn human_report_groups_by_rule() {
        let text = render_human(&outcome_with_finding());
        assert!(text.contains("no-unwrap-in-lib"));
        assert!(text.contains("crates/x/src/lib.rs:1"));
    }

    #[test]
    fn json_summary_counts_per_rule_per_crate() {
        let json = render_json(&outcome_with_finding());
        assert!(json.contains("\"no-unwrap-in-lib\""));
        assert!(json.contains("\"autolearn-x\": 1"));
        assert!(json.contains("\"files_scanned\": 1"));
    }

    #[test]
    fn clean_outcome_renders_clean() {
        let outcome = Linter::new().run_files(Vec::new());
        assert!(render_human(&outcome).contains("clean"));
        assert!(render_json(&outcome).contains("\"active\": 0"));
    }
}
