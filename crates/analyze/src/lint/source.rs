//! Per-file source model for the lint rules.
//!
//! A [`SourceFile`] carries three parallel per-line views of a `.rs` file:
//!
//! * `lines` — the raw text,
//! * `code` — the text with comments removed and string/char literal
//!   *contents* blanked to spaces (delimiters kept), so token-level rules
//!   never fire on prose,
//! * `comments` — just the comment text of each line (empty when none),
//!   used for doc detection and audit-annotation lookups.
//!
//! It also records which lines sit inside `#[cfg(test)]`-gated blocks so
//! every rule can skip test code uniformly.

/// One workspace source file, preprocessed for linting.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Cargo package name the file belongs to.
    pub crate_name: String,
    /// Raw lines.
    pub lines: Vec<String>,
    /// Comment/string-stripped view (same line count as `lines`).
    pub code: Vec<String>,
    /// Comment text per line (`""` when the line has no comment).
    pub comments: Vec<String>,
    /// True for lines inside a `#[cfg(test)]`-gated block.
    pub in_test: Vec<bool>,
    /// True for binary targets (`src/bin/**`, `src/main.rs`): the
    /// `*-in-lib` rules do not apply there.
    pub is_bin: bool,
}

impl SourceFile {
    /// Preprocess `text` into the three views.
    pub fn parse(rel_path: &str, crate_name: &str, text: &str) -> SourceFile {
        let (code, comments) = strip(text);
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let in_test = mark_cfg_test(&code);
        let is_bin = rel_path.contains("/bin/") || rel_path.ends_with("main.rs");
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.to_string(),
            lines,
            code,
            comments,
            in_test,
            is_bin,
        }
    }

    /// Comment text attached to `line` (0-based) or up to `above` lines
    /// before it — for "annotate this construct" rules.
    pub fn comment_near(&self, line: usize, above: usize) -> String {
        if self.comments.is_empty() {
            return String::new();
        }
        let hi = line.min(self.comments.len() - 1);
        let lo = hi.saturating_sub(above);
        self.comments[lo..=hi].join("\n")
    }
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

/// Split `text` into a comment-and-string-blanked code view plus a
/// comment-only view, both line-aligned with the input.
fn strip(text: &str) -> (Vec<String>, Vec<String>) {
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;
    let chars: Vec<char> = text.chars().collect();
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied().unwrap_or('\0');

        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }

        match state {
            State::Code => match c {
                '/' if next == '/' => {
                    state = State::LineComment;
                    comment_line.push_str("//");
                    code_line.push_str("  ");
                    i += 2;
                }
                '/' if next == '*' => {
                    state = State::BlockComment(1);
                    comment_line.push_str("/*");
                    code_line.push_str("  ");
                    i += 2;
                }
                '"' => {
                    state = State::Str;
                    code_line.push('"');
                    i += 1;
                }
                'r' if next == '"' || next == '#' => {
                    // Possible raw string r"..." / r#"..."#.
                    let mut j = i + 1;
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        state = State::RawStr(hashes);
                        for _ in i..=j {
                            code_line.push(' ');
                        }
                        code_line.pop();
                        code_line.push('"');
                        i = j + 1;
                    } else {
                        code_line.push(c);
                        i += 1;
                    }
                }
                '\'' => {
                    // Distinguish char literal from lifetime: a lifetime is
                    // `'ident` NOT followed by a closing quote.
                    let n2 = chars.get(i + 2).copied().unwrap_or('\0');
                    let is_lifetime =
                        (next.is_alphanumeric() || next == '_') && n2 != '\'' && next != '\\';
                    if is_lifetime {
                        code_line.push(c);
                        i += 1;
                    } else {
                        state = State::CharLit;
                        code_line.push('\'');
                        i += 1;
                    }
                }
                _ => {
                    code_line.push(c);
                    i += 1;
                }
            },
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '*' && next == '/' {
                    comment_line.push_str("*/");
                    if depth == 1 {
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                    i += 2;
                } else if c == '/' && next == '*' {
                    comment_line.push_str("/*");
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => match c {
                '\\' => {
                    code_line.push(' ');
                    if next != '\0' && next != '\n' {
                        code_line.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '"' => {
                    state = State::Code;
                    code_line.push('"');
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        code_line.push('"');
                        for _ in 0..hashes {
                            code_line.push(' ');
                        }
                        state = State::Code;
                        i = j;
                    } else {
                        code_line.push(' ');
                        i += 1;
                    }
                } else {
                    code_line.push(' ');
                    i += 1;
                }
            }
            State::CharLit => match c {
                '\\' => {
                    code_line.push(' ');
                    if next != '\0' && next != '\n' {
                        code_line.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                '\'' => {
                    state = State::Code;
                    code_line.push('\'');
                    i += 1;
                }
                _ => {
                    code_line.push(' ');
                    i += 1;
                }
            },
        }
    }
    code.push(code_line);
    comments.push(comment_line);

    // Keep the views aligned with `str::lines()` of the input, which drops
    // a trailing empty segment after a final newline.
    if text.ends_with('\n') {
        code.pop();
        comments.pop();
    }
    (code, comments)
}

/// Mark the line span of every `#[cfg(test)]`-gated item (the attribute
/// line through the matching close brace of the item's body).
fn mark_cfg_test(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    for (start, line) in code.iter().enumerate() {
        if !line.contains("#[cfg(test)]") {
            continue;
        }
        // Scan forward for the item's opening brace; a `;` first means a
        // braceless item (e.g. `mod tests;`) — only the attr line is test.
        let mut depth = 0i32;
        let mut opened = false;
        'scan: for (row, l) in code.iter().enumerate().skip(start) {
            for c in l.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened => {
                        in_test[start] = true;
                        break 'scan;
                    }
                    _ => {}
                }
            }
            in_test[row] = true;
            if opened && depth <= 0 {
                break;
            }
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = "let x = \"call .unwrap() here\"; // .unwrap() in comment\nlet y = 1;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.code[0].contains("unwrap"), "{:?}", f.code[0]);
        assert!(f.comments[0].contains(".unwrap() in comment"));
        assert_eq!(f.code[1], "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let src = "let s = r#\"panic!(boom)\"#; let c = 'x'; let lt: &'static str = \"\";\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.code[0].contains("panic!"), "{:?}", f.code[0]);
        assert!(f.code[0].contains("'static"), "{:?}", f.code[0]);
    }

    #[test]
    fn nested_block_comments_end_correctly() {
        let src = "/* a /* b */ still comment */ let z = 2;\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(f.code[0].contains("let z = 2;"), "{:?}", f.code[0]);
        assert!(!f.code[0].contains("still"), "{:?}", f.code[0]);
    }

    #[test]
    fn cfg_test_blocks_are_marked() {
        let src = "pub fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\npub fn c() {}\n";
        let f = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        assert!(!f.in_test[0]);
        assert!(f.in_test[1] && f.in_test[2] && f.in_test[3] && f.in_test[4]);
        assert!(!f.in_test[5]);
    }

    #[test]
    fn bin_paths_are_flagged() {
        let f = SourceFile::parse("crates/bench/src/bin/exp.rs", "bench", "fn main() {}\n");
        assert!(f.is_bin);
        let g = SourceFile::parse("crates/nn/src/lib.rs", "nn", "\n");
        assert!(!g.is_bin);
    }
}
