//! Workspace lint engine.
//!
//! Discovers workspace members from the root `Cargo.toml`, walks their
//! `src/` trees (skipping `tests/` and `benches/` directories — and
//! `#[cfg(test)]` blocks inside files, handled per-line by the rules),
//! runs every [`Rule`](rules::Rule) and partitions findings into active
//! vs allowlisted.

/// Allowlist file format and matching.
pub mod allow;
/// Baseline ratchet: compare a run against a committed snapshot.
pub mod baseline;
/// Human and JSON report rendering.
pub mod report;
/// The `Rule` trait and built-in rules.
pub mod rules;
/// Preprocessed per-file source views.
pub mod source;

use std::fs;
use std::path::{Path, PathBuf};

use allow::{AllowEntry, Allowlist};
use rules::{Finding, Rule};
use source::SourceFile;

/// Result of one lint run.
#[derive(Debug)]
pub struct LintOutcome {
    /// Findings not covered by any allowlist entry or inline suppression.
    pub active: Vec<Finding>,
    /// Findings silenced by the allowlist or an inline
    /// `analyze::allow(...)` comment.
    pub allowlisted: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Package names that contributed files, in scan order.
    pub crates: Vec<String>,
}

/// Engine configuration.
pub struct Linter {
    rules: Vec<Box<dyn Rule>>,
    allowlist: Allowlist,
}

impl Default for Linter {
    fn default() -> Self {
        Self::new()
    }
}

impl Linter {
    /// Engine with the built-in rule set and an empty allowlist.
    pub fn new() -> Linter {
        Linter {
            rules: rules::builtin_rules(),
            allowlist: Allowlist::default(),
        }
    }

    /// Replace the rule set (tests plug in single rules).
    pub fn with_rules(mut self, rules: Vec<Box<dyn Rule>>) -> Linter {
        self.rules = rules;
        self
    }

    /// Attach a parsed allowlist.
    pub fn with_allowlist(mut self, allowlist: Allowlist) -> Linter {
        self.allowlist = allowlist;
        self
    }

    /// Load the allowlist from `path` (missing file = empty list).
    pub fn with_allowlist_file(self, path: &Path) -> Result<Linter, String> {
        match fs::read_to_string(path) {
            Ok(text) => Ok(self.with_allowlist(Allowlist::parse(&text)?)),
            Err(_) => Ok(self),
        }
    }

    /// The attached allowlist entries (for report rendering).
    pub fn allow_entries(&self) -> &[AllowEntry] {
        &self.allowlist.entries
    }

    /// Ids and descriptions of the attached rules.
    pub fn rule_catalog(&self) -> Vec<(&'static str, &'static str)> {
        self.rules.iter().map(|r| (r.id(), r.description())).collect()
    }

    /// Lint every workspace member found under `root`.
    pub fn run_workspace(&self, root: &Path) -> Result<LintOutcome, String> {
        let members = discover_members(root)?;
        let mut files = Vec::new();
        for m in &members {
            collect_member_sources(root, m, &mut files)?;
        }
        Ok(self.run_files(files))
    }

    /// Lint a prepared set of files (unit tests feed synthetic sources).
    pub fn run_files(&self, files: Vec<SourceFile>) -> LintOutcome {
        let mut active = Vec::new();
        let mut allowlisted = Vec::new();
        let mut crates = Vec::new();
        for file in &files {
            if !crates.contains(&file.crate_name) {
                crates.push(file.crate_name.clone());
            }
            for rule in &self.rules {
                if !rule.applies_to(file) {
                    continue;
                }
                for f in rule.check(file) {
                    if inline_suppressed(file, &f) || self.allowlist.covering(&f).is_some() {
                        allowlisted.push(f);
                    } else {
                        active.push(f);
                    }
                }
            }
        }
        LintOutcome {
            active,
            allowlisted,
            files_scanned: files.len(),
            crates,
        }
    }
}

/// An inline `analyze::allow(<rule>)` comment on the finding's line or the
/// line above silences it.
fn inline_suppressed(file: &SourceFile, f: &Finding) -> bool {
    let needle = format!("analyze::allow({})", f.rule);
    file.comment_near(f.line - 1, 1).contains(&needle)
}

/// One workspace member: package name + directory.
#[derive(Debug, Clone, PartialEq)]
pub struct Member {
    pub name: String,
    pub dir: PathBuf,
}

/// Parse `members = [...]` from the root manifest and expand `dir/*`
/// globs. The root package itself (if the manifest has one) is included.
pub fn discover_members(root: &Path) -> Result<Vec<Member>, String> {
    let manifest_path = root.join("Cargo.toml");
    let manifest = fs::read_to_string(&manifest_path)
        .map_err(|e| format!("cannot read {}: {e}", manifest_path.display()))?;

    let mut dirs: Vec<PathBuf> = Vec::new();
    if package_name(&manifest).is_some() {
        dirs.push(root.to_path_buf());
    }
    for pattern in member_patterns(&manifest)? {
        if let Some(prefix) = pattern.strip_suffix("/*") {
            let base = root.join(prefix);
            let mut expanded: Vec<PathBuf> = fs::read_dir(&base)
                .map_err(|e| format!("cannot expand member glob {pattern}: {e}"))?
                .filter_map(|entry| entry.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            expanded.sort();
            dirs.extend(expanded);
        } else {
            dirs.push(root.join(&pattern));
        }
    }

    let mut members = Vec::new();
    for dir in dirs {
        let text = fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("cannot read {}: {e}", dir.join("Cargo.toml").display()))?;
        let Some(name) = package_name(&text) else {
            continue; // virtual manifest
        };
        members.push(Member { name, dir });
    }
    Ok(members)
}

/// Extract the `members = [ ... ]` string list (possibly multi-line).
fn member_patterns(manifest: &str) -> Result<Vec<String>, String> {
    let Some(start) = manifest.find("members") else {
        return Ok(Vec::new());
    };
    let after = &manifest[start..];
    let open = after
        .find('[')
        .ok_or_else(|| "members key without a [ list".to_string())?;
    let close = after[open..]
        .find(']')
        .ok_or_else(|| "unterminated members list".to_string())?;
    let body = &after[open + 1..open + close];
    Ok(body
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect())
}

/// `name = "..."` out of a manifest's `[package]` table.
fn package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.find("[package]")?;
    for line in manifest[pkg..].lines().skip(1) {
        let t = line.trim();
        if t.starts_with('[') {
            return None; // next table before a name key
        }
        if let Some(rest) = t.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Gather the member's `src/**/*.rs`, skipping `tests`/`benches` dirs.
fn collect_member_sources(
    root: &Path,
    member: &Member,
    out: &mut Vec<SourceFile>,
) -> Result<(), String> {
    let src = member.dir.join("src");
    if !src.is_dir() {
        return Ok(());
    }
    let mut paths = Vec::new();
    walk_rs(&src, &mut paths)?;
    paths.sort();
    for p in paths {
        let text =
            fs::read_to_string(&p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(&p)
            .to_string_lossy()
            .replace('\\', "/");
        out.push(SourceFile::parse(&rel, &member.name, &text));
    }
    Ok(())
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        fs::read_dir(dir).map_err(|e| format!("cannot read dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry failed: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "tests" || name == "benches" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn member_patterns_parse_globs() {
        let manifest = "[workspace]\nmembers = [\"crates/*\", \"tools/one\"]\n";
        assert_eq!(
            member_patterns(manifest).unwrap(),
            vec!["crates/*".to_string(), "tools/one".to_string()]
        );
    }

    #[test]
    fn package_name_is_extracted() {
        let manifest = "[package]\nname = \"autolearn-nn\"\nversion = \"0.1.0\"\n";
        assert_eq!(package_name(manifest).as_deref(), Some("autolearn-nn"));
        assert_eq!(package_name("[workspace]\nmembers = []\n"), None);
    }

    #[test]
    fn inline_suppression_marks_finding_allowlisted() {
        let src = "pub fn f() { x.unwrap() } // analyze::allow(no-unwrap-in-lib): startup only\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        let outcome = Linter::new().run_files(vec![file]);
        assert!(outcome.active.iter().all(|f| f.rule != "no-unwrap-in-lib"));
        assert!(outcome
            .allowlisted
            .iter()
            .any(|f| f.rule == "no-unwrap-in-lib"));
    }

    #[test]
    fn allowlist_partitions_findings() {
        let src = "pub fn f() { x.unwrap(); }\n";
        let file = SourceFile::parse("crates/x/src/lib.rs", "x", src);
        let allow = Allowlist::parse(
            "[[allow]]\nrule = \"*\"\npath = \"crates/x/*\"\nreason = \"legacy\"\n",
        )
        .unwrap();
        let outcome = Linter::new().with_allowlist(allow).run_files(vec![file]);
        assert!(outcome.active.is_empty(), "{:?}", outcome.active);
        assert!(!outcome.allowlisted.is_empty());
    }

    #[test]
    fn discovers_this_workspace() {
        // The crate sits at <root>/crates/analyze.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let members = discover_members(root).expect("discovery works");
        assert!(members.iter().any(|m| m.name == "autolearn-analyze"));
        assert!(members.iter().any(|m| m.name == "autolearn-nn"));
        assert!(members.iter().any(|m| m.name == "autolearn-repro"));
    }
}
