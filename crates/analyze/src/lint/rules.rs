//! Built-in lint rules.
//!
//! Every rule implements [`Rule`] and works on the preprocessed
//! [`SourceFile`] views, so none of them can fire inside comments, string
//! literals or `#[cfg(test)]` blocks (unless a rule opts in). A finding
//! can be suppressed inline with a comment containing
//! `analyze::allow(<rule-id>)` on the same line or the line above, or via
//! the checked-in allowlist (`crates/analyze/allow.toml`).

use super::source::SourceFile;

/// One reported defect.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Rule identifier (e.g. `no-unwrap-in-lib`).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub path: String,
    /// Cargo package the file belongs to.
    pub crate_name: String,
    /// 1-based line number.
    pub line: usize,
    /// What is wrong.
    pub message: String,
    /// The offending raw source line, trimmed.
    pub excerpt: String,
}

/// A pluggable lint rule.
pub trait Rule {
    /// Stable identifier used in reports, allowlists and inline
    /// suppressions.
    fn id(&self) -> &'static str;

    /// One-line description for `--list-rules`.
    fn description(&self) -> &'static str;

    /// Whether the rule runs on this file at all (path-based scoping).
    fn applies_to(&self, file: &SourceFile) -> bool {
        let _ = file;
        true
    }

    /// Scan one file and report findings.
    fn check(&self, file: &SourceFile) -> Vec<Finding>;
}

/// The built-in rule set, in reporting order.
pub fn builtin_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnwrapInLib),
        Box::new(NoExpectInLib),
        Box::new(NoPrintlnInLib),
        Box::new(PanicAudit),
        Box::new(PubItemNeedsDoc),
        Box::new(NoSleepInHotPath),
        Box::new(FloatCastTruncation),
        Box::new(NoUnboundedRetry),
        Box::new(NoWallclockInSim),
        Box::new(NoUnorderedIteration),
        Box::new(NoUnannotatedNarrowing),
        Box::new(NoAllocInKernelLoop),
    ]
}

fn finding(rule: &'static str, file: &SourceFile, line: usize, message: String) -> Finding {
    Finding {
        rule,
        path: file.rel_path.clone(),
        crate_name: file.crate_name.clone(),
        line: line + 1,
        message,
        excerpt: file
            .lines
            .get(line)
            .map(|l| l.trim().to_string())
            .unwrap_or_default(),
    }
}

/// Scan non-test code lines for a needle, with a per-line veto.
fn scan_code<F>(
    rule: &'static str,
    file: &SourceFile,
    needles: &[&str],
    message: F,
) -> Vec<Finding>
where
    F: Fn(&str) -> String,
{
    let mut out = Vec::new();
    for (i, code) in file.code.iter().enumerate() {
        if file.in_test[i] {
            continue;
        }
        for needle in needles {
            if code.contains(needle) {
                out.push(finding(rule, file, i, message(needle)));
                break;
            }
        }
    }
    out
}

/// `Result::unwrap()` / `Option::unwrap()` outside tests turns a
/// recoverable condition into a process abort — on the car for library
/// code, mid-experiment for the bench binaries. Both are in scope; only
/// `#[cfg(test)]` code is exempt.
pub struct NoUnwrapInLib;

impl Rule for NoUnwrapInLib {
    fn id(&self) -> &'static str {
        "no-unwrap-in-lib"
    }

    fn description(&self) -> &'static str {
        "non-test code must not call .unwrap(); propagate errors or document the invariant"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(self.id(), file, &[".unwrap()"], |_| {
            "`.unwrap()` in non-test code; return a Result, handle the None, or use \
             unwrap_or_else with a documented invariant"
                .to_string()
        })
    }
}

/// Like unwrap, but `.expect(...)`: still an abort, just with a message.
pub struct NoExpectInLib;

impl Rule for NoExpectInLib {
    fn id(&self) -> &'static str {
        "no-expect-in-lib"
    }

    fn description(&self) -> &'static str {
        "library code must not call .expect(); propagate errors instead of aborting"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            // `.expect(` but not `.expect_err(` and not our own lint-name
            // strings (those live in string literals and are blanked).
            let mut search = code.as_str();
            while let Some(pos) = search.find(".expect") {
                let after = &search[pos + ".expect".len()..];
                if after.starts_with('(') {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        "`.expect()` in library code; return a Result instead of aborting"
                            .to_string(),
                    ));
                    break;
                }
                search = after;
            }
        }
        out
    }
}

/// Library code writing straight to stdout/stderr bypasses the telemetry
/// layer: the output is invisible to the trace, the flight recorder and
/// the exporters, and it interleaves nondeterministically with whatever
/// the caller prints. Libraries must route run-time observations through
/// `autolearn-obs` (spans, events, metrics) and leave printing to the
/// binaries. Bins are exempt (stdout is their interface), as are the
/// analyzer's own reporting code and the bench crate's human-readable
/// tables.
pub struct NoPrintlnInLib;

const PRINT_NEEDLES: &[&str] = &["println!(", "eprintln!(", "print!(", "eprint!("];

impl Rule for NoPrintlnInLib {
    fn id(&self) -> &'static str {
        "no-println-in-lib"
    }

    fn description(&self) -> &'static str {
        "library code must not print to stdout/stderr; emit obs events/metrics instead"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
            && !file.rel_path.starts_with("crates/analyze/")
            && !file.rel_path.starts_with("crates/bench/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(self.id(), file, PRINT_NEEDLES, |needle| {
            format!(
                "`{}...)` in library code; record an obs event or metric instead of printing",
                needle.trim_end_matches('(')
            )
        })
    }
}

/// `panic!` / `todo!` / `unimplemented!` must carry an
/// `INVARIANT:` comment explaining why the condition is impossible or the
/// stub acceptable.
pub struct PanicAudit;

impl Rule for PanicAudit {
    fn id(&self) -> &'static str {
        "panic-audit"
    }

    fn description(&self) -> &'static str {
        "panic!/todo!/unimplemented! need an adjacent `INVARIANT:` comment"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            for mac in ["panic!(", "todo!(", "unimplemented!("] {
                if code.contains(mac) && !file.comment_near(i, 2).contains("INVARIANT:") {
                    out.push(finding(
                        self.id(),
                        file,
                        i,
                        format!(
                            "`{}...)` without an `INVARIANT:` comment within 2 lines",
                            mac.trim_end_matches('(')
                        ),
                    ));
                    break;
                }
            }
        }
        out
    }
}

/// Every `pub` item that is part of a crate's API surface needs a doc
/// comment. `pub(crate)` / `pub(super)` items and re-exports are exempt.
pub struct PubItemNeedsDoc;

const PUB_ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "unsafe",
];

impl Rule for PubItemNeedsDoc {
    fn id(&self) -> &'static str {
        "pub-item-needs-doc"
    }

    fn description(&self) -> &'static str {
        "public items (pub fn/struct/enum/trait/type/const/static/mod) need /// docs"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let trimmed = code.trim_start();
            let Some(rest) = trimmed.strip_prefix("pub ") else {
                continue;
            };
            let keyword = rest.split_whitespace().next().unwrap_or("");
            if !PUB_ITEM_KEYWORDS.contains(&keyword) {
                continue;
            }
            if is_documented(file, i) {
                continue;
            }
            out.push(finding(
                self.id(),
                file,
                i,
                format!("undocumented public item `pub {keyword} ...`"),
            ));
        }
        out
    }
}

/// Walk upward over attribute lines; the item is documented if the first
/// non-attribute line above carries a `///` or `//!` comment.
fn is_documented(file: &SourceFile, item_line: usize) -> bool {
    let mut i = item_line;
    while i > 0 {
        i -= 1;
        let code = file.code[i].trim();
        let comment = file.comments[i].trim();
        if code.starts_with("#[") || code.ends_with(']') && code.starts_with('#') {
            continue; // attribute
        }
        if code == ")]" || code == "]" {
            // Closer of a multi-line attribute (e.g. a rustfmt-split
            // `#[derive(...)]`): skip up to its opening line.
            while i > 0 && !file.code[i].trim().starts_with("#[") {
                i -= 1;
            }
            continue;
        }
        if code.is_empty() && comment.is_empty() {
            return false; // blank line: doc block (if any) is detached
        }
        if code.is_empty() {
            return comment.starts_with("///") || comment.starts_with("//!");
        }
        return false; // previous line is other code
    }
    false
}

/// `thread::sleep` inside the kernels that run per-frame on the car
/// (nn / sim / tub) stalls the control loop.
pub struct NoSleepInHotPath;

impl Rule for NoSleepInHotPath {
    fn id(&self) -> &'static str {
        "no-sleep-in-hot-path"
    }

    fn description(&self) -> &'static str {
        "no thread::sleep in nn/sim/tub kernels (per-frame control path)"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        ["crates/nn/src/", "crates/sim/src/", "crates/tub/src/"]
            .iter()
            .any(|p| file.rel_path.starts_with(p))
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(self.id(), file, &["thread::sleep"], |_| {
            "thread::sleep in a hot-path crate; drive timing from the simulation clock"
                .to_string()
        })
    }
}

/// Narrowing `as` casts in the nn kernels silently truncate; each one
/// must carry a `cast:` comment stating why the value fits.
pub struct FloatCastTruncation;

impl Rule for FloatCastTruncation {
    fn id(&self) -> &'static str {
        "float-cast-truncation"
    }

    fn description(&self) -> &'static str {
        "`as usize` / `as f32` in crates/nn kernels need a `cast:` comment"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        file.rel_path.starts_with("crates/nn/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let has_cast = [" as usize", " as f32"]
                .iter()
                .any(|n| contains_token_cast(code, n));
            if has_cast && !file.comment_near(i, 1).contains("cast:") {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "narrowing `as` cast without a `cast:` comment on this or the previous line"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// A bare `loop` that drives retries or backoff must be bounded: its body
/// has to consult an attempt cap or a deadline, or the retry storm never
/// ends when the fault never clears.
pub struct NoUnboundedRetry;

const RETRY_TOKENS: &[&str] = &["retry", "backoff"];
const CAP_TOKENS: &[&str] = &["max_attempts", "deadline", ".allows("];

impl Rule for NoUnboundedRetry {
    fn id(&self) -> &'static str {
        "no-unbounded-retry"
    }

    fn description(&self) -> &'static str {
        "`loop` bodies doing retry/backoff must check an attempt cap or deadline"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.is_bin
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] || !contains_keyword(code, "loop") {
                continue;
            }
            let Some(end) = block_end(file, i) else {
                continue;
            };
            let body = file.code[i..=end].join("\n").to_lowercase();
            let retries = RETRY_TOKENS.iter().any(|t| body.contains(t));
            let bounded = CAP_TOKENS.iter().any(|t| body.contains(t));
            if retries && !bounded {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "retry/backoff inside a `loop` with no attempt cap or deadline check"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// Reading the host's wall clock inside simulated code breaks replay: two
/// runs of the same seed would observe different times. Simulated
/// components must derive every timestamp from `SimClock` / `SimTime`.
/// Only `crates/bench` (which measures real host performance) may touch
/// the wall clock.
pub struct NoWallclockInSim;

impl Rule for NoWallclockInSim {
    fn id(&self) -> &'static str {
        "no-wallclock-in-sim"
    }

    fn description(&self) -> &'static str {
        "no SystemTime::now/Instant::now outside crates/bench; use the simulation clock"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        !file.rel_path.starts_with("crates/bench/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        scan_code(
            self.id(),
            file,
            &["SystemTime::now", "Instant::now"],
            |needle| {
                format!(
                    "`{needle}` in simulated code; wall-clock reads break seeded replay — \
                     derive time from SimClock/SimTime"
                )
            },
        )
    }
}

/// Iterating a `HashMap`/`HashSet` in a block that feeds a report, log,
/// or RNG makes the output depend on hasher state, which varies across
/// runs and platforms. Such iterations must be sorted first or use a
/// BTree container.
pub struct NoUnorderedIteration;

/// Iteration forms that surface a hash container's arbitrary order.
const HASH_ITER_HINTS: &[&str] = &[".iter()", ".keys()", ".values()", ".into_iter()", ".drain()"];
/// Order-sensitive destinations: anything a human or a seeded RNG reads.
const ORDER_SINKS: &[&str] = &[
    "println!", "writeln!", "write!", "format!", "push_str", "report", "log", "seed", "rng",
];
/// Order restorers / order-insensitive folds that make the iteration safe.
const ORDER_VETOES: &[&str] = &[
    "sort", "BTreeMap", "BTreeSet", ".sum(", ".count(", ".len(", ".min(", ".max(", ".all(",
    ".any(", ".product(",
];

impl Rule for NoUnorderedIteration {
    fn id(&self) -> &'static str {
        "no-unordered-iteration"
    }

    fn description(&self) -> &'static str {
        "HashMap/HashSet iteration feeding reports/logs/RNG must be sorted or use BTree"
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let vars = hash_container_vars(file);
        if vars.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            let iterates = vars.iter().any(|v| {
                HASH_ITER_HINTS
                    .iter()
                    .any(|h| code.contains(&format!("{v}{h}")))
                    || code.contains(&format!("in &{v}"))
                    || code.contains(&format!("in {v} "))
            });
            if !iterates {
                continue;
            }
            // The span the iteration flows through: the brace block it
            // opens, or the statement it belongs to.
            let end = if code.contains('{') {
                block_end(file, i).unwrap_or(i)
            } else {
                statement_end(file, i)
            };
            let span = file.code[i..=end].join("\n");
            let sinks = ORDER_SINKS.iter().any(|s| span.contains(s));
            let ordered = ORDER_VETOES.iter().any(|v| span.contains(v));
            if sinks && !ordered {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    "hash-container iteration feeds an order-sensitive sink; sort the keys \
                     or use a BTree container"
                        .to_string(),
                ));
            }
        }
        out
    }
}

/// Names of local bindings declared as `HashMap` / `HashSet` in this file
/// (a cheap, type-free approximation: `let [mut] name ... Hash{Map,Set}`
/// declarations and `name: Hash{Map,Set}<...>` fields).
fn hash_container_vars(file: &SourceFile) -> Vec<String> {
    let mut vars = Vec::new();
    for code in &file.code {
        if !code.contains("HashMap") && !code.contains("HashSet") {
            continue;
        }
        let name = if let Some(rest) = code.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().trim_start_matches("mut ");
            rest.split(|c: char| !c.is_alphanumeric() && c != '_')
                .next()
                .map(str::to_string)
        } else {
            // `name: HashMap<..>` field or param declarations.
            code.split_once(": Hash").and_then(|(before, _)| {
                before
                    .rsplit(|c: char| !c.is_alphanumeric() && c != '_')
                    .next()
                    .map(str::to_string)
            })
        };
        if let Some(n) = name {
            if !n.is_empty() && !vars.contains(&n) {
                vars.push(n);
            }
        }
    }
    vars
}

/// Last line of the statement starting at `start`: scan until a line ends
/// with `;` (or the file runs out).
fn statement_end(file: &SourceFile, start: usize) -> usize {
    for (i, code) in file.code.iter().enumerate().skip(start) {
        if code.trim_end().ends_with(';') {
            return i;
        }
    }
    file.code.len() - 1
}

/// Bare narrowing `as` casts (`as u8/u16/u32/i8/i16/i32`) on the nn hot
/// paths silently wrap or truncate out-of-range values. Each one needs an
/// inline `analyze::allow(no-unannotated-narrowing)` comment justifying
/// why the value fits. Widening casts (`as u64`) and the float/index
/// casts owned by `float-cast-truncation` are out of scope.
pub struct NoUnannotatedNarrowing;

const NARROWING_CASTS: &[&str] = &[" as u8", " as u16", " as u32", " as i8", " as i16", " as i32"];

impl Rule for NoUnannotatedNarrowing {
    fn id(&self) -> &'static str {
        "no-unannotated-narrowing"
    }

    fn description(&self) -> &'static str {
        "bare narrowing `as` casts in crates/nn need an inline analyze::allow justification"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        file.rel_path.starts_with("crates/nn/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        for (i, code) in file.code.iter().enumerate() {
            if file.in_test[i] {
                continue;
            }
            if let Some(needle) = NARROWING_CASTS
                .iter()
                .find(|n| contains_token_cast(code, n))
            {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "bare `{}` narrowing cast; justify with an inline \
                         analyze::allow(no-unannotated-narrowing) comment",
                        needle.trim_start()
                    ),
                ));
            }
        }
        out
    }
}

/// The numeric kernels in `crates/nn` mark their steady-state inner loops
/// with `// hot-kernel: begin` / `// hot-kernel: end` comment fences. The
/// zero-realloc contract says everything inside those fences runs against
/// pre-sized `Scratch`/pack buffers — any allocating call there
/// (`Vec::new`, `vec![]`, `to_vec`, `with_capacity`, `Tensor::zeros`,
/// `.clone()`) re-introduces per-step heap traffic the GEMM rewrite
/// removed, and it usually happens silently during a refactor. This rule
/// turns the contract into a ratcheted gate.
pub struct NoAllocInKernelLoop;

const KERNEL_ALLOC_NEEDLES: &[&str] = &[
    "Vec::new(",
    "vec![",
    ".to_vec()",
    "Vec::with_capacity(",
    "Tensor::zeros(",
    "Tensor::from_vec(",
    "Box::new(",
    ".clone()",
];

impl Rule for NoAllocInKernelLoop {
    fn id(&self) -> &'static str {
        "no-alloc-in-kernel-loop"
    }

    fn description(&self) -> &'static str {
        "hot-kernel regions (between `hot-kernel: begin/end` comments) in crates/nn must not allocate"
    }

    fn applies_to(&self, file: &SourceFile) -> bool {
        file.rel_path.starts_with("crates/nn/src/")
    }

    fn check(&self, file: &SourceFile) -> Vec<Finding> {
        let mut out = Vec::new();
        let mut in_kernel = false;
        for (i, code) in file.code.iter().enumerate() {
            let comment = &file.comments[i];
            if comment.contains("hot-kernel: begin") {
                in_kernel = true;
                continue;
            }
            if comment.contains("hot-kernel: end") {
                in_kernel = false;
                continue;
            }
            if !in_kernel || file.in_test[i] {
                continue;
            }
            if let Some(needle) = KERNEL_ALLOC_NEEDLES.iter().find(|n| code.contains(**n)) {
                out.push(finding(
                    self.id(),
                    file,
                    i,
                    format!(
                        "`{}` allocates inside a hot-kernel region; stage the buffer in the \
                         layer's Scratch arena (or move it above the `hot-kernel: begin` fence)",
                        needle.trim_end_matches('(')
                    ),
                ));
            }
        }
        out
    }
}

/// Whether `code` contains `keyword` as a standalone word (not part of an
/// identifier like `driveloop` or `loop_count`).
fn contains_keyword(code: &str, keyword: &str) -> bool {
    let mut search = code;
    let mut consumed = 0usize;
    while let Some(pos) = search.find(keyword) {
        let before_ok = code[..consumed + pos]
            .chars()
            .next_back()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        let after = &search[pos + keyword.len()..];
        let after_ok = after
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        if before_ok && after_ok {
            return true;
        }
        consumed += pos + keyword.len();
        search = after;
    }
    false
}

/// Line index where the brace block opened on `start` closes, by brace
/// counting over the comment-stripped code view. `None` for an unclosed
/// block (malformed source).
fn block_end(file: &SourceFile, start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut opened = false;
    for (i, code) in file.code.iter().enumerate().skip(start) {
        for c in code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(i);
        }
    }
    None
}

/// Match ` as usize` / ` as f32` as a cast, not as part of an identifier
/// (the needle's leading space plus a following non-ident char).
fn contains_token_cast(code: &str, needle: &str) -> bool {
    let mut search = code;
    while let Some(pos) = search.find(needle) {
        let after = &search[pos + needle.len()..];
        let boundary = after
            .chars()
            .next()
            .map(|c| !c.is_alphanumeric() && c != '_')
            .unwrap_or(true);
        if boundary {
            return true;
        }
        search = after;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::parse(path, "test-crate", src)
    }

    #[test]
    fn unwrap_fires_in_lib_and_bins_not_in_tests() {
        let src = "pub fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    fn g() { y.unwrap(); }\n}\n";
        let lib = file("crates/x/src/lib.rs", src);
        let found = NoUnwrapInLib.check(&lib);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 1);
        // Bins abort mid-experiment just as badly: in scope since PR 3.
        let bin = file("crates/x/src/bin/tool.rs", src);
        assert!(NoUnwrapInLib.applies_to(&bin));
        assert_eq!(NoUnwrapInLib.check(&bin).len(), 1);
    }

    #[test]
    fn expect_fires_but_expect_err_does_not() {
        let src = "fn f() { a.expect(\"boom\"); b.expect_err(\"fine\"); }\n";
        let found = NoExpectInLib.check(&file("crates/x/src/lib.rs", src));
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn println_fires_in_lib_but_not_bins_tests_or_reporters() {
        let src = "fn f() { println!(\"x\"); }\n#[cfg(test)]\nmod tests {\n    fn g() { println!(\"y\"); }\n}\n";
        let lib = file("crates/x/src/lib.rs", src);
        assert!(NoPrintlnInLib.applies_to(&lib));
        let found = NoPrintlnInLib.check(&lib);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 1);
        // All four print macros are covered.
        for mac in ["eprintln!(\"x\")", "print!(\"x\")", "eprint!(\"x\")"] {
            let src = format!("fn f() {{ {mac}; }}\n");
            assert_eq!(
                NoPrintlnInLib.check(&file("crates/x/src/lib.rs", &src)).len(),
                1,
                "{mac} should fire"
            );
        }
        // Bins print by design; the analyzer and bench report to humans.
        assert!(!NoPrintlnInLib.applies_to(&file("crates/x/src/bin/tool.rs", src)));
        assert!(!NoPrintlnInLib.applies_to(&file("crates/analyze/src/lint/mod.rs", src)));
        assert!(!NoPrintlnInLib.applies_to(&file("crates/bench/src/report.rs", src)));
        // Mentions inside string literals are blanked out of the code view.
        let in_str = "fn f() { let s = \"println!(oops)\"; }\n";
        assert!(NoPrintlnInLib.check(&file("crates/x/src/lib.rs", in_str)).is_empty());
    }

    #[test]
    fn panic_audit_accepts_invariant_comment() {
        let bad = "fn f() { panic!(\"no\"); }\n";
        assert_eq!(PanicAudit.check(&file("crates/x/src/a.rs", bad)).len(), 1);
        let good = "// INVARIANT: checked by caller\nfn f() { panic!(\"no\"); }\n";
        assert!(PanicAudit.check(&file("crates/x/src/a.rs", good)).is_empty());
    }

    #[test]
    fn pub_doc_rule_sees_docs_through_attributes() {
        let good = "/// Documented.\n#[derive(Debug)]\npub struct A;\n";
        assert!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", good)).is_empty());
        // rustfmt-split multi-line derive between the doc and the item.
        let split = "/// Documented.\n#[derive(\n    Debug, Clone,\n)]\npub struct B;\n";
        assert!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", split)).is_empty());
        let split_undoc = "#[derive(\n    Debug, Clone,\n)]\npub struct C;\n";
        assert_eq!(
            PubItemNeedsDoc.check(&file("crates/x/src/a.rs", split_undoc)).len(),
            1
        );
        let bad = "pub fn undocd() {}\n";
        assert_eq!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", bad)).len(), 1);
        let scoped = "pub(crate) fn internal() {}\n";
        assert!(PubItemNeedsDoc.check(&file("crates/x/src/a.rs", scoped)).is_empty());
    }

    #[test]
    fn sleep_rule_is_path_scoped() {
        let src = "fn f() { std::thread::sleep(d); }\n";
        let hot = file("crates/nn/src/tensor.rs", src);
        assert!(NoSleepInHotPath.applies_to(&hot));
        assert_eq!(NoSleepInHotPath.check(&hot).len(), 1);
        let cold = file("crates/cloud/src/lib.rs", src);
        assert!(!NoSleepInHotPath.applies_to(&cold));
    }

    #[test]
    fn unbounded_retry_loop_fires() {
        let bad = "fn f() {\n    loop {\n        if try_once().is_ok() { break; }\n        charge(policy.backoff(n, seed));\n    }\n}\n";
        let found = NoUnboundedRetry.check(&file("crates/x/src/a.rs", bad));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 2);
    }

    #[test]
    fn capped_retry_loop_passes() {
        for cap in ["if !policy.allows(n, elapsed) { return Err(e); }",
                    "if n > max_attempts { break; }",
                    "if elapsed > deadline { break; }"] {
            let src = format!(
                "fn f() {{\n    loop {{\n        {cap}\n        charge(policy.backoff(n, seed));\n    }}\n}}\n"
            );
            let found = NoUnboundedRetry.check(&file("crates/x/src/a.rs", &src));
            assert!(found.is_empty(), "cap `{cap}` still fired: {found:?}");
        }
    }

    #[test]
    fn retry_rule_ignores_identifiers_and_nonretry_loops() {
        // `driveloop` is an identifier, not the keyword.
        let ident = "fn f() { let driveloop = retry_count; }\n";
        assert!(NoUnboundedRetry.check(&file("crates/x/src/a.rs", ident)).is_empty());
        // A loop with no retry semantics is out of scope.
        let plain = "fn f() {\n    loop {\n        if done() { break; }\n    }\n}\n";
        assert!(NoUnboundedRetry.check(&file("crates/x/src/a.rs", plain)).is_empty());
        // Bins are exempt, like the other abort-class rules.
        let bin = file("crates/x/src/bin/tool.rs", "fn main() {}");
        assert!(!NoUnboundedRetry.applies_to(&bin));
    }

    #[test]
    fn wallclock_fires_outside_bench_only() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let sim = file("crates/core/src/pipeline.rs", src);
        assert!(NoWallclockInSim.applies_to(&sim));
        let found = NoWallclockInSim.check(&sim);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("Instant::now"));
        let bench = file("crates/bench/src/bin/exp.rs", src);
        assert!(!NoWallclockInSim.applies_to(&bench));
        let sys = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(NoWallclockInSim.check(&file("crates/x/src/a.rs", sys)).len(), 1);
    }

    #[test]
    fn unordered_iteration_into_report_fires() {
        let bad = "use std::collections::HashMap;\nfn f(m: HashMap<String, u32>) {\n    for k in m.keys() {\n        report.push_str(k);\n    }\n}\n";
        let found = NoUnorderedIteration.check(&file("crates/x/src/a.rs", bad));
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn sorted_or_aggregated_iteration_passes() {
        // Sorting before the sink restores determinism.
        let sorted = "fn f(m: HashMap<String, u32>) {\n    let mut ks: Vec<_> = m.keys().collect();\n    ks.sort();\n}\n";
        assert!(NoUnorderedIteration
            .check(&file("crates/x/src/a.rs", sorted))
            .is_empty());
        // Order-insensitive folds are safe even unsorted.
        let sum = "fn f(m: HashMap<String, u32>) {\n    let total: u32 = m.values().sum();\n    log(total);\n}\n";
        assert!(NoUnorderedIteration
            .check(&file("crates/x/src/a.rs", sum))
            .is_empty());
        // Iteration with no order-sensitive sink is out of scope.
        let plain = "fn f(s: HashSet<u32>) {\n    for v in s.iter() {\n        touch(v);\n    }\n}\n";
        assert!(NoUnorderedIteration
            .check(&file("crates/x/src/a.rs", plain))
            .is_empty());
    }

    #[test]
    fn unordered_iteration_into_rng_seed_fires() {
        let bad = "fn f(s: HashSet<u64>) {\n    for v in s.iter() {\n        seed ^= v;\n    }\n}\n";
        let found = NoUnorderedIteration.check(&file("crates/x/src/a.rs", bad));
        assert_eq!(found.len(), 1, "{found:?}");
    }

    #[test]
    fn narrowing_cast_in_nn_requires_justification() {
        let bad = "fn f(t: u64) -> i32 { t as i32 }\n";
        let hot = file("crates/nn/src/optim.rs", bad);
        assert!(NoUnannotatedNarrowing.applies_to(&hot));
        let found = NoUnannotatedNarrowing.check(&hot);
        assert_eq!(found.len(), 1, "{found:?}");
        assert!(found[0].message.contains("as i32"));
        // Widening and float/index casts belong to other rules.
        let wide = "fn f(t: usize) -> u64 { t as u64 }\nfn g(x: f64) -> f32 { x as f32 }\n";
        assert!(NoUnannotatedNarrowing
            .check(&file("crates/nn/src/a.rs", wide))
            .is_empty());
        // Out of crates/nn the rule does not apply.
        assert!(!NoUnannotatedNarrowing.applies_to(&file("crates/cloud/src/perf.rs", bad)));
    }

    #[test]
    fn alloc_in_kernel_region_fires() {
        let bad = "fn f() {\n    // hot-kernel: begin\n    let v = vec![0.0; n];\n    // hot-kernel: end\n}\n";
        let f = file("crates/nn/src/layers/conv2d.rs", bad);
        assert!(NoAllocInKernelLoop.applies_to(&f));
        let found = NoAllocInKernelLoop.check(&f);
        assert_eq!(found.len(), 1, "{found:?}");
        assert_eq!(found[0].line, 3);
        assert!(found[0].message.contains("Scratch"));
    }

    #[test]
    fn alloc_outside_kernel_region_is_fine() {
        // Output-tensor allocation before the fence is the sanctioned
        // pattern; allocations after `end` are also out of scope.
        let good = "fn f() {\n    let out = Tensor::zeros(&s);\n    // hot-kernel: begin\n    gemm(o, a, b);\n    // hot-kernel: end\n    let c = x.clone();\n}\n";
        assert!(NoAllocInKernelLoop
            .check(&file("crates/nn/src/layers/conv2d.rs", good))
            .is_empty());
        // Rule is scoped to crates/nn.
        let bad = "fn f() {\n    // hot-kernel: begin\n    let v = Vec::new();\n    // hot-kernel: end\n}\n";
        assert!(!NoAllocInKernelLoop.applies_to(&file("crates/cloud/src/perf.rs", bad)));
    }

    #[test]
    fn kernel_alloc_needles_cover_the_common_apis() {
        for needle in [
            "let a = Vec::new();",
            "let b = x.to_vec();",
            "let c = Vec::with_capacity(9);",
            "let d = Tensor::from_vec(&s, v);",
            "let e = t.clone();",
        ] {
            let src = format!("fn f() {{\n    // hot-kernel: begin\n    {needle}\n    // hot-kernel: end\n}}\n");
            let found = NoAllocInKernelLoop.check(&file("crates/nn/src/tensor.rs", &src));
            assert_eq!(found.len(), 1, "needle {needle:?} should fire: {found:?}");
        }
    }

    #[test]
    fn cast_rule_requires_annotation() {
        let bad = "fn f(x: f64) -> usize { x as usize }\n";
        let f = file("crates/nn/src/tensor.rs", bad);
        assert_eq!(FloatCastTruncation.check(&f).len(), 1);
        let good = "// cast: index already bounds-checked\nfn f(x: f64) -> usize { x as usize }\n";
        assert!(FloatCastTruncation
            .check(&file("crates/nn/src/tensor.rs", good))
            .is_empty());
        let ident = "fn f() { let y_as_f32_ish = 1; }\n";
        assert!(FloatCastTruncation
            .check(&file("crates/nn/src/tensor.rs", ident))
            .is_empty());
    }
}
